//! Workspace-level convenience re-exports for the F-CAD reproduction.
//!
//! This crate exists so that the repository-root `examples/` and `tests/`
//! directories have a host package. Library users should depend on the
//! individual crates (most importantly [`fcad`]) directly.

pub use fcad;
pub use fcad_accel as accel;
pub use fcad_baselines as baselines;
pub use fcad_cyclesim as cyclesim;
pub use fcad_dse as dse;
pub use fcad_nnir as nnir;
pub use fcad_profiler as profiler;
