//! SLO attainment under admission control: the same QoS burst served
//! three ways.
//!
//! Optimizes the decoder once (ZU17EG, Table IV Case 2), then serves the
//! `b2_qos` burst — eight sessions, half of them interactive with a
//! 100 ms frame budget, whose interactive demand alone oversubscribes one
//! accelerator during the on-windows — under the weighted cross-class
//! scheduler with each admission policy:
//!
//! 1. **admit-all** — the legacy front door: the bounded queue drops
//!    whoever arrives last, interactive queueing explodes during bursts,
//!    and interactive SLO attainment collapses;
//! 2. **queue-threshold** — lower tiers are turned away at 50 %/75 %
//!    occupancy, which keeps the queue shallower but still admits more
//!    interactive work than the deadline can absorb;
//! 3. **budget-aware** — a request whose projected completion already
//!    misses its class budget is rejected on arrival, so the admitted
//!    interactive population overwhelmingly lands inside 100 ms.
//!
//! One machine-readable JSON `ServeReport` line per run, then a per-class
//! attainment table. Asserts the headline claim: budget-aware admission
//! keeps interactive SLO attainment ≥ 0.95 under the burst while
//! admit-all collapses below it.
//!
//! Run with: `cargo run --release --example qos_serving`

use fcad::{AdmissionKind, Customization, DseParams, Fcad, QosClass, Scenario, SchedulerKind};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = Fcad::new(targeted_decoder(), Platform::zu17eg())
        .with_customization(Customization::codec_avatar(Precision::Int8))
        .with_dse_params(DseParams::fast())
        .run()?;
    let scenario = Scenario::b2_qos();
    let interactive_sessions = (0..scenario.sessions)
        .filter(|&s| scenario.session_class(s) == QosClass::Interactive)
        .count();
    println!(
        "design: {:.1} FPS min-branch — {} under the weighted scheduler \
         ({} of {} sessions interactive, 100 ms budget):",
        result.min_fps(),
        scenario.name,
        interactive_sessions,
        scenario.sessions
    );

    let reports: Vec<_> = AdmissionKind::all()
        .iter()
        .map(|&admission| {
            let report = result.serve_qos(&scenario, SchedulerKind::PriorityByBranch, admission);
            assert!(report.conserves_requests());
            println!("{}", report.to_json_line());
            (admission, report)
        })
        .collect();

    println!("\nper-class SLO attainment (fraction of completions inside the class budget):");
    println!(
        "{:<16} {:>6} {:>6} {:>12} {:>10} {:>10} {:>12}",
        "admission", "compl", "shed", "interactive", "standard", "best-eff", "inter. p99"
    );
    for (admission, report) in &reports {
        let row = |class: QosClass| report.class(class).expect("class row").slo_attainment;
        println!(
            "{:<16} {:>6} {:>6} {:>11.1}% {:>9.1}% {:>9.1}% {:>9.1} ms",
            admission.name(),
            report.completed,
            report.shed,
            row(QosClass::Interactive) * 100.0,
            row(QosClass::Standard) * 100.0,
            row(QosClass::BestEffort) * 100.0,
            report
                .class(QosClass::Interactive)
                .expect("interactive row")
                .latency
                .p99_ms
        );
    }

    // The headline claim. Deterministic run, so these are exact
    // regression pins, not statistical hopes.
    let attainment = |kind: AdmissionKind| {
        reports
            .iter()
            .find(|(a, _)| *a == kind)
            .expect("admission run")
            .1
            .class(QosClass::Interactive)
            .expect("interactive row")
            .slo_attainment
    };
    let admit_all = attainment(AdmissionKind::AdmitAll);
    let budget_aware = attainment(AdmissionKind::BudgetAware);
    assert!(
        budget_aware >= 0.95,
        "budget-aware interactive attainment {budget_aware} must hold the 95% SLO under the burst"
    );
    assert!(
        admit_all < 0.95,
        "admit-all interactive attainment {admit_all} should collapse under the burst"
    );
    let shed_total = reports
        .iter()
        .find(|(a, _)| *a == AdmissionKind::BudgetAware)
        .expect("budget-aware run")
        .1
        .shed;
    assert!(shed_total > 0, "budget-aware must actually shed");
    println!(
        "\nbudget-aware keeps interactive attainment at {:.1}% (>= 95%) where admit-all \
         collapses to {:.1}%",
        budget_aware * 100.0,
        admit_all * 100.0
    );
    Ok(())
}
