//! Codec-avatar scenario: generate the five accelerators of Table IV (three
//! FPGAs × 8/16-bit) for the targeted decoder with the VR customization
//! (batch sizes {1, 2, 2}: one HD texture and one warp field per eye, a
//! single shared facial geometry).
//!
//! Run with: `cargo run --release --example avatar_decoder_dse`

use fcad::{Customization, DseParams, Fcad};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: [(&str, Platform, Precision); 5] = [
        ("Case 1: Z7045 (8-bit)", Platform::z7045(), Precision::Int8),
        (
            "Case 2: ZU17EG (8-bit)",
            Platform::zu17eg(),
            Precision::Int8,
        ),
        (
            "Case 3: ZU17EG (16-bit)",
            Platform::zu17eg(),
            Precision::Int16,
        ),
        ("Case 4: ZU9CG (8-bit)", Platform::zu9cg(), Precision::Int8),
        (
            "Case 5: ZU9CG (16-bit)",
            Platform::zu9cg(),
            Precision::Int16,
        ),
    ];

    for (name, platform, precision) in cases {
        let result = Fcad::new(targeted_decoder(), platform.clone())
            .with_customization(Customization::codec_avatar(precision))
            .with_dse_params(DseParams::paper())
            // The case table displays DSE wall time — opt into the clock.
            .with_timer(fcad::ElapsedTimer::WallClock)
            .run()?;
        println!(
            "{}",
            fcad::render_case_table(
                &format!(
                    "{name} — budget {} DSPs, {} BRAMs",
                    platform.budget().dsp,
                    platform.budget().bram
                ),
                &result
            )
        );
        let vr_ready = result.min_fps() >= 90.0;
        println!(
            "  VR-ready (>= 90 FPS): {}\n",
            if vr_ready { "yes" } else { "no" }
        );
    }
    Ok(())
}
