//! Fleet serving: scale a DSE-optimized codec-avatar accelerator from one
//! device to a sharded fleet and watch the burst tail collapse.
//!
//! Optimizes the decoder once (ZU17EG, Table IV Case 2), then serves the
//! `b2` mixed-priority burst scenario on 1/2/4/8-shard fleets under
//! least-loaded balancing, printing one machine-readable JSON `ServeReport`
//! line per fleet size; finally a balancer head-to-head (round-robin vs
//! least-loaded vs affinity-first vs branch-sharded) on a fixed 4-shard
//! fleet shows where placement policy matters.
//!
//! Run with: `cargo run --release --example fleet_serving`

use fcad::{Customization, DseParams, Fcad, LoadBalancerKind, Scenario, SchedulerKind};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = Fcad::new(targeted_decoder(), Platform::zu17eg())
        .with_customization(Customization::codec_avatar(Precision::Int8))
        .with_dse_params(DseParams::fast())
        .run()?;
    println!(
        "design: {:.1} FPS min-branch, {:.1}% efficiency — b2 burst scenario across fleet sizes:",
        result.min_fps(),
        result.efficiency() * 100.0
    );

    // Fixed load, growing fleet: the single-device b2 chaos scenario on
    // 1/2/4/8 shards. More shards must cut the tail.
    let chaos = Scenario::b2();
    let mut p99_by_shards = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let report = result.serve_fleet(
            &chaos,
            shards,
            LoadBalancerKind::LeastLoaded,
            SchedulerKind::BatchAggregating,
        );
        assert!(report.conserves_requests());
        p99_by_shards.push((shards, report.latency.p99_ms));
        println!("{}", report.to_json_line());
    }
    let (_, one_shard_p99) = p99_by_shards[0];
    for (shards, p99) in &p99_by_shards[1..] {
        assert!(
            *p99 < one_shard_p99,
            "{shards} shards p99 {p99} ms did not improve on one shard's {one_shard_p99} ms"
        );
    }
    println!(
        "burst p99: 1 shard {:.1} ms -> 2 shards {:.1} ms -> 4 shards {:.1} ms -> 8 shards {:.1} ms",
        p99_by_shards[0].1, p99_by_shards[1].1, p99_by_shards[2].1, p99_by_shards[3].1
    );

    // Balancer head-to-head on a 4-shard fleet carrying 4× the b2 load
    // (five bursty sessions per shard).
    let fleet_chaos = Scenario::b2_fleet(4);
    println!("\nbalancer head-to-head on {}:", fleet_chaos.name);
    for &balancer in LoadBalancerKind::all() {
        let report = result.serve_fleet(&fleet_chaos, 4, balancer, SchedulerKind::BatchAggregating);
        assert!(report.conserves_requests());
        println!(
            "{:<14} p50 {:>7.1} ms  p99 {:>7.1} ms  drop {:>5.1}%  utilization {:>5.1}%  imbalance {:.2}",
            report.balancer,
            report.latency.p50_ms,
            report.latency.p99_ms,
            report.drop_rate * 100.0,
            report.utilization * 100.0,
            report.imbalance
        );
    }
    Ok(())
}
