//! Availability under churn: kill three shards mid-burst and watch the
//! autoscaler heal the fleet.
//!
//! Optimizes the decoder once (ZU17EG, Table IV Case 2), then serves the
//! stretched `b2_failover` burst scenario on a six-shard least-loaded
//! fleet three ways:
//!
//! 1. **fixed, healthy** — the PR 3 static fleet, no failure (baseline);
//! 2. **fixed, shards 1–3 killed at 1.10/1.15/1.20 s** — half the fleet
//!    gone, the survivors run over capacity and the post-failure tail
//!    never comes back;
//! 3. **autoscaled, same kills** — the reactive policy replaces every
//!    dead shard (25 ms weight-fill warm-up each) and spawns further on
//!    queue pressure, so the re-placed sessions' tail recovers.
//!
//! One machine-readable JSON `ServeReport` line per run, then a recovery
//! table and the elastic fleet's lifecycle log. Asserts the headline
//! claim: with autoscaling, the p99 of the completions *after* the first
//! failure returns to within 2× of the pre-failure p99 — while the static
//! fleet's post-failure p99 runs beyond 2× of its own pre-failure tail.
//!
//! Run with: `cargo run --release --example autoscaled_fleet`

use fcad::{
    Autoscaler, Customization, DseParams, FailurePlan, Fcad, LoadBalancerKind, Scenario,
    SchedulerKind,
};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = Fcad::new(targeted_decoder(), Platform::zu17eg())
        .with_customization(Customization::codec_avatar(Precision::Int8))
        .with_dse_params(DseParams::fast())
        .run()?;
    println!(
        "design: {:.1} FPS min-branch, {:.1}% efficiency — b2 failover on a 6-shard fleet:",
        result.min_fps(),
        result.efficiency() * 100.0
    );

    let scenario = Scenario::b2_failover(1); // five bursty sessions, 4 s
    let shards = 6;
    let balancer = LoadBalancerKind::LeastLoaded;
    let kind = SchedulerKind::BatchAggregating;
    let kills = FailurePlan::scheduled(&[(1_100_000, 1), (1_150_000, 2), (1_200_000, 3)]);
    let policy = Autoscaler::reactive(shards, shards + 2)
        .with_scale_up_queue_depth(4)
        .with_warmup_us(25_000)
        .with_cooldown_us(80_000)
        .with_idle_retire_us(0);

    let healthy = result.serve_autoscaled(
        &scenario,
        shards,
        balancer,
        kind,
        &Autoscaler::none(),
        &FailurePlan::none(),
    );
    let static_failed = result.serve_autoscaled(
        &scenario,
        shards,
        balancer,
        kind,
        &Autoscaler::none(),
        &kills,
    );
    let elastic_failed =
        result.serve_autoscaled(&scenario, shards, balancer, kind, &policy, &kills);
    for report in [&healthy, &static_failed, &elastic_failed] {
        assert!(report.conserves_requests());
        println!("{}", report.to_json_line());
    }

    println!("\nrecovery (shards 1-3 killed at 1.10-1.20 s):");
    println!(
        "{:<20} {:>7} {:>12} {:>13} {:>13} {:>8} {:>9}",
        "fleet", "shards", "availability", "pre-fail p99", "post-fail p99", "max", "re-placed"
    );
    for (name, report) in [
        ("fixed, healthy", &healthy),
        ("fixed, failed", &static_failed),
        ("autoscaled, failed", &elastic_failed),
    ] {
        println!(
            "{:<20} {:>7} {:>11.1}% {:>10.1} ms {:>10.1} ms {:>5.0} ms {:>9}",
            name,
            report.shard_count(),
            report.availability * 100.0,
            report.latency_pre_failure.p99_ms,
            report.latency_post_failure.p99_ms,
            report.latency.max_ms,
            report.replaced
        );
    }
    for event in &elastic_failed.scale_events {
        println!(
            "  t={:>6.3}s {:<6} shard {} ({} active)",
            event.at_sec,
            event.kind.name(),
            event.shard,
            event.active_after
        );
    }

    // The headline recovery claim. Deterministic run, so these are exact
    // regression pins, not statistical hopes: elastic pre 126 ms / post
    // 174 ms (1.4×), static pre 126 ms / post 436 ms (3.5×).
    let pre = elastic_failed.latency_pre_failure.p99_ms;
    let post = elastic_failed.latency_post_failure.p99_ms;
    assert!(
        pre > 0.0 && post > 0.0,
        "both failure windows must complete work"
    );
    assert!(
        post <= 2.0 * pre,
        "autoscaled post-failure p99 {post} ms did not return within 2x of pre-failure {pre} ms"
    );
    assert!(
        static_failed.latency_post_failure.p99_ms > 2.0 * static_failed.latency_pre_failure.p99_ms,
        "the static fleet should not recover within 2x — its survivors are over capacity"
    );
    // The healed fleet serves near the healthy baseline; the static one
    // does not get close.
    assert!(elastic_failed.latency.p99_ms <= 1.5 * healthy.latency.p99_ms);
    assert!(elastic_failed.latency.max_ms < static_failed.latency.max_ms);
    assert!(
        elastic_failed.replaced > 0,
        "orphans must re-place via the balancer"
    );
    assert!(elastic_failed.availability > 0.999);
    println!(
        "\npost-failure p99 {:.1} ms <= 2x pre-failure p99 {:.1} ms: the fleet healed \
         (static fleet stuck at {:.1} ms)",
        post, pre, static_failed.latency_post_failure.p99_ms
    );
    Ok(())
}
