//! Estimation-accuracy study (the Fig. 6 / Fig. 7 experiment): run the full
//! flow on the classic single-branch benchmarks at 16-bit and 8-bit, then
//! compare the analytical FPS / efficiency estimates against the
//! cycle-level simulator that stands in for the paper's KU115 board.
//!
//! Run with: `cargo run --release --example estimation_validation`

use fcad::{Customization, DseParams, Fcad, ValidationReport};
use fcad_accel::Platform;
use fcad_nnir::models::classic_benchmarks;
use fcad_nnir::Precision;
use fcad_profiler::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::ku115();
    let mut table = Table::new(vec![
        "Benchmark".to_owned(),
        "Precision".to_owned(),
        "Estimated FPS".to_owned(),
        "Simulated FPS".to_owned(),
        "FPS error".to_owned(),
        "Efficiency error".to_owned(),
    ]);

    let mut fps_errors = Vec::new();
    let mut eff_errors = Vec::new();
    for precision in [Precision::Int16, Precision::Int8] {
        for network in classic_benchmarks() {
            let name = network.name().to_owned();
            let result = Fcad::new(network, platform.clone())
                .with_customization(Customization::uniform(1, precision))
                .with_dse_params(DseParams::fast())
                .run()?;
            let validation = ValidationReport::compare(
                &result.accelerator,
                &result.dse.best_config,
                platform.budget().bandwidth_bytes_per_sec,
            )?;
            let branch = &validation.branches[0];
            fps_errors.push(branch.fps_error());
            eff_errors.push(branch.efficiency_error());
            table.add_row(vec![
                name,
                precision.to_string(),
                format!("{:.1}", branch.estimated_fps),
                format!("{:.1}", branch.simulated_fps),
                format!("{:.2}%", branch.fps_error() * 100.0),
                format!("{:.2}%", branch.efficiency_error() * 100.0),
            ]);
        }
    }

    println!("{}", table.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    println!(
        "FPS estimation error:        max {:.2}%  avg {:.2}%   (paper: max 2.89%, avg 2.02%)",
        max(&fps_errors) * 100.0,
        mean(&fps_errors) * 100.0
    );
    println!(
        "Efficiency estimation error: max {:.2}%  avg {:.2}%   (paper: max 3.96%, avg 1.91%)",
        max(&eff_errors) * 100.0,
        mean(&eff_errors) * 100.0
    );
    Ok(())
}
