//! Baseline comparison: the mobile SoC, DNNBuilder and HybridDNN against
//! F-CAD on the same ZU9CG FPGA (the Table II + Table V story).
//!
//! Run with: `cargo run --release --example baseline_comparison`

use fcad::{Customization, DseParams, Fcad};
use fcad_accel::Platform;
use fcad_baselines::{DnnBuilder, HybridDnn, MobileSoc};
use fcad_nnir::models::{mimic_decoder, targeted_decoder};
use fcad_nnir::Precision;
use fcad_profiler::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::zu9cg();
    let mut table = Table::new(vec![
        "Accelerator".to_owned(),
        "Precision".to_owned(),
        "DSP".to_owned(),
        "BRAM".to_owned(),
        "FPS".to_owned(),
        "Efficiency".to_owned(),
    ]);

    // Existing accelerators run the mimic decoder (they do not support the
    // customized Conv); the SoC runs the real decoder.
    let soc = MobileSoc::snapdragon865().evaluate(&targeted_decoder(), Precision::Int8);
    table.add_row(vec![
        "Snapdragon-865-class SoC".into(),
        "8-bit".into(),
        format!("{} MACs", soc.dsp),
        "-".into(),
        format!("{:.1}", soc.fps),
        format!("{:.1}%", soc.efficiency * 100.0),
    ]);

    let dnnbuilder = DnnBuilder::new(platform.clone(), Precision::Int8).evaluate(&mimic_decoder());
    table.add_row(vec![
        "DNNBuilder-style".into(),
        "8-bit".into(),
        dnnbuilder.dsp.to_string(),
        dnnbuilder.bram.to_string(),
        format!("{:.1}", dnnbuilder.fps),
        format!("{:.1}%", dnnbuilder.efficiency * 100.0),
    ]);

    let hybrid = HybridDnn::new(platform.clone()).evaluate(&mimic_decoder());
    table.add_row(vec![
        "HybridDNN-style".into(),
        "16-bit".into(),
        hybrid.dsp.to_string(),
        hybrid.bram.to_string(),
        format!("{:.1}", hybrid.fps),
        format!("{:.1}%", hybrid.efficiency * 100.0),
    ]);

    // F-CAD with uniform batch 1 for a fair comparison (as in Table V).
    for precision in [Precision::Int8, Precision::Int16] {
        let result = Fcad::new(targeted_decoder(), platform.clone())
            .with_customization(Customization::uniform(3, precision))
            .with_dse_params(DseParams::paper())
            .run()?;
        table.add_row(vec![
            "F-CAD".into(),
            precision.to_string(),
            result.report().total_usage.dsp.to_string(),
            result.report().total_usage.bram.to_string(),
            format!("{:.1}", result.min_fps()),
            format!("{:.1}%", result.efficiency() * 100.0),
        ]);
        let speedup = result.min_fps() / dnnbuilder.fps;
        println!(
            "F-CAD ({precision}) delivers {speedup:.1}x the DNNBuilder throughput on the same FPGA"
        );
    }

    println!("\n{}", table.render());
    Ok(())
}
