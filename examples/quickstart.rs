//! Quickstart: explore an accelerator for the codec avatar decoder on the
//! smallest FPGA of the paper (Xilinx Z7045) and print the resulting design.
//!
//! Run with: `cargo run --example quickstart`

use fcad::{Customization, DseParams, Fcad};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;
use fcad_profiler::NetworkProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: the input — the three-branch codec avatar decoder of Table I.
    let decoder = targeted_decoder();
    println!("{}", NetworkProfile::of(&decoder).table());

    // Steps 1-3: analysis, construction and optimization for a Z7045 budget
    // with the paper's codec-avatar customization (batch {1, 2, 2}, 8-bit).
    let result = Fcad::new(decoder, Platform::z7045())
        .with_customization(Customization::codec_avatar(Precision::Int8))
        .with_dse_params(DseParams::paper())
        // The table below displays DSE wall time, so opt into the clock
        // (the default timer is off, keeping fixed-seed results byte-stable).
        .with_timer(fcad::ElapsedTimer::WallClock)
        .run()?;

    println!("{}", fcad::render_case_table("Z7045 (8-bit)", &result));

    println!(
        "slowest branch: {:.1} FPS | overall efficiency: {:.1}% | DSPs {} / BRAMs {}",
        result.min_fps(),
        result.efficiency() * 100.0,
        result.report().total_usage.dsp,
        result.report().total_usage.bram,
    );
    Ok(())
}
