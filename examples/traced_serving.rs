//! Observability walkthrough: one traced QoS serving run, three exports.
//!
//! Optimizes the decoder once (ZU17EG, Table IV Case 2), then serves the
//! `b2_qos` burst under the weighted scheduler and budget-aware admission
//! with a recording trace sink attached. The recorder captures every
//! request lifecycle event (arrival, admission verdict, enqueue, service
//! start, terminal outcome) plus batch dispatches — all stamped with
//! simulation time — and feeds the three exporters:
//!
//! 1. **Chrome trace** — `trace_event` JSON loadable in Perfetto or
//!    `chrome://tracing`, one track per shard plus fabric batch tracks;
//! 2. **windowed metrics** — fixed-interval JSON lines with queue depth,
//!    utilization, per-class backlog and rolling p50/p99;
//! 3. **flight recorder** — full timelines of the worst-latency and
//!    non-completed requests, printed as a postmortem table.
//!
//! Asserts the observability contract: tracing is observation-only (the
//! traced report is byte-identical to the untraced one), the trace is
//! non-empty, and both JSON exports round-trip the `validate_json`
//! structural checker.
//!
//! Run with: `cargo run --release --example traced_serving`

use fcad::{
    chrome_trace, validate_json, AdmissionKind, Customization, DseParams, Fcad, FlightRecorder,
    Recorder, Scenario, SchedulerKind, Windowed,
};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = Fcad::new(targeted_decoder(), Platform::zu17eg())
        .with_customization(Customization::codec_avatar(Precision::Int8))
        .with_dse_params(DseParams::fast())
        .run()?;
    let scenario = Scenario::b2_qos();

    // One traced run; the untraced twin pins the observation-only claim.
    let mut recorder = Recorder::new();
    let traced = result.serve_qos_traced(
        &scenario,
        SchedulerKind::PriorityByBranch,
        AdmissionKind::BudgetAware,
        &mut recorder,
    );
    let untraced = result.serve_qos(
        &scenario,
        SchedulerKind::PriorityByBranch,
        AdmissionKind::BudgetAware,
    );
    assert_eq!(traced, untraced, "tracing must not perturb the simulation");
    assert!(!recorder.is_empty(), "the run must produce trace events");
    println!(
        "{}",
        traced.with_trace_summary(recorder.summary()).to_json_line()
    );

    // Chrome trace: load the written file in Perfetto (ui.perfetto.dev)
    // or chrome://tracing to scrub through the run.
    let trace = chrome_trace(recorder.events());
    validate_json(&trace).map_err(|e| format!("chrome trace must be valid JSON: {e}"))?;
    println!(
        "\nchrome trace: {} events, {} bytes (write to a file and load in Perfetto)",
        recorder.summary().events,
        trace.len()
    );

    // Windowed metrics: 50 ms buckets over the whole run.
    let mut windowed = Windowed::new(50_000);
    recorder.replay(&mut windowed);
    let series = windowed.finish();
    let metrics = series.to_json_lines();
    for line in metrics.lines() {
        validate_json(line).map_err(|e| format!("metrics line must be valid JSON: {e}"))?;
    }
    println!(
        "windowed metrics: {} windows of {} µs",
        series.windows.len(),
        series.interval_us
    );
    let busiest = series
        .windows
        .iter()
        .max_by_key(|w| w.queue_depth_end)
        .expect("non-empty run has at least one window");
    println!(
        "deepest backlog: window {} (queue depth {}, p99 {:.1} ms, utilization {:.2})",
        busiest.index, busiest.queue_depth_end, busiest.p99_ms, busiest.utilization
    );

    // Flight recorder: the 5 worst completions plus every request that
    // never completed, as a postmortem table.
    let flight = FlightRecorder::from_events(recorder.events(), 5);
    println!("\n{}", flight.to_table());
    Ok(())
}
