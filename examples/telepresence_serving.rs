//! Telepresence serving: put a DSE-optimized codec-avatar accelerator under
//! multi-session decode traffic and report tail latencies.
//!
//! Runs the four-scenario suite (`a1` baseline single session, `a2` fan-out
//! over five sessions, `b1` Poisson burst, `b2` mixed-priority chaos) with
//! the batch-aggregating scheduler, printing one machine-readable JSON
//! `ServeReport` line per scenario, then replays the `b2` chaos scenario
//! under FIFO and priority-by-branch scheduling to show where branch
//! priorities pay off.
//!
//! Run with: `cargo run --example telepresence_serving`

use fcad::{Customization, DseParams, Fcad, Scenario, SchedulerKind};
use fcad_accel::Platform;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Optimize the decoder for the ZU17EG (Table IV, Case 2) — the serving
    // simulation consumes this design's per-branch frame times.
    let result = Fcad::new(targeted_decoder(), Platform::zu17eg())
        .with_customization(Customization::codec_avatar(Precision::Int8))
        .with_dse_params(DseParams::fast())
        .run()?;
    println!(
        "design: {:.1} FPS min-branch, {:.1}% efficiency — serving scenario suite:",
        result.min_fps(),
        result.efficiency() * 100.0
    );

    for scenario in Scenario::suite() {
        let report = result.serve(&scenario);
        assert!(report.conserves_requests());
        println!("{}", report.to_json_line());
    }

    // Scheduler head-to-head on the mixed-priority chaos scenario: the
    // priority discipline protects the high-priority visual branches at the
    // cost of the low-priority (audio-like) stream.
    let chaos = Scenario::b2();
    println!("\nscheduler head-to-head on {}:", chaos.name);
    let fifo = result.serve_with(&chaos, SchedulerKind::Fifo);
    let priority = result.serve_with(&chaos, SchedulerKind::PriorityByBranch);
    println!("{}", fifo.to_json_line());
    println!("{}", priority.to_json_line());
    println!(
        "high-priority p99: fifo {:.1} ms vs priority {:.1} ms ({})",
        fifo.branches[0].latency.p99_ms,
        priority.branches[0].latency.p99_ms,
        if priority.branches[0].latency.p99_ms < fifo.branches[0].latency.p99_ms {
            "priority wins"
        } else {
            "no benefit under this load"
        }
    );
    Ok(())
}
