//! Building a custom multi-branch decoder with the IR builder and exploring
//! an ASIC-style accelerator for it — the "beyond the paper" workflow a
//! downstream user would follow for their own avatar model.
//!
//! Run with: `cargo run --release --example custom_network`

use fcad::{Customization, DseParams, Fcad};
use fcad_accel::Platform;
use fcad_nnir::{ActivationKind, BiasKind, NetworkBuilder, Precision, TensorShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical next-generation decoder: a geometry branch, a single
    // 512x512 texture branch and an eye-gaze branch sharing its front part
    // with the texture branch.
    let mut b = NetworkBuilder::new("custom-avatar-decoder");

    let geometry = b.add_branch("geometry", TensorShape::flat(256));
    b.reshape(geometry, TensorShape::chw(4, 8, 8))?;
    for channels in [192, 128, 64, 32] {
        b.cau_block(geometry, channels, 3, BiasKind::PerChannel)?;
    }
    b.conv(geometry, 3, 3, BiasKind::Untied)?;

    let texture = b.add_branch("texture", TensorShape::flat(448));
    b.reshape(texture, TensorShape::chw(7, 8, 8))?;
    for channels in [384, 192, 96, 48] {
        b.cau_block(texture, channels, 3, BiasKind::PerChannel)?;
    }
    let gaze = b.fork_branch("gaze", texture)?;
    for channels in [32, 16] {
        b.cau_block(texture, channels, 3, BiasKind::PerChannel)?;
    }
    b.conv(texture, 3, 3, BiasKind::Untied)?;
    b.conv(gaze, 2, 3, BiasKind::Untied)?;
    b.activation(gaze, ActivationKind::Tanh)?;

    let network = b.build()?;
    println!("{network}");

    // Target a mobile-class ASIC budget: 2048 MAC units, 1024 SRAM macros,
    // 25.6 GB/s of LPDDR bandwidth at 800 MHz.
    let platform = Platform::asic(2048, 1024, 25.6, 800.0);
    let result = Fcad::new(network, platform)
        .with_customization(Customization {
            precision: Precision::Int8,
            batch_sizes: vec![1, 2, 2],
            priorities: vec![1.0, 2.0, 1.0],
        })
        .with_dse_params(DseParams::paper())
        // The case table displays DSE wall time — opt into the clock.
        .with_timer(fcad::ElapsedTimer::WallClock)
        .run()?;

    println!(
        "{}",
        fcad::render_case_table("Custom decoder on a 2048-MAC ASIC", &result)
    );
    Ok(())
}
