//! `fcad-obs`: sim-time observability for the serve stack.
//!
//! Everything here is stamped with **sim-time only** (microseconds since
//! simulation start) and is deterministic by construction — the same
//! fcad-lint rules that police the engine (no wall clock, no unordered
//! iteration, no bare lossy casts) apply to this crate, so a fixed seed
//! yields byte-identical trace files run-over-run.
//!
//! The pieces:
//!
//! - [`TraceSink`] — the engine-facing trait; the default [`Off`] sink is
//!   a no-op the engine checks once per run, so an untraced simulation is
//!   bit-identical to a pre-observability one.
//! - [`Recorder`] — keeps the full event stream; feeds every exporter.
//! - [`Windowed`] — fixed-interval time-series metrics (queue depth,
//!   utilization, per-class backlog, admission/shed rate, p50/p99).
//! - [`chrome_trace`] — Chrome `trace_event` JSON for Perfetto.
//! - [`FlightRecorder`] — K-worst-latency + all-failures postmortems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cast;
pub mod chrome;
pub mod event;
pub mod flight;
pub mod json;
pub mod recorder;
pub mod sink;
pub mod window;

pub use chrome::chrome_trace;
pub use event::{
    BatchEvent, FleetEvent, FleetEventKind, RequestEvent, RequestEventKind, TraceEvent,
};
pub use flight::{FlightRecorder, RequestTimeline};
pub use json::validate_json;
pub use recorder::Recorder;
pub use sink::{Off, TraceSink, TraceSummary};
pub use window::{MetricsSeries, MetricsWindow, Windowed};
