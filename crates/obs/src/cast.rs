//! Checked numeric conversions for the observability crate.
//!
//! `fcad-lint`'s lossy-cast rule bans bare `as` casts in `crates/obs` just
//! as it does in `crates/serve`: trace files and metrics series promise
//! bit-identical output for a fixed seed, so every conversion goes through
//! these helpers, which concentrate the unavoidable casts in one audited
//! module and `debug_assert!` the precondition that makes each one
//! lossless.

/// Largest integer magnitude `f64` represents exactly (2^53).
const F64_EXACT: u64 = 1 << 53;

/// `u64 → f64`, exact: counters and microsecond timestamps in this crate
/// stay far below 2^53 (≈ 285 years in µs).
pub(crate) fn u64_to_f64(v: u64) -> f64 {
    debug_assert!(v <= F64_EXACT, "u64→f64 would round: {v} > 2^53");
    v as f64 // fcad-lint: allow(lossy-cast): asserted ≤ 2^53, exact in f64
}

/// `usize → f64`, exact (via [`u64_to_f64`]).
pub(crate) fn usize_to_f64(v: usize) -> f64 {
    u64_to_f64(usize_to_u64(v))
}

/// `usize → u64`: widening on every supported target (usize ≤ 64 bits).
pub(crate) fn usize_to_u64(v: usize) -> u64 {
    v as u64 // fcad-lint: allow(lossy-cast): usize is at most 64 bits on all supported targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact_in_the_asserted_range() {
        assert_eq!(u64_to_f64(0), 0.0);
        assert_eq!(u64_to_f64(1 << 52), 4_503_599_627_370_496.0);
        assert_eq!(usize_to_f64(42), 42.0);
        assert_eq!(usize_to_u64(7), 7);
    }

    #[test]
    #[should_panic(expected = "u64→f64 would round")]
    #[cfg(debug_assertions)]
    fn u64_beyond_2_53_is_caught_in_debug() {
        u64_to_f64(F64_EXACT + 1);
    }
}
