//! The flight recorder: compact per-request postmortems.
//!
//! Rebuilds full per-request timelines from the event stream but keeps
//! only the interesting ones — the K worst-latency completions plus every
//! request that did not complete (dropped, shed, lost) — and prints them
//! as a fixed-width table, newest evidence for "why did this request blow
//! its budget".

use std::collections::BTreeMap;

use crate::cast::u64_to_f64;
use crate::event::{RequestEventKind, TraceEvent};

/// One reconstructed request timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTimeline {
    /// Request id.
    pub id: u64,
    /// Session the request belongs to.
    pub session: usize,
    /// Branch requested.
    pub branch: usize,
    /// QoS class name.
    pub class_name: &'static str,
    /// Last shard the request touched, if any.
    pub shard: Option<usize>,
    /// Arrival sim-time, microseconds.
    pub issued_at_us: u64,
    /// Enqueue sim-time, if the request entered a queue.
    pub enqueued_at_us: Option<u64>,
    /// Service start sim-time, if dispatched.
    pub started_at_us: Option<u64>,
    /// Completion sim-time, if completed.
    pub completed_at_us: Option<u64>,
    /// Completion latency, if completed.
    pub latency_us: Option<u64>,
    /// Terminal outcome: `completed`, `dropped`, `shed`, `lost`,
    /// `expired`, or `in_flight` if the stream ended mid-request.
    pub outcome: &'static str,
    /// Times the request was re-placed off a failed shard.
    pub replaced: u64,
}

/// The flight recorder: the K worst completions and every non-completion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightRecorder {
    /// Retained timelines: worst completions first (latency descending),
    /// then non-completed requests in id order.
    pub timelines: Vec<RequestTimeline>,
    /// Total requests observed before filtering.
    pub observed: usize,
}

impl FlightRecorder {
    /// Reconstructs timelines from `events` and keeps the `worst_k`
    /// highest-latency completed requests plus all non-completed ones.
    pub fn from_events(events: &[TraceEvent], worst_k: usize) -> Self {
        let mut by_id: BTreeMap<u64, RequestTimeline> = BTreeMap::new();
        for event in events {
            let TraceEvent::Request(e) = event else {
                continue;
            };
            let entry = by_id.entry(e.id).or_insert(RequestTimeline {
                id: e.id,
                session: e.session,
                branch: e.branch,
                class_name: e.class_name,
                shard: None,
                issued_at_us: e.at_us,
                enqueued_at_us: None,
                started_at_us: None,
                completed_at_us: None,
                latency_us: None,
                outcome: "in_flight",
                replaced: 0,
            });
            if e.shard.is_some() {
                entry.shard = e.shard;
            }
            match e.kind {
                RequestEventKind::Arrival => entry.issued_at_us = e.at_us,
                RequestEventKind::Enqueue => entry.enqueued_at_us = Some(e.at_us),
                RequestEventKind::Replace { .. } => {
                    entry.replaced += 1;
                    entry.enqueued_at_us = Some(e.at_us);
                }
                RequestEventKind::ServiceStart => entry.started_at_us = Some(e.at_us),
                RequestEventKind::Complete { latency_us } => {
                    entry.completed_at_us = Some(e.at_us);
                    entry.latency_us = Some(latency_us);
                    entry.outcome = "completed";
                }
                RequestEventKind::Drop => entry.outcome = "dropped",
                RequestEventKind::Shed => entry.outcome = "shed",
                RequestEventKind::Lost { .. } => entry.outcome = "lost",
                RequestEventKind::Expired => entry.outcome = "expired",
                RequestEventKind::Admit => {}
            }
        }
        let observed = by_id.len();
        let mut completed: Vec<RequestTimeline> = Vec::new();
        let mut failed: Vec<RequestTimeline> = Vec::new();
        for t in by_id.into_values() {
            if t.outcome == "completed" {
                completed.push(t);
            } else {
                failed.push(t);
            }
        }
        completed.sort_by(|a, b| {
            b.latency_us
                .cmp(&a.latency_us)
                .then_with(|| a.id.cmp(&b.id))
        });
        completed.truncate(worst_k);
        let mut timelines = completed;
        timelines.extend(failed);
        Self {
            timelines,
            observed,
        }
    }

    /// Renders the retained timelines as a fixed-width postmortem table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder: {} of {} request(s) retained\n",
            self.timelines.len(),
            self.observed
        ));
        out.push_str(&format!(
            "{:>8} {:>7} {:>6} {:<12} {:>5} {:<9} {:>10} {:>10} {:>10} {:>10} {:>4}\n",
            "id",
            "session",
            "branch",
            "class",
            "shard",
            "outcome",
            "issued_ms",
            "start_ms",
            "done_ms",
            "latency_ms",
            "repl"
        ));
        for t in &self.timelines {
            let shard = t.shard.map_or("-".to_owned(), |s| s.to_string());
            let start = t.started_at_us.map_or("-".to_owned(), ms);
            let done = t.completed_at_us.map_or("-".to_owned(), ms);
            let latency = t.latency_us.map_or("-".to_owned(), ms);
            out.push_str(&format!(
                "{:>8} {:>7} {:>6} {:<12} {:>5} {:<9} {:>10} {:>10} {:>10} {:>10} {:>4}\n",
                t.id,
                t.session,
                t.branch,
                t.class_name,
                shard,
                t.outcome,
                ms(t.issued_at_us),
                start,
                done,
                latency,
                t.replaced
            ));
        }
        out
    }
}

/// Microseconds rendered as fixed three-decimal milliseconds.
fn ms(us: u64) -> String {
    format!("{:.3}", u64_to_f64(us) / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RequestEvent;

    fn req(at_us: u64, id: u64, shard: Option<usize>, kind: RequestEventKind) -> TraceEvent {
        TraceEvent::Request(RequestEvent {
            at_us,
            id,
            session: 0,
            branch: 0,
            class: 1,
            class_name: "standard",
            shard,
            kind,
        })
    }

    fn completed(id: u64, latency_us: u64) -> Vec<TraceEvent> {
        vec![
            req(0, id, Some(0), RequestEventKind::Arrival),
            req(0, id, Some(0), RequestEventKind::Enqueue),
            req(10, id, Some(0), RequestEventKind::ServiceStart),
            req(
                latency_us,
                id,
                Some(0),
                RequestEventKind::Complete { latency_us },
            ),
        ]
    }

    #[test]
    fn keeps_worst_k_completions_and_all_failures() {
        let mut events = Vec::new();
        events.extend(completed(0, 5_000));
        events.extend(completed(1, 9_000));
        events.extend(completed(2, 1_000));
        events.push(req(20, 3, Some(0), RequestEventKind::Arrival));
        events.push(req(20, 3, Some(0), RequestEventKind::Drop));
        let fr = FlightRecorder::from_events(&events, 2);
        assert_eq!(fr.observed, 4);
        assert_eq!(fr.timelines.len(), 3, "2 worst + 1 dropped");
        assert_eq!(fr.timelines[0].id, 1, "worst latency first");
        assert_eq!(fr.timelines[1].id, 0);
        assert_eq!(fr.timelines[2].outcome, "dropped");
    }

    #[test]
    fn replace_counts_and_outcomes_are_tracked() {
        let events = vec![
            req(0, 5, Some(1), RequestEventKind::Arrival),
            req(0, 5, Some(1), RequestEventKind::Enqueue),
            req(40, 5, Some(0), RequestEventKind::Replace { from_shard: 1 }),
            req(50, 5, None, RequestEventKind::Lost { orphaned: true }),
        ];
        let fr = FlightRecorder::from_events(&events, 4);
        assert_eq!(fr.timelines.len(), 1);
        let t = &fr.timelines[0];
        assert_eq!(t.replaced, 1);
        assert_eq!(t.outcome, "lost");
        assert_eq!(t.enqueued_at_us, Some(40));
    }

    #[test]
    fn table_has_a_header_and_one_row_per_timeline() {
        let fr = FlightRecorder::from_events(&completed(9, 2_500), 1);
        let table = fr.to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "summary, header, one row");
        assert!(lines[1].contains("latency_ms"));
        assert!(lines[2].contains("completed"));
        assert!(lines[2].contains("2.500"));
    }
}
