//! Chrome `trace_event` JSON export, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Layout: process 0 ("serve") has one track per shard carrying request
//! phase spans (`queued`, then `service`) plus a `fleet` track of instant
//! markers for scale events and kills; process 1 ("fabric") mirrors the
//! shards with one batch span per dispatch. Timestamps are sim-time
//! microseconds — the native unit of the format — so a fixed seed renders
//! a byte-identical file.

use std::collections::BTreeMap;

use crate::cast::usize_to_u64;
use crate::event::{RequestEvent, RequestEventKind, TraceEvent};
use crate::json::{array, JsonObject};

/// Pid hosting request-phase tracks and the fleet track.
const SERVE_PID: u64 = 0;

/// Pid hosting per-shard fabric batch tracks.
const FABRIC_PID: u64 = 1;

fn meta_thread(pid: u64, tid: u64, name: &str) -> String {
    JsonObject::new()
        .str("ph", "M")
        .str("name", "thread_name")
        .u64("pid", pid)
        .u64("tid", tid)
        .raw("args", &JsonObject::new().str("name", name).render())
        .render()
}

fn meta_process(pid: u64, name: &str) -> String {
    JsonObject::new()
        .str("ph", "M")
        .str("name", "process_name")
        .u64("pid", pid)
        .raw("args", &JsonObject::new().str("name", name).render())
        .render()
}

fn request_args(e: &RequestEvent) -> String {
    JsonObject::new()
        .u64("id", e.id)
        .u64("session", usize_to_u64(e.session))
        .u64("branch", usize_to_u64(e.branch))
        .str("class", e.class_name)
        .render()
}

fn span(name: &str, cat: &str, pid: u64, tid: u64, ts: u64, dur: u64, args: &str) -> String {
    JsonObject::new()
        .str("ph", "X")
        .str("name", name)
        .str("cat", cat)
        .u64("pid", pid)
        .u64("tid", tid)
        .u64("ts", ts)
        .u64("dur", dur)
        .raw("args", args)
        .render()
}

fn instant(name: &str, cat: &str, pid: u64, tid: u64, ts: u64, args: &str) -> String {
    JsonObject::new()
        .str("ph", "i")
        .str("name", name)
        .str("cat", cat)
        .str("s", "t")
        .u64("pid", pid)
        .u64("tid", tid)
        .u64("ts", ts)
        .raw("args", args)
        .render()
}

/// Renders the event stream as one Chrome `trace_event` JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // Group request events per id to reconstruct phase spans; BTreeMap
    // keeps the per-request iteration order deterministic.
    let mut per_request: BTreeMap<u64, Vec<&RequestEvent>> = BTreeMap::new();
    let mut shard_slots = 0usize;
    for event in events {
        match event {
            TraceEvent::Request(e) => {
                if let Some(shard) = e.shard {
                    shard_slots = shard_slots.max(shard + 1);
                }
                if let RequestEventKind::Replace { from_shard } = e.kind {
                    shard_slots = shard_slots.max(from_shard + 1);
                }
                per_request.entry(e.id).or_default().push(e);
            }
            TraceEvent::Batch(b) => shard_slots = shard_slots.max(b.shard + 1),
            TraceEvent::Fleet(f) => shard_slots = shard_slots.max(f.shard + 1),
        }
    }
    let fleet_tid = usize_to_u64(shard_slots);

    let mut rows: Vec<String> = Vec::new();
    rows.push(meta_process(SERVE_PID, "serve"));
    rows.push(meta_process(FABRIC_PID, "fabric"));
    for shard in 0..shard_slots {
        let tid = usize_to_u64(shard);
        rows.push(meta_thread(SERVE_PID, tid, &format!("shard {shard}")));
        rows.push(meta_thread(FABRIC_PID, tid, &format!("fabric {shard}")));
    }
    rows.push(meta_thread(SERVE_PID, fleet_tid, "fleet"));

    // Request phase spans, per id.
    for timeline in per_request.values() {
        let mut queued_since: Option<(u64, u64)> = None; // (tid, ts)
        let mut service_since: Option<(u64, u64)> = None;
        for e in timeline {
            let tid = e.shard.map_or(fleet_tid, usize_to_u64);
            match e.kind {
                RequestEventKind::Enqueue => queued_since = Some((tid, e.at_us)),
                RequestEventKind::Replace { from_shard } => {
                    // Close the queued span on the failed shard, reopen on
                    // the replacement target.
                    if let Some((q_tid, since)) = queued_since.take() {
                        let from = usize_to_u64(from_shard);
                        debug_assert_eq!(q_tid, from, "replace must leave the failed shard");
                        rows.push(span(
                            "queued",
                            "request",
                            SERVE_PID,
                            from,
                            since,
                            e.at_us - since,
                            &request_args(e),
                        ));
                    }
                    queued_since = Some((tid, e.at_us));
                }
                RequestEventKind::ServiceStart => {
                    if let Some((q_tid, since)) = queued_since.take() {
                        rows.push(span(
                            "queued",
                            "request",
                            SERVE_PID,
                            q_tid,
                            since,
                            e.at_us - since,
                            &request_args(e),
                        ));
                    }
                    service_since = Some((tid, e.at_us));
                }
                RequestEventKind::Complete { latency_us } => {
                    if let Some((s_tid, since)) = service_since.take() {
                        let args = JsonObject::new()
                            .u64("id", e.id)
                            .u64("session", usize_to_u64(e.session))
                            .u64("branch", usize_to_u64(e.branch))
                            .str("class", e.class_name)
                            .u64("latency_us", latency_us)
                            .render();
                        rows.push(span(
                            "service",
                            "request",
                            SERVE_PID,
                            s_tid,
                            since,
                            e.at_us - since,
                            &args,
                        ));
                    }
                }
                RequestEventKind::Drop
                | RequestEventKind::Shed
                | RequestEventKind::Lost { .. }
                | RequestEventKind::Expired => {
                    rows.push(instant(
                        e.kind.name(),
                        "request",
                        SERVE_PID,
                        tid,
                        e.at_us,
                        &request_args(e),
                    ));
                }
                RequestEventKind::Arrival | RequestEventKind::Admit => {}
            }
        }
    }

    // Batch spans and fleet instants, in stream order.
    for event in events {
        match event {
            TraceEvent::Batch(b) => {
                let args = JsonObject::new()
                    .u64("len", usize_to_u64(b.len))
                    .u64("branch", usize_to_u64(b.branch))
                    .render();
                rows.push(span(
                    &format!("batch b{} x{}", b.branch, b.len),
                    "fabric",
                    FABRIC_PID,
                    usize_to_u64(b.shard),
                    b.at_us,
                    b.service_us,
                    &args,
                ));
            }
            TraceEvent::Fleet(f) => {
                let args = JsonObject::new()
                    .u64("shard", usize_to_u64(f.shard))
                    .u64("active_after", usize_to_u64(f.active_after))
                    .render();
                rows.push(instant(
                    f.kind.name(),
                    "fleet",
                    SERVE_PID,
                    fleet_tid,
                    f.at_us,
                    &args,
                ));
            }
            TraceEvent::Request(_) => {}
        }
    }

    JsonObject::new()
        .raw("traceEvents", &array(&rows))
        .str("displayTimeUnit", "ms")
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BatchEvent, FleetEvent, FleetEventKind};
    use crate::json::validate_json;

    fn req(at_us: u64, id: u64, shard: Option<usize>, kind: RequestEventKind) -> TraceEvent {
        TraceEvent::Request(RequestEvent {
            at_us,
            id,
            session: 3,
            branch: 1,
            class: 0,
            class_name: "interactive",
            shard,
            kind,
        })
    }

    #[test]
    fn exports_phase_spans_batches_and_fleet_instants() {
        let events = vec![
            req(100, 7, Some(0), RequestEventKind::Arrival),
            req(100, 7, Some(0), RequestEventKind::Admit),
            req(100, 7, Some(0), RequestEventKind::Enqueue),
            TraceEvent::Batch(BatchEvent {
                at_us: 400,
                shard: 0,
                branch: 1,
                len: 1,
                service_us: 600,
            }),
            req(400, 7, Some(0), RequestEventKind::ServiceStart),
            req(
                1_000,
                7,
                Some(0),
                RequestEventKind::Complete { latency_us: 900 },
            ),
            TraceEvent::Fleet(FleetEvent {
                at_us: 500,
                shard: 1,
                kind: FleetEventKind::Up,
                active_after: 2,
            }),
        ];
        let doc = chrome_trace(&events);
        validate_json(&doc).expect("trace is valid JSON");
        assert!(doc.contains("\"name\":\"queued\""));
        assert!(doc.contains("\"name\":\"service\""));
        assert!(doc.contains("\"name\":\"batch b1 x1\""));
        assert!(doc.contains("\"name\":\"up\""));
        assert!(doc.contains("\"name\":\"fleet\""));
        assert!(doc.contains("\"displayTimeUnit\":\"ms\""));
        // queued span: 100 → 400 on shard 0.
        assert!(doc.contains("\"ts\":100,\"dur\":300"));
        // service span: 400 → 1000.
        assert!(doc.contains("\"ts\":400,\"dur\":600"));
    }

    #[test]
    fn replace_closes_the_queued_span_on_the_failed_shard() {
        let events = vec![
            req(0, 1, Some(1), RequestEventKind::Enqueue),
            req(50, 1, Some(0), RequestEventKind::Replace { from_shard: 1 }),
            req(80, 1, Some(0), RequestEventKind::ServiceStart),
            req(
                200,
                1,
                Some(0),
                RequestEventKind::Complete { latency_us: 200 },
            ),
        ];
        let doc = chrome_trace(&events);
        validate_json(&doc).expect("trace is valid JSON");
        // First queued span on shard (tid) 1, 0 → 50.
        assert!(doc.contains("\"tid\":1,\"ts\":0,\"dur\":50"));
        // Second queued span on shard 0, 50 → 80.
        assert!(doc.contains("\"tid\":0,\"ts\":50,\"dur\":30"));
    }

    #[test]
    fn terminal_instants_cover_drop_shed_lost_expired() {
        let events = vec![
            req(10, 1, Some(0), RequestEventKind::Drop),
            req(20, 2, Some(0), RequestEventKind::Shed),
            req(30, 3, None, RequestEventKind::Lost { orphaned: false }),
            req(40, 4, Some(0), RequestEventKind::Expired),
        ];
        let doc = chrome_trace(&events);
        validate_json(&doc).expect("trace is valid JSON");
        for name in [
            "\"name\":\"drop\"",
            "\"name\":\"shed\"",
            "\"name\":\"lost\"",
            "\"name\":\"expired\"",
        ] {
            assert!(doc.contains(name), "missing {name}");
        }
    }

    #[test]
    fn empty_stream_is_still_a_valid_document() {
        let doc = chrome_trace(&[]);
        validate_json(&doc).expect("empty trace is valid JSON");
        assert!(doc.contains("\"traceEvents\":["));
    }
}
