//! Minimal deterministic JSON emission and a structural validity checker.
//!
//! The workspace's offline `serde` stand-in only provides marker traits, so
//! the exporters render JSON with this tiny writer (a sibling of the one in
//! `fcad-serve` — obs is a leaf crate and cannot depend on serve). Output
//! is deterministic: fields appear in insertion order and floats use fixed
//! four-decimal formatting. [`validate_json`] is the round-trip checker the
//! CI smoke uses to assert exported traces are well-formed.

/// Builds one JSON object as a single-line string.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a float field with four decimals (non-finite values become 0).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let value = if value.is_finite() { value } else { 0.0 };
        self.fields.push(format!("\"{}\":{value:.4}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Renders the object as `{"k":v,...}` on a single line.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(","))
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Maximum nesting depth [`validate_json`] accepts, guarding the
/// recursive-descent parser against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 64;

/// Checks that `text` is one syntactically valid JSON value (object, array,
/// string, number, `true`, `false`, or `null`) with nothing trailing.
///
/// This is a structural validator, not a full parser: it verifies bracket
/// balance, string escapes, number shape, and separator placement — enough
/// for CI to assert an exported trace round-trips as JSON without pulling
/// in a JSON dependency.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => list(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, "true"),
        Some(b'f') => literal(bytes, pos, "false"),
        Some(b'n') => literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(b) => Err(format!("unexpected byte {b:#04x} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn list(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes.get(*pos + 2..*pos + 6);
                    let ok = hex.is_some_and(|h| h.iter().all(|c| c.is_ascii_hexdigit()));
                    if !ok {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0usize;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("expected digits at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0usize;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0usize;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn literal(bytes: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("expected `{word}` at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_typed_fields_in_insertion_order() {
        let line = JsonObject::new()
            .str("name", "w0")
            .u64("arrivals", 42)
            .f64("p99_ms", 1.25)
            .raw("classes", &array(&["{\"x\":1}".to_owned()]))
            .render();
        assert_eq!(
            line,
            "{\"name\":\"w0\",\"arrivals\":42,\"p99_ms\":1.2500,\"classes\":[{\"x\":1}]}"
        );
        validate_json(&line).expect("writer output is valid JSON");
    }

    #[test]
    fn validator_accepts_every_value_shape() {
        for text in [
            "{}",
            "[]",
            "null",
            "true",
            "false",
            "-12.5e+3",
            "\"say \\\"hi\\\" \\u0041\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}",
            "  { \"spaced\" : [ 1 , 2 ] }  ",
        ] {
            validate_json(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "01x",
            "\"unterminated",
            "{} trailing",
            "1.",
            "--1",
        ] {
            assert!(validate_json(text).is_err(), "{text:?} must be rejected");
        }
    }

    #[test]
    fn validator_caps_nesting_depth() {
        let deep = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(validate_json(&deep).is_err());
        let shallow = format!("{}1{}", "[".repeat(30), "]".repeat(30));
        validate_json(&shallow).expect("depth 30 is fine");
    }
}
