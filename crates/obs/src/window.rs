//! Fixed-interval time-series metrics: the `Windowed` sink.
//!
//! Aggregates the event stream into consecutive sim-time windows of equal
//! width: per-window arrival/admission/shed/drop/loss counts, queue depth
//! and per-class backlog at the window boundary, fabric busy-time and
//! utilization, and rolling p50/p99 completion latency. The series is
//! append-only and renders as JSON lines.

use crate::cast::{u64_to_f64, usize_to_f64, usize_to_u64};
use crate::event::{RequestEventKind, TraceEvent};
use crate::json::{array, JsonObject};
use crate::sink::TraceSink;

/// Per-window accumulator (internal).
#[derive(Debug, Default, Clone)]
struct WindowAccum {
    arrivals: u64,
    admitted: u64,
    shed: u64,
    dropped: u64,
    lost: u64,
    replaced: u64,
    dispatched: u64,
    completed: u64,
    expired: u64,
    fleet_events: u64,
    busy_us: u64,
    latencies_us: Vec<u64>,
    queue_depth_end: u64,
    class_queued_end: Vec<u64>,
    closed: bool,
}

/// One finished metrics window.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsWindow {
    /// Window index (0-based).
    pub index: u64,
    /// Window start, microseconds of sim-time (inclusive).
    pub from_us: u64,
    /// Window end, microseconds of sim-time (exclusive).
    pub to_us: u64,
    /// Requests that arrived in the window.
    pub arrivals: u64,
    /// Requests the admission controller accepted.
    pub admitted: u64,
    /// Requests the admission controller shed.
    pub shed: u64,
    /// Requests dropped on full queues.
    pub dropped: u64,
    /// Requests lost (no live shard, or orphaned past capacity).
    pub lost: u64,
    /// Requests re-placed off failed shards.
    pub replaced: u64,
    /// Requests that started service.
    pub dispatched: u64,
    /// Requests that completed (attributed to the completion window).
    pub completed: u64,
    /// Fleet lifecycle transitions in the window.
    pub fleet_events: u64,
    /// Fabric busy-time overlapping the window, microseconds, summed over
    /// shards (a window fully busy on two shards reports `2 × width`).
    pub busy_us: u64,
    /// `busy_us / (width × shard slots seen)` — fleet fabric utilization.
    pub utilization: f64,
    /// Queue depth across the fleet at the window boundary.
    pub queue_depth_end: u64,
    /// Per-class queued counts at the window boundary, indexed by
    /// `QosClass::index()`.
    pub class_queued_end: Vec<u64>,
    /// p50 completion latency of the window, milliseconds (0 if none).
    pub p50_ms: f64,
    /// p99 completion latency of the window, milliseconds (0 if none).
    pub p99_ms: f64,
    /// Requests retired in-queue by the deadline policy (their class
    /// budget ran out before the fabric could serve them).
    pub expired: u64,
}

/// The finished series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSeries {
    /// Window width, microseconds.
    pub interval_us: u64,
    /// Windows in time order, gap-free from sim-time zero.
    pub windows: Vec<MetricsWindow>,
}

impl MetricsSeries {
    /// Renders the series as JSON lines, one window per line.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            let classes: Vec<String> = w.class_queued_end.iter().map(u64::to_string).collect();
            out.push_str(
                &JsonObject::new()
                    .u64("window", w.index)
                    .u64("from_us", w.from_us)
                    .u64("to_us", w.to_us)
                    .u64("arrivals", w.arrivals)
                    .u64("admitted", w.admitted)
                    .u64("shed", w.shed)
                    .u64("dropped", w.dropped)
                    .u64("lost", w.lost)
                    .u64("replaced", w.replaced)
                    .u64("dispatched", w.dispatched)
                    .u64("completed", w.completed)
                    .u64("fleet_events", w.fleet_events)
                    .u64("busy_us", w.busy_us)
                    .f64("utilization", w.utilization)
                    .u64("queue_depth_end", w.queue_depth_end)
                    .raw("class_queued_end", &array(&classes))
                    .f64("p50_ms", w.p50_ms)
                    .f64("p99_ms", w.p99_ms)
                    .u64("expired", w.expired)
                    .render(),
            );
            out.push('\n');
        }
        out
    }
}

/// Fixed-interval windowing sink.
///
/// Queue depth is tracked from enqueue/dispatch/orphan events and
/// snapshotted at each window boundary; completions are attributed to the
/// window containing their (future-stamped) completion time, so latency
/// percentiles line up with when requests actually finished.
#[derive(Debug)]
pub struct Windowed {
    interval_us: u64,
    windows: Vec<WindowAccum>,
    /// Index of the window the monotone event cursor is in.
    cursor: usize,
    /// Highest window index touched by any event or busy span.
    max_index: usize,
    queue_depth: u64,
    class_queued: Vec<u64>,
    /// Highest shard index seen plus one: the utilization denominator.
    shard_slots: usize,
    saw_any: bool,
}

impl Windowed {
    /// Creates a windowing sink with the given window width (µs, min 1).
    pub fn new(interval_us: u64) -> Self {
        Self {
            interval_us: interval_us.max(1),
            windows: Vec::new(),
            cursor: 0,
            max_index: 0,
            queue_depth: 0,
            class_queued: Vec::new(),
            shard_slots: 0,
            saw_any: false,
        }
    }

    fn index_of(&self, at_us: u64) -> usize {
        usize::try_from(at_us / self.interval_us).unwrap_or(usize::MAX)
    }

    fn ensure(&mut self, index: usize) -> &mut WindowAccum {
        if index >= self.windows.len() {
            self.windows.resize_with(index + 1, WindowAccum::default);
        }
        self.max_index = self.max_index.max(index);
        &mut self.windows[index]
    }

    /// Advances the boundary cursor to `index`, snapshotting queue state
    /// into every window the cursor leaves behind.
    fn advance(&mut self, index: usize) {
        while self.cursor < index {
            let depth = self.queue_depth;
            let classes = self.class_queued.clone();
            let at = self.cursor;
            let w = self.ensure(at);
            w.queue_depth_end = depth;
            w.class_queued_end = classes;
            w.closed = true;
            self.cursor += 1;
        }
        self.ensure(index);
    }

    fn note_shard(&mut self, shard: usize) {
        self.shard_slots = self.shard_slots.max(shard + 1);
    }

    fn class_slot(&mut self, class: usize) -> &mut u64 {
        if class >= self.class_queued.len() {
            self.class_queued.resize(class + 1, 0);
        }
        &mut self.class_queued[class]
    }

    fn dec_queued(&mut self, class: usize) {
        debug_assert!(self.queue_depth > 0, "queue depth underflow");
        self.queue_depth = self.queue_depth.saturating_sub(1);
        let slot = self.class_slot(class);
        debug_assert!(*slot > 0, "class backlog underflow");
        *slot = slot.saturating_sub(1);
    }

    /// Consumes the sink, closing the final windows, and returns the
    /// series (empty if no events were seen).
    pub fn finish(mut self) -> MetricsSeries {
        if !self.saw_any {
            return MetricsSeries {
                interval_us: self.interval_us,
                windows: Vec::new(),
            };
        }
        let last = self.max_index;
        self.advance(last);
        // Close the last window too.
        let depth = self.queue_depth;
        let classes = self.class_queued.clone();
        let w = self.ensure(last);
        w.queue_depth_end = depth;
        w.class_queued_end = classes;
        w.closed = true;

        let interval = self.interval_us;
        let slots = self.shard_slots.max(1);
        let width = u64_to_f64(interval) * usize_to_f64(slots);
        let windows = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, acc)| {
                let index = usize_to_u64(i);
                let mut lat = acc.latencies_us.clone();
                lat.sort_unstable();
                MetricsWindow {
                    index,
                    from_us: index * interval,
                    to_us: (index + 1) * interval,
                    arrivals: acc.arrivals,
                    admitted: acc.admitted,
                    shed: acc.shed,
                    dropped: acc.dropped,
                    lost: acc.lost,
                    replaced: acc.replaced,
                    dispatched: acc.dispatched,
                    completed: acc.completed,
                    fleet_events: acc.fleet_events,
                    busy_us: acc.busy_us,
                    utilization: u64_to_f64(acc.busy_us) / width,
                    queue_depth_end: acc.queue_depth_end,
                    class_queued_end: acc.class_queued_end.clone(),
                    p50_ms: percentile_ms(&lat, 50),
                    p99_ms: percentile_ms(&lat, 99),
                    expired: acc.expired,
                }
            })
            .collect();
        MetricsSeries {
            interval_us: interval,
            windows,
        }
    }
}

/// Nearest-rank percentile (`percent` of 100) over ascending `sorted_us`,
/// in milliseconds. Rank arithmetic stays in integers so no float→int
/// conversion is ever needed.
fn percentile_ms(sorted_us: &[u64], percent: usize) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let n = sorted_us.len();
    let rank = (n * percent).div_ceil(100).max(1);
    u64_to_f64(sorted_us[rank.min(n) - 1]) / 1_000.0
}

impl TraceSink for Windowed {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.saw_any = true;
        match event {
            TraceEvent::Request(e) => {
                if let Some(shard) = e.shard {
                    self.note_shard(shard);
                }
                // Completions are stamped with their (future) finish
                // time; route them by index without moving the cursor.
                if let RequestEventKind::Complete { latency_us } = e.kind {
                    let idx = self.index_of(e.at_us);
                    let w = self.ensure(idx);
                    w.completed += 1;
                    w.latencies_us.push(latency_us);
                    return;
                }
                let idx = self.index_of(e.at_us);
                self.advance(idx);
                match e.kind {
                    RequestEventKind::Arrival => self.ensure(idx).arrivals += 1,
                    RequestEventKind::Admit => self.ensure(idx).admitted += 1,
                    RequestEventKind::Shed => self.ensure(idx).shed += 1,
                    RequestEventKind::Enqueue => {
                        self.queue_depth += 1;
                        *self.class_slot(e.class) += 1;
                    }
                    RequestEventKind::Drop => self.ensure(idx).dropped += 1,
                    RequestEventKind::Replace { .. } => {
                        // Leaves one queue, enters another: depth unchanged.
                        self.ensure(idx).replaced += 1;
                    }
                    RequestEventKind::Lost { orphaned } => {
                        if orphaned {
                            self.dec_queued(e.class);
                        }
                        self.ensure(idx).lost += 1;
                    }
                    RequestEventKind::Expired => {
                        // Retired straight out of a shard queue.
                        self.dec_queued(e.class);
                        self.ensure(idx).expired += 1;
                    }
                    RequestEventKind::ServiceStart => {
                        self.dec_queued(e.class);
                        self.ensure(idx).dispatched += 1;
                    }
                    // fcad-lint: allow(panic): Complete returns early in the match above, so this arm cannot be reached
                    RequestEventKind::Complete { .. } => unreachable!("handled above"),
                }
            }
            TraceEvent::Batch(b) => {
                self.note_shard(b.shard);
                let idx = self.index_of(b.at_us);
                self.advance(idx);
                // Split the busy span across every window it overlaps.
                let end = b.at_us + b.service_us;
                let mut from = b.at_us;
                while from < end {
                    let w_idx = self.index_of(from);
                    let w_end = (usize_to_u64(w_idx) + 1) * self.interval_us;
                    let take = end.min(w_end) - from;
                    self.ensure(w_idx).busy_us += take;
                    from = w_end;
                }
            }
            TraceEvent::Fleet(f) => {
                self.note_shard(f.shard);
                let idx = self.index_of(f.at_us);
                self.ensure(idx).fleet_events += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BatchEvent, FleetEvent, FleetEventKind, RequestEvent};

    fn req(at_us: u64, id: u64, shard: Option<usize>, kind: RequestEventKind) -> TraceEvent {
        TraceEvent::Request(RequestEvent {
            at_us,
            id,
            session: 0,
            branch: 0,
            class: 1,
            class_name: "standard",
            shard,
            kind,
        })
    }

    #[test]
    fn empty_stream_yields_empty_series() {
        let series = Windowed::new(1_000).finish();
        assert!(series.windows.is_empty());
        assert_eq!(series.to_json_lines(), "");
    }

    #[test]
    fn counts_land_in_their_windows_and_depth_snapshots_at_boundaries() {
        let mut w = Windowed::new(1_000);
        w.record(req(100, 0, Some(0), RequestEventKind::Arrival));
        w.record(req(100, 0, Some(0), RequestEventKind::Admit));
        w.record(req(100, 0, Some(0), RequestEventKind::Enqueue));
        w.record(TraceEvent::Batch(BatchEvent {
            at_us: 500,
            shard: 0,
            branch: 0,
            len: 1,
            service_us: 1_000, // spans windows 0 and 1
        }));
        w.record(req(500, 0, Some(0), RequestEventKind::ServiceStart));
        w.record(req(
            1_500,
            0,
            Some(0),
            RequestEventKind::Complete { latency_us: 1_400 },
        ));
        w.record(req(2_100, 1, Some(0), RequestEventKind::Arrival));
        w.record(req(2_100, 1, Some(0), RequestEventKind::Enqueue));
        let series = w.finish();
        assert_eq!(series.windows.len(), 3);
        let w0 = &series.windows[0];
        assert_eq!(w0.arrivals, 1);
        assert_eq!(w0.admitted, 1);
        assert_eq!(w0.dispatched, 1);
        assert_eq!(w0.busy_us, 500);
        assert_eq!(w0.queue_depth_end, 0, "enqueued then dispatched");
        let w1 = &series.windows[1];
        assert_eq!(w1.completed, 1);
        assert_eq!(w1.busy_us, 500);
        assert!((w1.p50_ms - 1.4).abs() < 1e-9);
        let w2 = &series.windows[2];
        assert_eq!(w2.arrivals, 1);
        assert_eq!(w2.queue_depth_end, 1, "request 1 still queued at end");
        assert_eq!(w2.class_queued_end, vec![0, 1]);
    }

    #[test]
    fn fleet_events_and_losses_are_counted() {
        let mut w = Windowed::new(1_000);
        w.record(req(10, 0, Some(1), RequestEventKind::Enqueue));
        w.record(TraceEvent::Fleet(FleetEvent {
            at_us: 20,
            shard: 1,
            kind: FleetEventKind::Fail,
            active_after: 0,
        }));
        w.record(req(20, 0, None, RequestEventKind::Lost { orphaned: true }));
        w.record(req(30, 1, None, RequestEventKind::Arrival));
        w.record(req(30, 1, None, RequestEventKind::Lost { orphaned: false }));
        let series = w.finish();
        assert_eq!(series.windows.len(), 1);
        let w0 = &series.windows[0];
        assert_eq!(w0.fleet_events, 1);
        assert_eq!(w0.lost, 2);
        assert_eq!(w0.queue_depth_end, 0, "orphan loss drains the queue");
    }

    #[test]
    fn expiries_drain_the_queue_and_are_counted() {
        let mut w = Windowed::new(1_000);
        w.record(req(10, 0, Some(0), RequestEventKind::Enqueue));
        w.record(req(900, 0, Some(0), RequestEventKind::Expired));
        let series = w.finish();
        assert_eq!(series.windows.len(), 1);
        let w0 = &series.windows[0];
        assert_eq!(w0.expired, 1);
        assert_eq!(w0.queue_depth_end, 0, "expiry drains the queue");
        assert!(series.to_json_lines().contains("\"expired\":1"));
    }

    #[test]
    fn json_lines_are_valid_and_one_per_window() {
        let mut w = Windowed::new(1_000);
        w.record(req(100, 0, Some(0), RequestEventKind::Arrival));
        w.record(req(2_500, 1, Some(0), RequestEventKind::Arrival));
        let lines = w.finish().to_json_lines();
        let rows: Vec<&str> = lines.lines().collect();
        assert_eq!(rows.len(), 3);
        for row in rows {
            crate::json::validate_json(row).expect("window line is valid JSON");
            assert!(row.starts_with("{\"window\":"));
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).map(|v| v * 1_000).collect();
        assert!((percentile_ms(&sorted, 50) - 50.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile_ms(&[], 99), 0.0);
        assert!((percentile_ms(&[7_000], 50) - 7.0).abs() < 1e-9);
    }
}
