//! The `TraceSink` trait and the zero-cost default.

use crate::event::TraceEvent;

/// Receives engine events as they happen, in deterministic engine order.
///
/// The engine checks [`TraceSink::enabled`] once per run and skips every
/// event construction when it returns `false`, so a disabled sink costs a
/// single branch per emission site — no allocation, no behavior change.
pub trait TraceSink {
    /// Whether the engine should construct and deliver events at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Delivers one event. Default: discard.
    fn record(&mut self, event: TraceEvent) {
        let _ = event;
    }
}

/// The default sink: tracing off, zero allocations, zero behavior change.
#[derive(Debug, Default, Clone, Copy)]
pub struct Off;

impl TraceSink for Off {}

/// Event counts summarising one recorded run, suitable for appending to a
/// `ServeReport` JSON line as an optional `trace_summary` object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total events recorded.
    pub events: u64,
    /// Request lifecycle events.
    pub request_events: u64,
    /// Batch dispatch events.
    pub batch_events: u64,
    /// Fleet lifecycle events.
    pub fleet_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BatchEvent, TraceEvent};

    #[test]
    fn off_is_disabled_and_discards() {
        let mut off = Off;
        assert!(!off.enabled());
        off.record(TraceEvent::Batch(BatchEvent {
            at_us: 0,
            shard: 0,
            branch: 0,
            len: 1,
            service_us: 1,
        }));
    }
}
