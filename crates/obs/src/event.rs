//! The trace event taxonomy.
//!
//! Every event is a plain-old-data value stamped with **sim-time only**
//! (microseconds since simulation start) — the tracer is subject to the
//! same wall-clock and ordering lint rules as the engine it observes.
//! Request events are keyed by `(id, session, branch, class, shard)` so a
//! full per-request timeline can be reconstructed from the flat stream.

/// What happened to a single request at one instant of sim-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestEventKind {
    /// The request arrived and a placement target was chosen (or none was
    /// available — then `shard` is `None` and a `Lost` event follows).
    Arrival,
    /// The admission controller accepted the request for its shard.
    Admit,
    /// The admission controller rejected the request (policy shed).
    Shed,
    /// The request entered its shard's queue.
    Enqueue,
    /// The shard queue was full; the request was dropped at arrival.
    Drop,
    /// The request was re-placed from a failed shard onto a live one.
    Replace {
        /// The shard that failed while holding the request.
        from_shard: usize,
    },
    /// The request left the system without service.
    Lost {
        /// `true` when the request was orphaned from a failed shard's
        /// queue; `false` when no live shard existed at arrival.
        orphaned: bool,
    },
    /// The request expired in queue — its class deadline passed before the
    /// fabric could serve it — and was retired unserved by the engine's
    /// deadline policy.
    Expired,
    /// The request's batch began service on the fabric.
    ServiceStart,
    /// The request completed service.
    Complete {
        /// Completion latency (completion minus arrival), microseconds.
        latency_us: u64,
    },
}

impl RequestEventKind {
    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            RequestEventKind::Arrival => "arrival",
            RequestEventKind::Admit => "admit",
            RequestEventKind::Shed => "shed",
            RequestEventKind::Enqueue => "enqueue",
            RequestEventKind::Drop => "drop",
            RequestEventKind::Replace { .. } => "replace",
            RequestEventKind::Lost { .. } => "lost",
            RequestEventKind::Expired => "expired",
            RequestEventKind::ServiceStart => "service_start",
            RequestEventKind::Complete { .. } => "complete",
        }
    }

    /// Whether this kind ends a request's lifecycle (exactly one terminal
    /// event per issued request: complete, drop, lost, shed, or expired).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RequestEventKind::Complete { .. }
                | RequestEventKind::Drop
                | RequestEventKind::Lost { .. }
                | RequestEventKind::Shed
                | RequestEventKind::Expired
        )
    }
}

/// One request lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestEvent {
    /// Sim-time of the event, microseconds since simulation start.
    pub at_us: u64,
    /// Globally unique request id (arrival order).
    pub id: u64,
    /// Avatar session the request belongs to.
    pub session: usize,
    /// Branch whose output is requested.
    pub branch: usize,
    /// QoS class index (`QosClass::index()`).
    pub class: usize,
    /// QoS class name (`QosClass::name()`).
    pub class_name: &'static str,
    /// Shard the event is attributed to; `None` when no shard was involved
    /// (e.g. lost because no live shard existed).
    pub shard: Option<usize>,
    /// What happened.
    pub kind: RequestEventKind,
}

/// One fabric batch dispatch: `len` same-branch requests started service
/// together on `shard` and will occupy it for `service_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// Dispatch sim-time, microseconds.
    pub at_us: u64,
    /// Shard whose fabric runs the batch.
    pub shard: usize,
    /// Branch the batch decodes.
    pub branch: usize,
    /// Number of requests in the batch.
    pub len: usize,
    /// Fabric occupancy of the batch, microseconds.
    pub service_us: u64,
}

/// Fleet-level lifecycle transitions, mirroring `ScaleEventKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEventKind {
    /// A new shard was spawned (warming).
    Up,
    /// A warming shard became active.
    Warm,
    /// A shard began draining.
    Drain,
    /// A drained shard was retired.
    Retire,
    /// A shard was killed by the failure plan.
    Fail,
}

impl FleetEventKind {
    /// Stable lowercase name, identical to `ScaleEventKind::name()`.
    pub fn name(self) -> &'static str {
        match self {
            FleetEventKind::Up => "up",
            FleetEventKind::Warm => "warm",
            FleetEventKind::Drain => "drain",
            FleetEventKind::Retire => "retire",
            FleetEventKind::Fail => "fail",
        }
    }
}

/// One fleet lifecycle event on the trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Sim-time of the transition, microseconds.
    pub at_us: u64,
    /// Shard the transition applies to.
    pub shard: usize,
    /// The transition.
    pub kind: FleetEventKind,
    /// Number of active shards after the transition.
    pub active_after: usize,
}

/// Any event the engine can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request lifecycle event.
    Request(RequestEvent),
    /// A batch dispatch event.
    Batch(BatchEvent),
    /// A fleet lifecycle event.
    Fleet(FleetEvent),
}

impl TraceEvent {
    /// Sim-time of the event, microseconds.
    pub fn at_us(&self) -> u64 {
        match self {
            TraceEvent::Request(e) => e.at_us,
            TraceEvent::Batch(e) => e.at_us,
            TraceEvent::Fleet(e) => e.at_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_kinds_are_exactly_the_five_report_counters() {
        assert!(RequestEventKind::Complete { latency_us: 1 }.is_terminal());
        assert!(RequestEventKind::Drop.is_terminal());
        assert!(RequestEventKind::Lost { orphaned: true }.is_terminal());
        assert!(RequestEventKind::Shed.is_terminal());
        assert!(RequestEventKind::Expired.is_terminal());
        for kind in [
            RequestEventKind::Arrival,
            RequestEventKind::Admit,
            RequestEventKind::Enqueue,
            RequestEventKind::Replace { from_shard: 0 },
            RequestEventKind::ServiceStart,
        ] {
            assert!(!kind.is_terminal(), "{} must not be terminal", kind.name());
        }
    }

    #[test]
    fn names_are_stable_lowercase_identifiers() {
        assert_eq!(
            RequestEventKind::Replace { from_shard: 3 }.name(),
            "replace"
        );
        assert_eq!(FleetEventKind::Retire.name(), "retire");
        let e = TraceEvent::Batch(BatchEvent {
            at_us: 7,
            shard: 0,
            branch: 1,
            len: 2,
            service_us: 3,
        });
        assert_eq!(e.at_us(), 7);
    }
}
