//! The `Recorder` sink: keeps every event, in engine order.

use crate::event::{BatchEvent, FleetEvent, RequestEvent, TraceEvent};
use crate::sink::{TraceSink, TraceSummary};

/// Records the full event stream of one run.
///
/// Events are stored exactly in delivery order, which the engine guarantees
/// is deterministic for a fixed seed — so two recordings of the same
/// scenario are element-for-element identical, and every exporter built on
/// a `Recorder` inherits byte-identical output.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events, in delivery order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Request lifecycle events only, in delivery order.
    pub fn request_events(&self) -> impl Iterator<Item = &RequestEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Request(r) => Some(r),
            _ => None,
        })
    }

    /// Batch dispatch events only, in delivery order.
    pub fn batch_events(&self) -> impl Iterator<Item = &BatchEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Batch(b) => Some(b),
            _ => None,
        })
    }

    /// Fleet lifecycle events only, in delivery order.
    pub fn fleet_events(&self) -> impl Iterator<Item = &FleetEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Fleet(f) => Some(f),
            _ => None,
        })
    }

    /// Event counts for the report's optional `trace_summary` field.
    pub fn summary(&self) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for event in &self.events {
            summary.events += 1;
            match event {
                TraceEvent::Request(_) => summary.request_events += 1,
                TraceEvent::Batch(_) => summary.batch_events += 1,
                TraceEvent::Fleet(_) => summary.fleet_events += 1,
            }
        }
        summary
    }

    /// Replays the recorded stream into another sink (e.g. a `Windowed`
    /// aggregator), preserving delivery order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for event in &self.events {
            sink.record(*event);
        }
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FleetEventKind, RequestEventKind};

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Request(RequestEvent {
            at_us: 1,
            id: 0,
            session: 0,
            branch: 0,
            class: 1,
            class_name: "standard",
            shard: Some(0),
            kind: RequestEventKind::Arrival,
        }));
        rec.record(TraceEvent::Batch(BatchEvent {
            at_us: 2,
            shard: 0,
            branch: 0,
            len: 1,
            service_us: 5,
        }));
        rec.record(TraceEvent::Fleet(FleetEvent {
            at_us: 3,
            shard: 1,
            kind: FleetEventKind::Up,
            active_after: 1,
        }));
        rec
    }

    #[test]
    fn records_in_order_and_summarises_by_kind() {
        let rec = sample();
        assert_eq!(rec.len(), 3);
        assert!(!rec.is_empty());
        assert_eq!(rec.request_events().count(), 1);
        assert_eq!(rec.batch_events().count(), 1);
        assert_eq!(rec.fleet_events().count(), 1);
        let summary = rec.summary();
        assert_eq!(summary.events, 3);
        assert_eq!(summary.request_events, 1);
        assert_eq!(summary.batch_events, 1);
        assert_eq!(summary.fleet_events, 1);
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let rec = sample();
        let mut copy = Recorder::new();
        rec.replay(&mut copy);
        assert_eq!(rec.events(), copy.events());
    }
}
