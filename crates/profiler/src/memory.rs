//! Memory-footprint estimation.

use crate::profile::NetworkProfile;
use fcad_nnir::Precision;
use serde::{Deserialize, Serialize};

/// Memory demand of a network at a given precision.
///
/// The decoder's weights (7.2 M parameters) and HD intermediate feature maps
/// (up to 16×1024×1024 elements) are what break cache-limited SoCs and
/// BRAM-limited FPGA baselines in Sec. III, so the footprint is split into
/// the two components the accelerator has to place somewhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Precision the footprint was computed at.
    pub precision: Precision,
    /// Bytes of weights (shared layers counted once).
    pub weight_bytes: u64,
    /// Bytes of the largest single intermediate feature map.
    pub peak_feature_bytes: u64,
    /// Bytes of all feature maps produced during one inference, summed over
    /// every branch (an upper bound on streaming traffic when nothing is
    /// kept on chip).
    pub total_feature_bytes: u64,
}

impl MemoryFootprint {
    /// Computes the footprint of a profiled network.
    pub fn of(profile: &NetworkProfile, precision: Precision) -> Self {
        let weight_bytes = profile.total_params() * precision.bytes() as u64;
        let peak_feature_bytes =
            profile.max_intermediate_elements() as u64 * precision.bytes() as u64;
        let total_feature_bytes = profile
            .branches()
            .iter()
            .flat_map(|b| b.layers.iter())
            .map(|l| l.output.elements() as u64 * precision.bytes() as u64)
            .sum();
        Self {
            precision,
            weight_bytes,
            peak_feature_bytes,
            total_feature_bytes,
        }
    }

    /// Whether the weights alone exceed a cache/buffer of `capacity_bytes`.
    pub fn exceeds_cache(&self, capacity_bytes: u64) -> bool {
        self.weight_bytes > capacity_bytes
    }

    /// Total working-set bytes (weights plus peak feature map).
    pub fn working_set_bytes(&self) -> u64 {
        self.weight_bytes + self.peak_feature_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::targeted_decoder;

    #[test]
    fn footprint_scales_with_precision() {
        let profile = NetworkProfile::of(&targeted_decoder());
        let int8 = MemoryFootprint::of(&profile, Precision::Int8);
        let int16 = MemoryFootprint::of(&profile, Precision::Int16);
        assert_eq!(int16.weight_bytes, 2 * int8.weight_bytes);
        assert_eq!(int16.peak_feature_bytes, 2 * int8.peak_feature_bytes);
    }

    #[test]
    fn decoder_overflows_a_mobile_soc_cache() {
        // The Snapdragon-class SoC in the paper is starved by its limited
        // cache: the 8-bit decoder weights (~7 MB) plus a 16 MB HD feature
        // map cannot fit in a few MB of shared cache.
        let profile = NetworkProfile::of(&targeted_decoder());
        let fp = MemoryFootprint::of(&profile, Precision::Int8);
        let soc_cache = 4 * 1024 * 1024;
        assert!(fp.exceeds_cache(soc_cache));
        assert!(fp.peak_feature_bytes >= 16 * 1024 * 1024);
    }

    #[test]
    fn working_set_combines_weights_and_peak_feature() {
        let profile = NetworkProfile::of(&targeted_decoder());
        let fp = MemoryFootprint::of(&profile, Precision::Int8);
        assert_eq!(
            fp.working_set_bytes(),
            fp.weight_bytes + fp.peak_feature_bytes
        );
        assert!(fp.total_feature_bytes > fp.peak_feature_bytes);
    }
}
