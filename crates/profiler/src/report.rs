//! Human-readable report formatting.
//!
//! The benchmark harness prints paper-style tables (Table I, Table II, ...)
//! from structured results; [`Table`] is the small text-table builder they
//! all share.

use crate::profile::NetworkProfile;

/// A simple fixed-width text table.
///
/// ```
/// use fcad_profiler::Table;
///
/// let mut t = Table::new(vec!["Br.".into(), "GOP".into()]);
/// t.add_row(vec!["1".into(), "1.9".into()]);
/// let text = t.render();
/// assert!(text.contains("GOP"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let format_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 != columns {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&format_row(&self.header));
        out.push('\n');
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

impl NetworkProfile {
    /// Formats the profile in the style of Table I of the paper: one row per
    /// branch with its structure summary, GOP and parameter count (and their
    /// share of the double-counted totals), plus a deduplicated total line.
    pub fn table(&self) -> String {
        let mut table = Table::new(vec![
            "Br.".to_owned(),
            "Input -> Output".to_owned(),
            "Layers".to_owned(),
            "GOP".to_owned(),
            "Params".to_owned(),
        ]);
        let ops_shares = self.ops_shares();
        let param_shares = self.param_shares();
        for (i, branch) in self.branches().iter().enumerate() {
            table.add_row(vec![
                format!("{} ({})", i + 1, branch.name),
                format!("{} -> {}", branch.input, branch.output),
                format!("{}", branch.layer_count()),
                format!(
                    "{:.1} ({:.1}%)",
                    branch.ops() as f64 / 1e9,
                    ops_shares[i] * 100.0
                ),
                format!(
                    "{:.1}M ({:.1}%)",
                    branch.params() as f64 / 1e6,
                    param_shares[i] * 100.0
                ),
            ]);
        }
        table.add_row(vec![
            "total".to_owned(),
            String::new(),
            String::new(),
            format!("{:.1}", self.total_ops() as f64 / 1e9),
            format!("{:.1}M", self.total_params() as f64 / 1e6),
        ]);
        format!(
            "{} ({})\n{}",
            "Network profile",
            self.network_name(),
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::targeted_decoder;

    #[test]
    fn table_renders_all_rows_and_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxxx".into(), "y".into()]);
        t.add_row(vec!["1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn decoder_table_mentions_every_branch_and_total() {
        let profile = NetworkProfile::of(&targeted_decoder());
        let text = profile.table();
        assert!(text.contains("geometry"));
        assert!(text.contains("texture"));
        assert!(text.contains("warp"));
        assert!(text.contains("total"));
        assert!(text.contains('%'));
    }
}
