//! Network profiler — the *Analysis* step of the F-CAD design flow.
//!
//! Given a [`fcad_nnir::Network`], the profiler extracts the layer-wise and
//! branch-wise information the rest of the flow needs (Sec. IV of the
//! paper): layer types and configurations, branch count, layers per branch,
//! layer dependencies, and the compute and memory demand of every layer and
//! branch. Its output drives
//!
//! * the Construction step (which layers are major vs. fusible, which branch
//!   is the critical flow of a shared front part),
//! * the Optimization step (per-layer op counts and weight-reuse figures for
//!   Algorithm 2, per-branch demand statistics for Algorithm 1), and
//! * the Table I reproduction in the benchmark harness.
//!
//! # Example
//!
//! ```
//! use fcad_nnir::models::targeted_decoder;
//! use fcad_profiler::NetworkProfile;
//!
//! let profile = NetworkProfile::of(&targeted_decoder());
//! assert_eq!(profile.branches().len(), 3);
//! println!("{}", profile.table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory;
mod profile;
mod report;

pub use memory::MemoryFootprint;
pub use profile::{BranchProfile, LayerProfile, NetworkProfile};
pub use report::Table;
