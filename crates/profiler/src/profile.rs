//! Layer-, branch- and network-level demand statistics.

use fcad_nnir::{BranchId, LayerId, LayerKind, Network, Precision, TensorShape};
use serde::{Deserialize, Serialize};

/// Compute and memory demand of a single layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Id of the layer inside the profiled network.
    pub layer_id: LayerId,
    /// Layer name.
    pub name: String,
    /// Whether the layer performs multiply-accumulate work (Conv / Dense).
    pub is_compute: bool,
    /// Whether the layer is "major" (Conv-like or up-sampling) and therefore
    /// occupies its own pipeline stage after layer fusion.
    pub is_major: bool,
    /// Input feature-map shape.
    pub input: TensorShape,
    /// Output feature-map shape.
    pub output: TensorShape,
    /// Kernel size (1 for non-convolution layers).
    pub kernel: usize,
    /// Multiply-accumulates per inference.
    pub macs: u64,
    /// Total operations per inference (2 ops per MAC plus auxiliary work).
    pub ops: u64,
    /// Learnable parameters.
    pub params: u64,
}

impl LayerProfile {
    fn of(net: &Network, id: LayerId) -> Self {
        let layer = net.layer(id).expect("layer id comes from this network");
        Self {
            layer_id: id,
            name: layer.name().to_owned(),
            is_compute: layer.kind().is_compute(),
            is_major: layer.kind().is_major(),
            input: layer.input_shape(),
            output: layer.output_shape(),
            kernel: layer.kernel(),
            macs: layer.macs(),
            ops: layer.ops(),
            params: layer.params(),
        }
    }

    /// Weight traffic in bytes at the given precision.
    pub fn weight_bytes(&self, precision: Precision) -> u64 {
        self.params * precision.bytes() as u64
    }

    /// Arithmetic intensity: operations per weight parameter. High values
    /// mean weights are heavily reused (large spatial maps); low values mean
    /// the layer is weight-bound (dense layers).
    pub fn ops_per_param(&self) -> f64 {
        if self.params == 0 {
            f64::INFINITY
        } else {
            self.ops as f64 / self.params as f64
        }
    }
}

/// Demand statistics of one branch (including its shared prefix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Id of the branch inside the profiled network.
    pub branch_id: BranchId,
    /// Branch name.
    pub name: String,
    /// Per-layer statistics in execution order (including the shared prefix).
    pub layers: Vec<LayerProfile>,
    /// Number of leading layers shared with a parent branch.
    pub shared_prefix_len: usize,
    /// Input shape of the branch.
    pub input: TensorShape,
    /// Output shape of the branch.
    pub output: TensorShape,
}

impl BranchProfile {
    /// Total operations of the branch.
    pub fn ops(&self) -> u64 {
        self.layers.iter().map(|l| l.ops).sum()
    }

    /// Total MACs of the branch.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total parameters of the branch.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Number of layers in the branch.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of compute (Conv / Dense) layers in the branch.
    pub fn compute_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_compute).count()
    }

    /// Largest feature map produced inside the branch, in elements.
    pub fn max_feature_elements(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.output.elements())
            .max()
            .unwrap_or(0)
    }

    /// The compute layers of the branch only (the units the accelerator
    /// instantiates pipeline stages for).
    pub fn compute_layers(&self) -> impl Iterator<Item = &LayerProfile> {
        self.layers.iter().filter(|l| l.is_compute)
    }
}

/// Full profile of a multi-branch network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    network_name: String,
    branches: Vec<BranchProfile>,
    total_ops: u64,
    total_macs: u64,
    total_params: u64,
    max_intermediate_elements: usize,
}

impl NetworkProfile {
    /// Profiles a network.
    pub fn of(net: &Network) -> Self {
        let branches = net
            .branches()
            .map(|(id, branch)| BranchProfile {
                branch_id: id,
                name: branch.name().to_owned(),
                layers: branch
                    .layer_ids()
                    .iter()
                    .map(|lid| LayerProfile::of(net, *lid))
                    .collect(),
                shared_prefix_len: branch.shared_prefix_len(),
                input: branch.input_shape(),
                output: net.branch_output_shape(id).unwrap_or_default(),
            })
            .collect();
        Self {
            network_name: net.name().to_owned(),
            branches,
            total_ops: net.total_ops(),
            total_macs: net.total_macs(),
            total_params: net.total_params(),
            max_intermediate_elements: net.max_intermediate_elements(),
        }
    }

    /// Name of the profiled network.
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// Per-branch profiles in declaration order.
    pub fn branches(&self) -> &[BranchProfile] {
        &self.branches
    }

    /// Profile of a single branch.
    pub fn branch(&self, id: BranchId) -> Option<&BranchProfile> {
        self.branches.iter().find(|b| b.branch_id == id)
    }

    /// Total operations per inference with shared layers counted once.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Total MACs per inference with shared layers counted once.
    pub fn total_macs(&self) -> u64 {
        self.total_macs
    }

    /// Total parameters with shared layers counted once.
    pub fn total_params(&self) -> u64 {
        self.total_params
    }

    /// Total operations per inference counting shared layers once per branch
    /// (the basis the paper uses for its per-branch percentages).
    pub fn double_counted_ops(&self) -> u64 {
        self.branches.iter().map(BranchProfile::ops).sum()
    }

    /// Total parameters counting shared layers once per branch.
    pub fn double_counted_params(&self) -> u64 {
        self.branches.iter().map(BranchProfile::params).sum()
    }

    /// Share of (double-counted) operations contributed by each branch.
    pub fn ops_shares(&self) -> Vec<f64> {
        let total = self.double_counted_ops().max(1) as f64;
        self.branches
            .iter()
            .map(|b| b.ops() as f64 / total)
            .collect()
    }

    /// Share of (double-counted) parameters contributed by each branch.
    pub fn param_shares(&self) -> Vec<f64> {
        let total = self.double_counted_params().max(1) as f64;
        self.branches
            .iter()
            .map(|b| b.params() as f64 / total)
            .collect()
    }

    /// Largest intermediate feature map anywhere in the network, in elements.
    pub fn max_intermediate_elements(&self) -> usize {
        self.max_intermediate_elements
    }

    /// Index of the branch with the highest compute demand (the "critical
    /// flow" the Construction step assigns shared layers to).
    pub fn critical_branch(&self) -> Option<BranchId> {
        self.branches
            .iter()
            .max_by_key(|b| b.ops())
            .map(|b| b.branch_id)
    }

    /// The layer kinds present in the network, with their occurrence count —
    /// the "layer types" statistic of the Analysis step.
    pub fn layer_kind_histogram(net: &Network) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for (_, layer) in net.layers() {
            let tag = match layer.kind() {
                LayerKind::Conv(spec) => match spec.bias {
                    fcad_nnir::BiasKind::Untied => "conv (untied bias)".to_owned(),
                    _ => "conv".to_owned(),
                },
                LayerKind::Dense { .. } => "dense".to_owned(),
                LayerKind::Activation(kind) => format!("activation ({kind})"),
                LayerKind::Upsample { .. } => "upsample".to_owned(),
                LayerKind::Pool { .. } => "pool".to_owned(),
                LayerKind::Reshape { .. } => "reshape".to_owned(),
                _ => "other".to_owned(),
            };
            *counts.entry(tag).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::{mimic_decoder, targeted_decoder, vgg16};

    #[test]
    fn decoder_profile_matches_network_totals() {
        let net = targeted_decoder();
        let profile = NetworkProfile::of(&net);
        assert_eq!(profile.total_ops(), net.total_ops());
        assert_eq!(profile.total_params(), net.total_params());
        assert_eq!(profile.branches().len(), 3);
    }

    #[test]
    fn double_counted_ops_exceed_deduplicated_ops_for_shared_branches() {
        let profile = NetworkProfile::of(&targeted_decoder());
        assert!(profile.double_counted_ops() > profile.total_ops());
        // For a single-branch network they are equal.
        let vgg = NetworkProfile::of(&vgg16());
        assert_eq!(vgg.double_counted_ops(), vgg.total_ops());
    }

    #[test]
    fn ops_shares_match_table1_percentages() {
        let profile = NetworkProfile::of(&targeted_decoder());
        let shares = profile.ops_shares();
        // Paper: 10.5% / 62.4% / 27.1%.
        assert!((shares[0] - 0.105).abs() < 0.03, "br1 share {}", shares[0]);
        assert!((shares[1] - 0.624).abs() < 0.04, "br2 share {}", shares[1]);
        assert!((shares[2] - 0.271).abs() < 0.04, "br3 share {}", shares[2]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critical_branch_is_the_texture_branch() {
        let net = targeted_decoder();
        let profile = NetworkProfile::of(&net);
        let critical = profile.critical_branch().unwrap();
        let (texture, _) = net.branch_by_name("texture").unwrap();
        assert_eq!(critical, texture);
    }

    #[test]
    fn compute_layer_counts_follow_structure() {
        let net = targeted_decoder();
        let profile = NetworkProfile::of(&net);
        // Branch 1: 5 CAU convs + output conv = 6 compute layers.
        assert_eq!(profile.branches()[0].compute_layer_count(), 6);
        // Branch 2: 5 shared + 2 own CAU convs + output conv = 8.
        assert_eq!(profile.branches()[1].compute_layer_count(), 8);
        // Branch 3: 5 shared convs + output conv = 6.
        assert_eq!(profile.branches()[2].compute_layer_count(), 6);
    }

    #[test]
    fn layer_kind_histogram_reports_customized_conv() {
        let net = targeted_decoder();
        let histogram = NetworkProfile::layer_kind_histogram(&net);
        let untied = histogram
            .iter()
            .find(|(kind, _)| kind == "conv (untied bias)")
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(untied, 3, "one customized conv per branch output");
        let mimic = NetworkProfile::layer_kind_histogram(&mimic_decoder());
        assert!(mimic.iter().all(|(kind, _)| kind != "conv (untied bias)"));
    }

    #[test]
    fn ops_per_param_distinguishes_conv_from_dense() {
        let profile = NetworkProfile::of(&vgg16());
        let branch = &profile.branches()[0];
        let first_conv = branch.compute_layers().next().unwrap();
        let last_dense = branch.compute_layers().last().unwrap();
        assert!(first_conv.ops_per_param() > last_dense.ops_per_param());
    }
}
