//! Mobile-SoC baseline: a Snapdragon-865-class AI engine limited by its
//! cache.

use crate::result::{BaselineResult, LayerLatency};
use fcad_accel::{efficiency, ConvStage};
use fcad_nnir::{Network, Precision};
use fcad_profiler::NetworkProfile;
use serde::{Deserialize, Serialize};

/// Model of a flagship mobile SoC running the decoder on its AI engine
/// (the Snapdragon 865 row of Table II).
///
/// The engine has a healthy peak MAC rate but only a few megabytes of shared
/// cache. Layers whose working set (weights plus input and output feature
/// maps) fits in the cache run at compute speed; layers with HD feature maps
/// spill to LPDDR and become memory-bound, re-reading their activations
/// several times because of tiling. The paper measures 35.8 FPS and 16.9 %
/// efficiency — the decoder's HD texture branch is exactly the spilling
/// case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileSoc {
    /// Number of MAC units in the AI engine.
    pub mac_units: usize,
    /// Clock frequency of the AI engine in Hz.
    pub frequency_hz: f64,
    /// Shared cache capacity in bytes.
    pub cache_bytes: u64,
    /// Effective LPDDR bandwidth available to the AI engine, bytes/s.
    pub dram_bytes_per_sec: f64,
    /// How many times a spilled layer re-reads its activations due to
    /// tiling.
    pub reread_factor: f64,
}

impl MobileSoc {
    /// A Snapdragon-865-class configuration: 512 MACs at 1.45 GHz, 4 MiB of
    /// shared cache, ~15 GB/s of effective LPDDR bandwidth for the engine.
    pub fn snapdragon865() -> Self {
        Self {
            mac_units: 512,
            frequency_hz: 1.45e9,
            cache_bytes: 4 * 1024 * 1024,
            dram_bytes_per_sec: 15e9,
            reread_factor: 6.0,
        }
    }

    /// Peak operation rate in ops/s at the given precision.
    pub fn peak_ops_per_sec(&self, precision: Precision) -> f64 {
        precision.ops_per_multiplier() * self.mac_units as f64 * self.frequency_hz
    }

    /// Evaluates the SoC on a network at the given precision.
    pub fn evaluate(&self, network: &Network, precision: Precision) -> BaselineResult {
        let profile = NetworkProfile::of(network);
        let bytes = precision.bytes() as u64;
        let mut total_seconds = 0.0;
        let mut layers = Vec::new();
        let mut seen: std::collections::HashSet<String> = Default::default();
        for branch in profile.branches() {
            for stage in ConvStage::stages_of_branch(branch) {
                if !seen.insert(stage.name.clone()) {
                    continue;
                }
                let seconds = self.layer_seconds(&stage, precision);
                total_seconds += seconds;
                layers.push(LayerLatency {
                    name: stage.name.clone(),
                    cycles: (seconds * self.frequency_hz) as u64,
                    lanes: self.mac_units,
                    at_parallelism_cap: self.is_memory_bound(&stage, bytes),
                });
            }
        }
        let fps = if total_seconds > 0.0 {
            1.0 / total_seconds
        } else {
            0.0
        };
        let ops = network.total_ops();
        let eff = efficiency(
            ops as f64 * fps,
            self.mac_units,
            precision.ops_per_multiplier(),
            self.frequency_hz,
        );
        BaselineResult {
            name: format!("Mobile SoC ({precision})"),
            dsp: self.mac_units,
            bram: 0,
            fps,
            efficiency: eff,
            layers,
        }
    }

    fn working_set_bytes(&self, stage: &ConvStage, bytes: u64) -> u64 {
        (stage.params + stage.input_elements() as u64 + stage.output_elements() as u64) * bytes
    }

    fn is_memory_bound(&self, stage: &ConvStage, bytes: u64) -> bool {
        self.working_set_bytes(stage, bytes) > self.cache_bytes
    }

    fn layer_seconds(&self, stage: &ConvStage, precision: Precision) -> f64 {
        let bytes = precision.bytes() as u64;
        let compute = stage.ops as f64 / self.peak_ops_per_sec(precision);
        let traffic = if self.is_memory_bound(stage, bytes) {
            stage.params * bytes
                + (self.reread_factor
                    * ((stage.input_elements() + stage.output_elements()) as u64 * bytes) as f64)
                    as u64
        } else {
            stage.params * bytes
        };
        let memory = traffic as f64 / self.dram_bytes_per_sec;
        compute.max(memory)
    }
}

impl Default for MobileSoc {
    fn default() -> Self {
        Self::snapdragon865()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::{targeted_decoder, vgg16};

    #[test]
    fn decoder_is_memory_bound_and_slow() {
        let soc = MobileSoc::snapdragon865();
        let result = soc.evaluate(&targeted_decoder(), Precision::Int8);
        // Paper: 35.8 FPS, 16.9% efficiency. Shape check: well below the VR
        // requirement and far below compute-bound efficiency.
        assert!(result.fps < 60.0, "fps {}", result.fps);
        assert!(result.fps > 10.0, "fps {}", result.fps);
        assert!(result.efficiency < 0.35, "efficiency {}", result.efficiency);
        assert!(
            result.capped_layers().count() > 0,
            "the HD layers must spill the cache"
        );
    }

    #[test]
    fn small_feature_map_networks_fare_better() {
        let soc = MobileSoc::snapdragon865();
        let decoder = soc.evaluate(&targeted_decoder(), Precision::Int8);
        let vgg = soc.evaluate(&vgg16(), Precision::Int8);
        // VGG16 has >2x the decoder's compute but much smaller feature maps,
        // so its efficiency on the SoC is higher.
        assert!(vgg.efficiency > decoder.efficiency);
    }

    #[test]
    fn peak_rate_follows_precision_packing() {
        let soc = MobileSoc::snapdragon865();
        assert!(soc.peak_ops_per_sec(Precision::Int8) > soc.peak_ops_per_sec(Precision::Int16));
    }

    #[test]
    fn more_cache_reduces_memory_boundness() {
        let mut big_cache = MobileSoc::snapdragon865();
        big_cache.cache_bytes = 512 * 1024 * 1024;
        let small = MobileSoc::snapdragon865().evaluate(&targeted_decoder(), Precision::Int8);
        let big = big_cache.evaluate(&targeted_decoder(), Precision::Int8);
        assert!(big.fps > small.fps);
        assert_eq!(big.capped_layers().count(), 0);
    }
}
