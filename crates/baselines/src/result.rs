//! Common result type for all baseline accelerators.

use serde::{Deserialize, Serialize};

/// Latency of one layer under a baseline accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerLatency {
    /// Layer name.
    pub name: String,
    /// Latency in cycles (or equivalent cycles at the accelerator clock).
    pub cycles: u64,
    /// MAC lanes the baseline allocated to the layer.
    pub lanes: usize,
    /// Whether the layer hit the baseline's parallelism ceiling (the
    /// "circled" layers of Fig. 3).
    pub at_parallelism_cap: bool,
}

/// Evaluation of a baseline accelerator on a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Baseline name (e.g. "DNNBuilder (8-bit)").
    pub name: String,
    /// DSP slices (or MAC units) used.
    pub dsp: usize,
    /// BRAM blocks used.
    pub bram: usize,
    /// Achieved throughput in frames per second.
    pub fps: f64,
    /// Hardware efficiency following Eq. 3.
    pub efficiency: f64,
    /// Per-layer latency breakdown (empty for baselines that do not expose
    /// one).
    pub layers: Vec<LayerLatency>,
}

impl BaselineResult {
    /// The layers that sit at the baseline's parallelism cap.
    pub fn capped_layers(&self) -> impl Iterator<Item = &LayerLatency> {
        self.layers.iter().filter(|l| l.at_parallelism_cap)
    }

    /// The slowest layer, if a per-layer breakdown exists.
    pub fn bottleneck(&self) -> Option<&LayerLatency> {
        self.layers.iter().max_by_key(|l| l.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottleneck_is_the_slowest_layer() {
        let result = BaselineResult {
            name: "test".into(),
            dsp: 10,
            bram: 10,
            fps: 1.0,
            efficiency: 0.5,
            layers: vec![
                LayerLatency {
                    name: "a".into(),
                    cycles: 10,
                    lanes: 1,
                    at_parallelism_cap: false,
                },
                LayerLatency {
                    name: "b".into(),
                    cycles: 99,
                    lanes: 1,
                    at_parallelism_cap: true,
                },
            ],
        };
        assert_eq!(result.bottleneck().unwrap().name, "b");
        assert_eq!(result.capped_layers().count(), 1);
    }
}
