//! HybridDNN-style baseline: a folded, shared compute engine with
//! coarse-grained scaling.

use crate::result::{BaselineResult, LayerLatency};
use fcad_accel::{efficiency, ConvStage, Platform};
use fcad_nnir::{Network, Precision};
use fcad_profiler::NetworkProfile;

/// Model of a HybridDNN-generated accelerator (Ye et al., DAC 2020) as
/// characterized in Sec. III of the F-CAD paper.
///
/// HybridDNN builds one *folded* engine that executes layers sequentially.
/// The engine's MAC array scales only in powers of two, and each doubling
/// roughly doubles the on-chip buffering it needs, so on BRAM-limited
/// devices the engine stops growing and leaves DSPs idle. Only 16-bit
/// arithmetic is supported (the paper had to use a 16-bit mimic decoder).
#[derive(Debug, Clone)]
pub struct HybridDnn {
    platform: Platform,
    precision: Precision,
}

/// Smallest engine HybridDNN instantiates (MAC lanes).
const MIN_ENGINE_LANES: usize = 256;

/// Largest engine considered (keeps the search bounded).
const MAX_ENGINE_LANES: usize = 1 << 16;

/// BRAM blocks needed per MAC lane of the folded engine (input, output and
/// weight double-buffers all scale with the array size).
const BRAM_PER_LANE: f64 = 1.1;

/// Cycles lost per layer to reconfigure the folded engine and drain its
/// buffers.
const LAYER_SWITCH_OVERHEAD_CYCLES: u64 = 2_000;

/// Spatial unrolling the folded engine can exploit inside one layer in
/// addition to its channel parallelism.
const SPATIAL_UNROLL: usize = 4;

impl HybridDnn {
    /// Creates the baseline for a platform. The precision is fixed to 16-bit
    /// because the original tool does not support 8-bit models.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            precision: Precision::Int16,
        }
    }

    /// The platform this instance targets.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The engine size (MAC lanes) chosen for the platform: the largest
    /// power of two whose DSP *and* BRAM demand both fit.
    pub fn engine_lanes(&self) -> usize {
        let budget = self.platform.budget();
        let dsp_limit = (budget.dsp as f64 * self.precision.macs_per_dsp()) as usize;
        let mut lanes = MIN_ENGINE_LANES;
        let mut best = MIN_ENGINE_LANES;
        while lanes <= MAX_ENGINE_LANES {
            let bram_needed = (lanes as f64 * BRAM_PER_LANE).ceil() as usize;
            if lanes <= dsp_limit && bram_needed <= budget.bram {
                best = lanes;
            } else {
                break;
            }
            lanes *= 2;
        }
        best
    }

    /// Evaluates the baseline on a network (layers run sequentially on the
    /// shared engine; shared branch prefixes execute once).
    pub fn evaluate(&self, network: &Network) -> BaselineResult {
        let profile = NetworkProfile::of(network);
        let mut stages: Vec<ConvStage> = Vec::new();
        let mut seen: std::collections::HashSet<String> = Default::default();
        for branch in profile.branches() {
            for stage in ConvStage::stages_of_branch(branch) {
                if seen.insert(stage.name.clone()) {
                    stages.push(stage);
                }
            }
        }

        let lanes = self.engine_lanes();
        let dsp = (lanes as f64 / self.precision.macs_per_dsp()).ceil() as usize;
        let bram = (lanes as f64 * BRAM_PER_LANE).ceil() as usize;

        let mut total_cycles: u64 = 0;
        let mut layers = Vec::with_capacity(stages.len());
        for stage in &stages {
            // The folded engine can use channel parallelism plus a modest
            // spatial unroll; layers with few channels underuse the array.
            let usable = (stage.channel_parallelism_limit() * SPATIAL_UNROLL).min(lanes);
            let cycles =
                (stage.macs as f64 / usable as f64).ceil() as u64 + LAYER_SWITCH_OVERHEAD_CYCLES;
            total_cycles += cycles;
            layers.push(LayerLatency {
                name: stage.name.clone(),
                cycles,
                lanes: usable,
                at_parallelism_cap: usable < lanes,
            });
        }

        let fps = self.platform.frequency_hz() / total_cycles.max(1) as f64;
        let ops: u64 = stages.iter().map(|s| s.ops).sum();
        let eff = efficiency(
            ops as f64 * fps,
            dsp,
            self.precision.ops_per_multiplier(),
            self.platform.frequency_hz(),
        );
        BaselineResult {
            name: format!("HybridDNN ({})", self.precision),
            dsp,
            bram,
            fps,
            efficiency: eff,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::mimic_decoder;

    #[test]
    fn engine_size_is_a_power_of_two_and_fits_the_budget() {
        for platform in Platform::evaluation_schemes() {
            let hybrid = HybridDnn::new(platform.clone());
            let lanes = hybrid.engine_lanes();
            assert!(lanes.is_power_of_two());
            let bram = (lanes as f64 * BRAM_PER_LANE).ceil() as usize;
            assert!(bram <= platform.budget().bram);
            assert!(lanes <= platform.budget().dsp); // 16-bit: 1 lane per DSP
        }
    }

    #[test]
    fn bram_pressure_prevents_scaling_from_zu17eg_to_zu9cg() {
        // The paper's key observation: schemes 2 and 3 end up with the same
        // engine because the next power of two does not fit the BRAM budget.
        let scheme2 = HybridDnn::new(Platform::zu17eg()).engine_lanes();
        let scheme3 = HybridDnn::new(Platform::zu9cg()).engine_lanes();
        assert_eq!(scheme2, scheme3);
        // More than half of the ZU9CG's DSPs are left unused.
        assert!(scheme3 < Platform::zu9cg().budget().dsp / 2 + 1);
    }

    #[test]
    fn larger_scheme_improves_fps_unlike_dnnbuilder() {
        let net = mimic_decoder();
        let scheme1 = HybridDnn::new(Platform::z7045()).evaluate(&net);
        let scheme2 = HybridDnn::new(Platform::zu17eg()).evaluate(&net);
        assert!(
            scheme2.fps > scheme1.fps,
            "HybridDNN scales a little better than DNNBuilder at first"
        );
    }

    #[test]
    fn folded_engine_is_slower_than_real_time_on_the_decoder() {
        let net = mimic_decoder();
        let result = HybridDnn::new(Platform::zu9cg()).evaluate(&net);
        // Paper: 22 FPS on ZU9CG. Ours must land in the same "too slow for
        // VR" regime (well under 60 FPS).
        assert!(result.fps < 60.0, "fps {}", result.fps);
        assert!(result.fps > 5.0, "fps {}", result.fps);
        // Efficiency is decent (the engine is shared), around the paper's 70%.
        assert!(result.efficiency > 0.4 && result.efficiency <= 1.0);
    }

    #[test]
    fn few_channel_layers_underuse_the_engine() {
        let net = mimic_decoder();
        let result = HybridDnn::new(Platform::zu9cg()).evaluate(&net);
        assert!(
            result.capped_layers().count() > 0,
            "the HD low-channel layers cannot fill the folded engine"
        );
    }
}
