//! Baseline accelerators the paper compares F-CAD against (Sec. III,
//! Table II, Fig. 3, Table V).
//!
//! Neither DNNBuilder nor HybridDNN is open source, and the Snapdragon 865
//! numbers come from running on a phone SoC, so this crate re-implements the
//! three comparators as analytical models built from their published
//! architecture descriptions. Each model reproduces the *failure mode* the
//! paper attributes to it:
//!
//! * [`DnnBuilder`] — an unfolded, per-layer pipeline with **two-level
//!   parallelism** (input × output channels only). Layers with few channels
//!   cap at `InCh × OutCh` MAC lanes, so throughput saturates no matter how
//!   many DSPs the FPGA offers, and the extra resources only depress
//!   efficiency (Table II schemes 1→3, Fig. 3).
//! * [`HybridDnn`] — a folded, single shared compute engine whose size
//!   scales in **coarse power-of-two steps**; the next step doubles the BRAM
//!   demand, so on BRAM-limited parts the engine stops growing and leaves
//!   DSPs unused (Table II schemes 2–3, Table V).
//! * [`MobileSoc`] — a Snapdragon-865-class AI engine whose small shared
//!   cache forces HD feature maps back and forth to LPDDR, leaving it
//!   memory-bound at a low efficiency (Table II first row).
//!
//! All three expose the same [`BaselineResult`] so the benchmark harness can
//! tabulate them next to F-CAD's own designs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dnnbuilder;
mod hybriddnn;
mod result;
mod soc;

pub use dnnbuilder::DnnBuilder;
pub use hybriddnn::HybridDnn;
pub use result::{BaselineResult, LayerLatency};
pub use soc::MobileSoc;
