//! DNNBuilder-style baseline: unfolded per-layer pipeline with two-level
//! parallelism.

use crate::result::{BaselineResult, LayerLatency};
use fcad_accel::{efficiency, ConvStage, CostModel, Parallelism, Platform, UnitModel};
use fcad_nnir::{Network, Precision};
use fcad_profiler::NetworkProfile;

/// Model of a DNNBuilder-generated accelerator (Zhang et al., ICCAD 2018) as
/// characterized in Sec. III of the F-CAD paper.
///
/// DNNBuilder instantiates one dedicated pipeline stage per layer (an
/// *unfolded* architecture) and unrolls each stage along input and output
/// channels only, so a stage can never exceed `InCh × OutCh` MAC lanes. The
/// model distributes the device's DSP budget across stages proportionally to
/// their compute demand (capped at that ceiling) and reports the resulting
/// throughput, efficiency and per-layer latency.
#[derive(Debug, Clone)]
pub struct DnnBuilder {
    platform: Platform,
    precision: Precision,
    cost: CostModel,
}

impl DnnBuilder {
    /// Creates the baseline for a platform and precision.
    pub fn new(platform: Platform, precision: Precision) -> Self {
        Self {
            platform,
            precision,
            cost: CostModel::fpga(),
        }
    }

    /// The platform this instance targets.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Evaluates the baseline on a network (every branch's layers are mapped
    /// onto one unfolded pipeline, shared layers instantiated once).
    pub fn evaluate(&self, network: &Network) -> BaselineResult {
        let stages = unfolded_stages(network);
        let budget_lanes =
            (self.platform.budget().dsp as f64 * self.precision.macs_per_dsp()) as usize;

        // DNNBuilder's resource allocation: each stage receives MAC lanes
        // proportional to its compute demand, quantized down to a power of
        // two (its channel unroll factors are powers of two) and capped at
        // the two-level ceiling InCh × OutCh. The quantization leaves part
        // of the budget unused, and the caps pin the few-channel HD layers —
        // which is exactly why bigger FPGAs do not buy more FPS.
        let total_macs: f64 = stages.iter().map(|s| s.macs as f64).sum();
        let lanes: Vec<usize> = stages
            .iter()
            .map(|stage| {
                let proportional = budget_lanes as f64 * stage.macs as f64 / total_macs.max(1.0);
                let quantized = floor_pow2(proportional.floor() as usize);
                quantized.clamp(1, stage.channel_parallelism_limit())
            })
            .collect();

        let mut layer_latencies = Vec::with_capacity(stages.len());
        let mut dsp = 0usize;
        let mut bram = 0usize;
        let mut max_latency = 1u64;
        for (stage, &stage_lanes) in stages.iter().zip(&lanes) {
            let parallelism = two_level_parallelism(stage, stage_lanes);
            let unit = UnitModel::with_cost_model(stage, parallelism, self.precision, &self.cost);
            dsp += unit.dsp();
            bram += unit.bram();
            max_latency = max_latency.max(unit.latency_cycles());
            layer_latencies.push(LayerLatency {
                name: stage.name.clone(),
                cycles: unit.latency_cycles(),
                lanes: parallelism.total(),
                at_parallelism_cap: parallelism.total() >= stage.channel_parallelism_limit(),
            });
        }

        let fps = self.platform.frequency_hz() / max_latency as f64;
        let ops: u64 = stages.iter().map(|s| s.ops).sum();
        let eff = efficiency(
            ops as f64 * fps,
            dsp,
            self.precision.ops_per_multiplier(),
            self.platform.frequency_hz(),
        );
        BaselineResult {
            name: format!("DNNBuilder ({})", self.precision),
            dsp,
            bram,
            fps,
            efficiency: eff,
            layers: layer_latencies,
        }
    }

    /// Per-layer latencies of the last `count` compute layers of a given
    /// branch — the data series of Fig. 3.
    pub fn branch_tail_latencies(
        &self,
        network: &Network,
        branch_name: &str,
        count: usize,
    ) -> Vec<LayerLatency> {
        let result = self.evaluate(network);
        let profile = NetworkProfile::of(network);
        let Some(branch) = profile.branches().iter().find(|b| b.name == branch_name) else {
            return Vec::new();
        };
        let tail_names: Vec<String> = branch
            .compute_layers()
            .map(|l| l.name.clone())
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .take(count)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        tail_names
            .iter()
            .filter_map(|name| result.layers.iter().find(|l| &l.name == name).cloned())
            .collect()
    }
}

/// All distinct compute layers of the network as fused stages (shared layers
/// appear once), in branch order.
fn unfolded_stages(network: &Network) -> Vec<ConvStage> {
    let profile = NetworkProfile::of(network);
    let mut stages: Vec<ConvStage> = Vec::new();
    let mut seen: std::collections::HashSet<String> = Default::default();
    for branch in profile.branches() {
        for stage in ConvStage::stages_of_branch(branch) {
            if seen.insert(stage.name.clone()) {
                stages.push(stage);
            }
        }
    }
    stages
}

/// DNNBuilder's two-level unrolling for a target lane count: the largest
/// `cpf × kpf` product of channel divisors that does not exceed the target —
/// never the feature-map height.
fn two_level_parallelism(stage: &ConvStage, lanes: usize) -> Parallelism {
    let target = lanes.min(stage.channel_parallelism_limit()).max(1);
    let mut best = (1usize, 1usize);
    for &cpf in &divisors(stage.in_channels) {
        if cpf > target {
            continue;
        }
        for &kpf in &divisors(stage.out_channels) {
            let total = cpf * kpf;
            if total <= target && total > best.0 * best.1 {
                best = (cpf, kpf);
            }
        }
    }
    Parallelism::new(best.0, best.1, 1)
}

/// All divisors of `n` in ascending order.
fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 1;
    while i * i <= n.max(1) {
        if n.is_multiple_of(i) {
            out.push(i);
            if i != n / i {
                out.push(n / i);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out
}

/// Largest power of two not exceeding `value` (1 for zero).
fn floor_pow2(value: usize) -> usize {
    if value == 0 {
        1
    } else {
        1 << (usize::BITS - 1 - value.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::mimic_decoder;

    fn schemes() -> Vec<Platform> {
        Platform::evaluation_schemes()
    }

    #[test]
    fn throughput_saturates_across_schemes() {
        let net = mimic_decoder();
        let results: Vec<BaselineResult> = schemes()
            .into_iter()
            .map(|p| DnnBuilder::new(p, Precision::Int8).evaluate(&net))
            .collect();
        // FPS does not improve with bigger FPGAs (the Sec. III observation).
        let fps: Vec<f64> = results.iter().map(|r| r.fps).collect();
        assert!((fps[1] - fps[0]).abs() / fps[0] < 0.05, "{fps:?}");
        assert!((fps[2] - fps[0]).abs() / fps[0] < 0.05, "{fps:?}");
        // And the saturated FPS is far below the VR requirement of 90+.
        assert!(fps[0] < 60.0);
        // Resource usage grows while FPS stays flat, so efficiency drops
        // monotonically (81.6% -> 50.4% -> 28.8% in the paper).
        assert!(results[0].efficiency > results[1].efficiency);
        assert!(results[1].efficiency > results[2].efficiency);
        assert!(results[0].dsp < results[1].dsp);
        assert!(results[1].dsp <= results[2].dsp);
    }

    #[test]
    fn scheme1_is_the_most_efficient_and_fits_its_budget() {
        let net = mimic_decoder();
        let result = DnnBuilder::new(Platform::z7045(), Precision::Int8).evaluate(&net);
        // Paper: 81.6% on Z7045, 644 of 900 DSPs used. Our reproduction
        // saturates at a lower FPS (the HD output conv caps earlier), so the
        // absolute efficiency is lower, but scheme 1 must remain the
        // efficient end of the range and must not overrun the device.
        assert!(
            result.efficiency > 0.35 && result.efficiency <= 1.0,
            "scheme-1 efficiency {}",
            result.efficiency
        );
        assert!(result.dsp <= Platform::z7045().budget().dsp);
        // Like the paper, the allocator cannot use the whole device: the
        // power-of-two unrolling leaves DSPs on the table.
        assert!(result.dsp < Platform::z7045().budget().dsp);
    }

    #[test]
    fn bottleneck_is_a_channel_capped_hd_layer() {
        let net = mimic_decoder();
        let result = DnnBuilder::new(Platform::zu9cg(), Precision::Int8).evaluate(&net);
        let bottleneck = result.bottleneck().expect("per-layer breakdown");
        assert!(
            bottleneck.at_parallelism_cap,
            "the slowest layer must be limited by InCh x OutCh"
        );
        // It is one of the few-channel HD layers at the end of branch 2.
        assert!(bottleneck.name.contains("texture"));
    }

    #[test]
    fn fig3_tail_latencies_show_capped_layers() {
        let net = mimic_decoder();
        let builder = DnnBuilder::new(Platform::zu9cg(), Precision::Int8);
        let tail = builder.branch_tail_latencies(&net, "texture", 5);
        assert_eq!(tail.len(), 5);
        assert!(
            tail.iter().any(|l| l.at_parallelism_cap),
            "Fig. 3 must show layers stuck at their parallelism cap"
        );
    }

    #[test]
    fn shared_layers_are_instantiated_once() {
        let net = mimic_decoder();
        let stages = unfolded_stages(&net);
        let distinct: std::collections::HashSet<&str> =
            stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(stages.len(), distinct.len());
        // 6 + 8 + 6 compute layers minus 5 shared = 15 distinct stages.
        assert_eq!(stages.len(), 15);
    }
}
