//! Error type of the end-to-end flow.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the F-CAD design flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The input network failed validation.
    Network(fcad_nnir::Error),
    /// The accelerator model rejected a configuration.
    Model(fcad_accel::Error),
    /// The design-space exploration failed (no feasible design, mismatched
    /// customization, ...).
    Exploration(fcad_dse::Error),
    /// The flow inputs are inconsistent (e.g. customization for the wrong
    /// number of branches).
    InvalidInput {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Network(err) => write!(f, "network error: {err}"),
            Error::Model(err) => write!(f, "accelerator model error: {err}"),
            Error::Exploration(err) => write!(f, "exploration error: {err}"),
            Error::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Network(err) => Some(err),
            Error::Model(err) => Some(err),
            Error::Exploration(err) => Some(err),
            Error::InvalidInput { .. } => None,
        }
    }
}

impl From<fcad_nnir::Error> for Error {
    fn from(err: fcad_nnir::Error) -> Self {
        Error::Network(err)
    }
}

impl From<fcad_accel::Error> for Error {
    fn from(err: fcad_accel::Error) -> Self {
        Error::Model(err)
    }
}

impl From<fcad_dse::Error> for Error {
    fn from(err: fcad_dse::Error) -> Self {
        Error::Exploration(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let err: Error = fcad_dse::Error::NoFeasibleDesign {
            reason: "too small".to_owned(),
        }
        .into();
        assert!(err.to_string().contains("too small"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
