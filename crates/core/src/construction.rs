//! The Construction step: layer fusion, branch reorganization and elastic
//! architecture instantiation (Sec. IV, "Construction").

use fcad_accel::{BranchPipeline, ConvStage, ElasticAccelerator, Platform};
use fcad_nnir::Network;
use fcad_profiler::NetworkProfile;
use serde::{Deserialize, Serialize};

/// How one branch was mapped onto the elastic architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchConstruction {
    /// Branch name.
    pub name: String,
    /// Layers of the branch in the IR (including any shared prefix).
    pub ir_layers: usize,
    /// Leading layers handed to another (more compute-demanding) branch
    /// during reorganization.
    pub reassigned_prefix_layers: usize,
    /// Pipeline stages instantiated for this branch after layer fusion.
    pub stages: usize,
    /// Whether this branch is the critical flow that received shared layers.
    pub owns_shared_prefix: bool,
}

/// Result of the Construction step: the per-branch mapping plus the fused
/// stage lists that become the accelerator's branch pipelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Construction {
    branches: Vec<BranchConstruction>,
    pipelines: Vec<(String, Vec<ConvStage>)>,
}

impl Construction {
    /// Performs layer fusion and branch reorganization on a profiled
    /// network.
    ///
    /// Lightweight layers (activations, reshapes) are fused into their
    /// neighbouring major layer and up-sampling is attached to the preceding
    /// convolution, so every stage is Conv-like. Shared branch prefixes are
    /// assigned to the sharing branch with the highest compute demand — the
    /// *critical flow* — so no hardware is duplicated and the heaviest flow
    /// gets the attention of the Optimization step.
    pub fn of(network: &Network, profile: &NetworkProfile) -> Self {
        // Decide, for every branch, how many of its leading layers belong to
        // a more compute-demanding branch.
        let branch_ops: Vec<u64> = profile.branches().iter().map(|b| b.ops()).collect();
        let mut drop_prefix: Vec<usize> = vec![0; profile.branches().len()];
        let mut owns_shared: Vec<bool> = vec![false; profile.branches().len()];

        for (index, branch) in network.branches().map(|(_, b)| b).enumerate() {
            let Some((parent, shared_len)) = branch.fork_of() else {
                continue;
            };
            let parent_index = parent.index();
            let parent_ops = branch_ops.get(parent_index).copied().unwrap_or(0);
            let own_ops = branch_ops[index];
            if own_ops > parent_ops {
                // This branch is the critical flow: it keeps the shared
                // prefix and the parent drops it.
                drop_prefix[parent_index] = drop_prefix[parent_index].max(shared_len);
                owns_shared[index] = true;
            } else {
                // The parent is (at least as) critical: this branch hands its
                // shared prefix over.
                drop_prefix[index] = drop_prefix[index].max(shared_len);
                owns_shared[parent_index] = true;
            }
        }

        let mut branches = Vec::with_capacity(profile.branches().len());
        let mut pipelines = Vec::with_capacity(profile.branches().len());
        for (index, branch_profile) in profile.branches().iter().enumerate() {
            let stages = ConvStage::stages_of_branch_from(branch_profile, drop_prefix[index]);
            branches.push(BranchConstruction {
                name: branch_profile.name.clone(),
                ir_layers: branch_profile.layer_count(),
                reassigned_prefix_layers: drop_prefix[index],
                stages: stages.len(),
                owns_shared_prefix: owns_shared[index],
            });
            pipelines.push((branch_profile.name.clone(), stages));
        }
        Self {
            branches,
            pipelines,
        }
    }

    /// Per-branch construction summaries.
    pub fn branches(&self) -> &[BranchConstruction] {
        &self.branches
    }

    /// Total pipeline stages across all branches (each shared layer
    /// instantiated exactly once).
    pub fn total_stages(&self) -> usize {
        self.branches.iter().map(|b| b.stages).sum()
    }

    /// Instantiates the elastic architecture for a platform: one branch
    /// pipeline per (reorganized) branch, expanded along the X axis by its
    /// stage count and along the Y axis by the branch count.
    pub fn instantiate(&self, name: impl Into<String>, platform: &Platform) -> ElasticAccelerator {
        let pipelines = self
            .pipelines
            .iter()
            .map(|(branch_name, stages)| BranchPipeline::new(branch_name.clone(), stages.clone()))
            .collect();
        ElasticAccelerator::for_platform(name, pipelines, platform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::{targeted_decoder, vgg16};

    fn construct(net: &Network) -> Construction {
        let profile = NetworkProfile::of(net);
        Construction::of(net, &profile)
    }

    #[test]
    fn decoder_shared_prefix_goes_to_the_texture_branch() {
        let net = targeted_decoder();
        let construction = construct(&net);
        let by_name = |n: &str| {
            construction
                .branches()
                .iter()
                .find(|b| b.name == n)
                .unwrap()
                .clone()
        };
        let texture = by_name("texture");
        let warp = by_name("warp");
        let geometry = by_name("geometry");
        assert!(texture.owns_shared_prefix);
        assert!(!warp.owns_shared_prefix);
        assert_eq!(texture.reassigned_prefix_layers, 0);
        assert_eq!(warp.reassigned_prefix_layers, 1 + 5 * 3);
        assert_eq!(geometry.reassigned_prefix_layers, 0);
        // Stage counts after reorganization: 6 + 8 + 1.
        assert_eq!(geometry.stages, 6);
        assert_eq!(texture.stages, 8);
        assert_eq!(warp.stages, 1);
        assert_eq!(construction.total_stages(), 15);
    }

    #[test]
    fn no_hardware_is_duplicated_for_shared_layers() {
        let net = targeted_decoder();
        let construction = construct(&net);
        // Total stages equals the number of distinct compute layers.
        let distinct_compute = net.layers().filter(|(_, l)| l.kind().is_compute()).count();
        assert_eq!(construction.total_stages(), distinct_compute);
    }

    #[test]
    fn single_branch_networks_are_unchanged() {
        let net = vgg16();
        let construction = construct(&net);
        assert_eq!(construction.branches().len(), 1);
        assert_eq!(construction.branches()[0].reassigned_prefix_layers, 0);
        assert!(!construction.branches()[0].owns_shared_prefix);
    }

    #[test]
    fn instantiation_builds_one_pipeline_per_branch() {
        let net = targeted_decoder();
        let construction = construct(&net);
        let accelerator = construction.instantiate("decoder-accel", &Platform::zu9cg());
        assert_eq!(accelerator.branch_count(), 3);
        let stage_counts: Vec<usize> = accelerator
            .branches()
            .iter()
            .map(|b| b.stage_count())
            .collect();
        assert_eq!(stage_counts, vec![6, 8, 1]);
        assert_eq!(accelerator.frequency_hz(), 200e6);
    }
}
