//! The end-to-end F-CAD flow: Analysis → Construction → Optimization.

use crate::construction::Construction;
use crate::error::{Error, Result};
use fcad_accel::{AcceleratorReport, ElasticAccelerator, Platform};
use fcad_dse::{Customization, DseEngine, DseParams, DseResult, ElapsedTimer};
use fcad_nnir::{Network, Precision};
use fcad_profiler::NetworkProfile;

/// The F-CAD automation flow for one network / platform pair.
///
/// Construct it with [`Fcad::new`], optionally customize the quantization,
/// per-branch batch sizes, priorities and DSE hyper-parameters, then call
/// [`Fcad::run`].
#[derive(Debug, Clone)]
pub struct Fcad {
    network: Network,
    platform: Platform,
    customization: Option<Customization>,
    dse_params: DseParams,
    timer: ElapsedTimer,
}

impl Fcad {
    /// Creates a flow for a network targeting a platform, with uniform
    /// customization (batch 1, equal priorities, 8-bit quantization) and the
    /// paper's DSE hyper-parameters.
    pub fn new(network: Network, platform: Platform) -> Self {
        Self {
            network,
            platform,
            customization: None,
            dse_params: DseParams::paper(),
            timer: ElapsedTimer::Off,
        }
    }

    /// Opts the DSE step into wall-clock elapsed-time measurement (for
    /// interactive tables — the default `Off` keeps fixed-seed results
    /// byte-stable run-over-run).
    pub fn with_timer(mut self, timer: ElapsedTimer) -> Self {
        self.timer = timer;
        self
    }

    /// Sets the customization (quantization, per-branch batch sizes and
    /// priorities).
    pub fn with_customization(mut self, customization: Customization) -> Self {
        self.customization = Some(customization);
        self
    }

    /// Sets the DSE hyper-parameters (population, iterations, fitness).
    pub fn with_dse_params(mut self, params: DseParams) -> Self {
        self.dse_params = params;
        self
    }

    /// The input network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs the three-step flow and returns the optimized design.
    ///
    /// # Errors
    ///
    /// Returns an error when the network fails validation, the customization
    /// does not match the branch count, or no design fits the platform
    /// budget.
    pub fn run(&self) -> Result<FcadResult> {
        // Step 1: Analysis.
        self.network.validate()?;
        let profile = NetworkProfile::of(&self.network);

        let customization = match &self.customization {
            Some(c) => {
                if c.branch_count() != self.network.branch_count() {
                    return Err(Error::InvalidInput {
                        reason: format!(
                            "customization describes {} branches but the network has {}",
                            c.branch_count(),
                            self.network.branch_count()
                        ),
                    });
                }
                c.clone()
            }
            None => Customization::uniform(self.network.branch_count(), Precision::Int8),
        };

        // Step 2: Construction.
        let construction = Construction::of(&self.network, &profile);
        let accelerator = construction.instantiate(
            format!("{}-accelerator", self.network.name()),
            &self.platform,
        );

        // Step 3: Optimization.
        let engine = DseEngine::new(self.dse_params).with_timer(self.timer);
        let dse = engine.explore(&accelerator, &self.platform, &customization)?;

        Ok(FcadResult {
            profile,
            construction,
            accelerator,
            customization,
            dse,
        })
    }
}

/// The output of one F-CAD run: every intermediate artifact of the flow plus
/// the optimized design.
#[derive(Debug, Clone)]
pub struct FcadResult {
    /// Analysis-step output.
    pub profile: NetworkProfile,
    /// Construction-step output (fusion / reorganization summary).
    pub construction: Construction,
    /// The instantiated elastic architecture.
    pub accelerator: ElasticAccelerator,
    /// The customization the design was optimized for.
    pub customization: Customization,
    /// The exploration result (best configuration, report, convergence).
    pub dse: DseResult,
}

impl FcadResult {
    /// The analytical report of the best design.
    pub fn report(&self) -> &AcceleratorReport {
        &self.dse.best_report
    }

    /// Frames per second of the slowest branch of the best design.
    pub fn min_fps(&self) -> f64 {
        self.report().min_fps
    }

    /// Overall hardware efficiency of the best design.
    pub fn efficiency(&self) -> f64 {
        self.report().overall_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::{targeted_decoder, tiny_yolo};

    fn fast_flow(platform: Platform) -> FcadResult {
        Fcad::new(targeted_decoder(), platform)
            .with_customization(Customization::codec_avatar(Precision::Int8))
            .with_dse_params(DseParams::fast())
            .run()
            .expect("decoder flow succeeds")
    }

    #[test]
    fn decoder_flow_produces_a_feasible_design() {
        let platform = Platform::zu17eg();
        let result = fast_flow(platform.clone());
        assert!(result.report().fits(platform.budget()));
        assert_eq!(result.report().branches.len(), 3);
        // All three branches deliver real-time-class throughput.
        assert!(result.min_fps() > 30.0, "min fps {}", result.min_fps());
        assert!(
            result.efficiency() > 0.5,
            "efficiency {}",
            result.efficiency()
        );
    }

    #[test]
    fn decoder_flow_beats_the_z7045_on_the_bigger_zu9cg() {
        let small = fast_flow(Platform::z7045());
        let large = fast_flow(Platform::zu9cg());
        assert!(
            large.min_fps() >= small.min_fps(),
            "ZU9CG {} vs Z7045 {}",
            large.min_fps(),
            small.min_fps()
        );
    }

    #[test]
    fn mismatched_customization_is_rejected() {
        let err = Fcad::new(targeted_decoder(), Platform::z7045())
            .with_customization(Customization::uniform(2, Precision::Int8))
            .with_dse_params(DseParams::fast())
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidInput { .. }));
    }

    #[test]
    fn single_branch_networks_run_through_the_same_flow() {
        let result = Fcad::new(tiny_yolo(), Platform::zu9cg())
            .with_dse_params(DseParams::fast())
            .run()
            .expect("tiny-yolo flow succeeds");
        assert_eq!(result.report().branches.len(), 1);
        assert!(result.min_fps() > 0.0);
    }

    #[test]
    fn default_customization_is_uniform_8bit() {
        let result = Fcad::new(targeted_decoder(), Platform::zu9cg())
            .with_dse_params(DseParams::fast())
            .run()
            .unwrap();
        assert_eq!(result.customization.batch_sizes, vec![1, 1, 1]);
        assert_eq!(result.customization.precision, Precision::Int8);
    }
}
