//! Table-IV-style rendering of flow results.

use crate::flow::FcadResult;
use fcad_profiler::Table;

/// Renders one F-CAD result as a Table-IV-style case block: per-branch DSP /
/// BRAM usage, FPS and efficiency, followed by totals and the DSE runtime.
pub fn render_case_table(case_name: &str, result: &FcadResult) -> String {
    let mut table = Table::new(vec![
        "Br.".to_owned(),
        "DSP".to_owned(),
        "BRAM".to_owned(),
        "FPS".to_owned(),
        "Efficiency".to_owned(),
    ]);
    for (i, branch) in result.report().branches.iter().enumerate() {
        table.add_row(vec![
            format!("{} ({})", i + 1, branch.name),
            format!("{}", branch.usage.dsp),
            format!("{}", branch.usage.bram),
            format!("{:.1}", branch.fps),
            format!("{:.1}%", branch.efficiency * 100.0),
        ]);
    }
    let usage = &result.report().total_usage;
    table.add_row(vec![
        "total".to_owned(),
        format!("{}", usage.dsp),
        format!("{}", usage.bram),
        format!("{:.1}", result.min_fps()),
        format!("{:.1}%", result.efficiency() * 100.0),
    ]);
    format!(
        "{case_name}\n{}DSE: converged at iteration {} of {}, {:.2} s\n",
        table.render(),
        result.dse.convergence_iteration,
        result.dse.iterations_run,
        result.dse.elapsed_seconds
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Customization, DseParams, Fcad};
    use fcad_accel::Platform;
    use fcad_nnir::models::targeted_decoder;
    use fcad_nnir::Precision;

    #[test]
    fn case_table_lists_branches_totals_and_dse_time() {
        let result = Fcad::new(targeted_decoder(), Platform::z7045())
            .with_customization(Customization::codec_avatar(Precision::Int8))
            .with_dse_params(DseParams::fast())
            .run()
            .unwrap();
        let text = render_case_table("Case 1: Z7045 (8-bit)", &result);
        assert!(text.contains("Case 1"));
        assert!(text.contains("texture"));
        assert!(text.contains("total"));
        assert!(text.contains("DSE: converged"));
        assert!(text.contains('%'));
    }
}
