//! Estimation-accuracy study: analytical model vs. cycle-level simulation
//! (the role Figs. 6 and 7 play in the paper).

use fcad_accel::{AcceleratorConfig, ElasticAccelerator};
use fcad_cyclesim::Simulator;
use serde::{Deserialize, Serialize};

/// Estimated-vs-simulated numbers for one branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchValidation {
    /// Branch name.
    pub name: String,
    /// FPS predicted by the analytical model.
    pub estimated_fps: f64,
    /// FPS measured by the cycle-level simulator.
    pub simulated_fps: f64,
    /// Efficiency predicted by the analytical model.
    pub estimated_efficiency: f64,
    /// Efficiency measured by the cycle-level simulator.
    pub simulated_efficiency: f64,
}

impl BranchValidation {
    /// Relative FPS estimation error (estimated vs. simulated), as a
    /// fraction.
    pub fn fps_error(&self) -> f64 {
        relative_error(self.estimated_fps, self.simulated_fps)
    }

    /// Relative efficiency estimation error, as a fraction.
    pub fn efficiency_error(&self) -> f64 {
        relative_error(self.estimated_efficiency, self.simulated_efficiency)
    }
}

/// Comparison of the analytical model against the cycle-level simulator for
/// a complete accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-branch comparisons.
    pub branches: Vec<BranchValidation>,
}

impl ValidationReport {
    /// Evaluates `config` with both the analytical model and the simulator
    /// and collects per-branch comparisons.
    ///
    /// `bandwidth_bytes_per_sec` is the external-memory bandwidth of the
    /// simulated platform.
    ///
    /// # Errors
    ///
    /// Propagates analytical-model configuration errors.
    pub fn compare(
        accelerator: &ElasticAccelerator,
        config: &AcceleratorConfig,
        bandwidth_bytes_per_sec: f64,
    ) -> fcad_accel::Result<Self> {
        let estimated = accelerator.evaluate(config)?;
        let simulator = Simulator::for_accelerator(accelerator, bandwidth_bytes_per_sec);
        let simulated = simulator.simulate_accelerator(accelerator, config);
        let branches = estimated
            .branches
            .iter()
            .zip(&simulated.branches)
            .map(|(est, sim)| BranchValidation {
                name: est.name.clone(),
                estimated_fps: est.fps,
                simulated_fps: sim.fps,
                estimated_efficiency: est.efficiency,
                simulated_efficiency: sim.efficiency,
            })
            .collect();
        Ok(Self { branches })
    }

    /// Maximum relative FPS error across branches.
    pub fn max_fps_error(&self) -> f64 {
        self.branches
            .iter()
            .map(BranchValidation::fps_error)
            .fold(0.0, f64::max)
    }

    /// Average relative FPS error across branches.
    pub fn mean_fps_error(&self) -> f64 {
        mean(self.branches.iter().map(BranchValidation::fps_error))
    }

    /// Maximum relative efficiency error across branches.
    pub fn max_efficiency_error(&self) -> f64 {
        self.branches
            .iter()
            .map(BranchValidation::efficiency_error)
            .fold(0.0, f64::max)
    }

    /// Average relative efficiency error across branches.
    pub fn mean_efficiency_error(&self) -> f64 {
        mean(self.branches.iter().map(BranchValidation::efficiency_error))
    }
}

fn relative_error(estimated: f64, reference: f64) -> f64 {
    if reference.abs() < f64::EPSILON {
        0.0
    } else {
        ((estimated - reference) / reference).abs()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Customization, DseParams, Fcad};
    use fcad_accel::Platform;
    use fcad_nnir::models::{alexnet, targeted_decoder};
    use fcad_nnir::Precision;

    fn validated(network: fcad_nnir::Network, platform: Platform) -> ValidationReport {
        let result = Fcad::new(network, platform.clone())
            .with_customization(Customization::uniform(1, Precision::Int16))
            .with_dse_params(DseParams::fast())
            .run()
            .expect("flow succeeds");
        ValidationReport::compare(
            &result.accelerator,
            &result.dse.best_config,
            platform.budget().bandwidth_bytes_per_sec,
        )
        .expect("configs match")
    }

    #[test]
    fn estimation_error_is_small_for_single_branch_benchmarks() {
        let report = validated(alexnet(), Platform::ku115());
        assert_eq!(report.branches.len(), 1);
        // The paper reports a maximum FPS error of 2.89% and efficiency
        // error of 3.96%; our simulator stands in for the board, so the
        // error must stay in the same single-digit-percent regime.
        assert!(
            report.max_fps_error() < 0.12,
            "fps error {:.3}",
            report.max_fps_error()
        );
        assert!(
            report.max_efficiency_error() < 0.12,
            "efficiency error {:.3}",
            report.max_efficiency_error()
        );
        assert!(
            report.max_fps_error() > 0.0,
            "simulation must not be identical"
        );
    }

    #[test]
    fn decoder_validation_covers_all_branches() {
        let result = Fcad::new(targeted_decoder(), Platform::zu17eg())
            .with_customization(Customization::codec_avatar(Precision::Int8))
            .with_dse_params(DseParams::fast())
            .run()
            .unwrap();
        let report = ValidationReport::compare(
            &result.accelerator,
            &result.dse.best_config,
            Platform::zu17eg().budget().bandwidth_bytes_per_sec,
        )
        .unwrap();
        assert_eq!(report.branches.len(), 3);
        assert!(report.mean_fps_error() <= report.max_fps_error());
        for b in &report.branches {
            assert!(b.estimated_fps >= b.simulated_fps * 0.99);
        }
    }
}
