//! Serving extension of the flow: turn an optimized design into a
//! multi-session telepresence serving simulation.
//!
//! `Fcad::run()?.serve(&scenario)` feeds the DSE-optimized design's
//! per-branch frame times (and the customization's branch priorities)
//! straight into the `fcad-serve` discrete-event simulator, answering the
//! question the static report cannot: what do N concurrent avatar sessions
//! actually experience on this accelerator?

use crate::flow::FcadResult;
use fcad_cyclesim::Simulator;
use fcad_serve::{simulate, Scenario, SchedulerKind, ServeReport, ServiceModel};

impl FcadResult {
    /// The analytical service model of the best design: per-branch frame
    /// times from the accelerator report (Eq. 5 throughput, critical-stage
    /// fill) and priorities from the customization.
    pub fn service_model(&self) -> ServiceModel {
        ServiceModel::from_report(self.report(), self.accelerator.frequency_hz())
            .with_priorities(&self.customization.priorities)
    }

    /// The cycle-level-calibrated service model: frame times measured by
    /// the `fcad-cyclesim` pipeline simulator (including weight-fetch
    /// stalls the analytical model ignores) at the given external-memory
    /// bandwidth.
    pub fn calibrated_service_model(&self, bandwidth_bytes_per_sec: f64) -> ServiceModel {
        let simulator = Simulator::for_accelerator(&self.accelerator, bandwidth_bytes_per_sec);
        let sim = simulator.simulate_accelerator(&self.accelerator, &self.dse.best_config);
        ServiceModel::from_simulation(&sim, self.accelerator.frequency_hz())
            .with_priorities(&self.customization.priorities)
    }

    /// Simulates serving `scenario` on the optimized design with the
    /// default batch-aggregating scheduler.
    pub fn serve(&self, scenario: &Scenario) -> ServeReport {
        self.serve_with(scenario, SchedulerKind::BatchAggregating)
    }

    /// Simulates serving `scenario` under an explicit scheduling
    /// discipline.
    pub fn serve_with(&self, scenario: &Scenario, kind: SchedulerKind) -> ServeReport {
        simulate(&self.service_model(), scenario, kind)
    }

    /// [`FcadResult::serve_with`] on the cycle-level-calibrated service
    /// model instead of the analytical one.
    pub fn serve_calibrated(
        &self,
        scenario: &Scenario,
        kind: SchedulerKind,
        bandwidth_bytes_per_sec: f64,
    ) -> ServeReport {
        simulate(
            &self.calibrated_service_model(bandwidth_bytes_per_sec),
            scenario,
            kind,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Customization, DseParams, Fcad};
    use fcad_accel::Platform;
    use fcad_nnir::models::targeted_decoder;
    use fcad_nnir::Precision;

    fn optimized() -> FcadResult {
        Fcad::new(targeted_decoder(), Platform::zu17eg())
            .with_customization(Customization::codec_avatar(Precision::Int8))
            .with_dse_params(DseParams::fast())
            .run()
            .expect("decoder flow succeeds")
    }

    #[test]
    fn service_model_mirrors_the_report() {
        let result = optimized();
        let model = result.service_model();
        assert_eq!(model.branch_count(), result.report().branches.len());
        for (service, branch) in model.branches.iter().zip(&result.report().branches) {
            assert_eq!(service.name, branch.name);
            assert_eq!(service.max_batch, branch.batch_size);
            assert!(service.frame_time_us >= 1);
            // Frame time is the reciprocal of the branch throughput.
            let fps_from_model = 1e6 / service.frame_time_us as f64;
            assert!((fps_from_model - branch.fps).abs() / branch.fps < 0.05);
        }
    }

    #[test]
    fn serving_the_baseline_scenario_conserves_requests() {
        let result = optimized();
        let report = result.serve(&Scenario::a1());
        assert!(report.conserves_requests());
        assert!(report.completed > 0);
        assert!(report.latency.p99_ms >= report.latency.p50_ms);
    }

    #[test]
    fn calibrated_model_is_no_faster_than_the_analytical_one() {
        let result = optimized();
        let bandwidth = Platform::zu17eg().budget().bandwidth_bytes_per_sec;
        let analytical = result.service_model();
        let calibrated = result.calibrated_service_model(bandwidth);
        assert_eq!(analytical.branch_count(), calibrated.branch_count());
        for (a, c) in analytical.branches.iter().zip(&calibrated.branches) {
            // The cycle-level simulator adds tile overheads and weight
            // stalls, so its frame times can only be equal or slower.
            assert!(
                c.frame_time_us as f64 >= a.frame_time_us as f64 * 0.99,
                "{}: calibrated {} µs vs analytical {} µs",
                a.name,
                c.frame_time_us,
                a.frame_time_us
            );
        }
        let report =
            result.serve_calibrated(&Scenario::a1(), SchedulerKind::BatchAggregating, bandwidth);
        assert!(report.conserves_requests());
    }
}
