//! Serving extension of the flow: turn an optimized design into a
//! multi-session telepresence serving simulation.
//!
//! `Fcad::run()?.serve(&scenario)` feeds the DSE-optimized design's
//! per-branch frame times (and the customization's branch priorities)
//! straight into the `fcad-serve` discrete-event simulator, answering the
//! question the static report cannot: what do N concurrent avatar sessions
//! actually experience on this accelerator?

use crate::flow::FcadResult;
use fcad_cyclesim::Simulator;
use fcad_serve::{
    simulate, simulate_autoscaled, simulate_autoscaled_qos, simulate_deadline, simulate_fleet,
    simulate_fleet_qos, simulate_qos, simulate_traced, simulate_windowed, AdmissionKind,
    Autoscaler, DeadlinePolicy, FailurePlan, FleetConfig, LoadBalancerKind, Scenario,
    SchedulerKind, ServeReport, ServiceModel, TraceSink, WindowPlan,
};

impl FcadResult {
    /// The analytical service model of the best design: per-branch frame
    /// times from the accelerator report (Eq. 5 throughput, critical-stage
    /// fill) and priorities from the customization.
    pub fn service_model(&self) -> ServiceModel {
        ServiceModel::from_report(self.report(), self.accelerator.frequency_hz())
            .with_priorities(&self.customization.priorities)
    }

    /// The cycle-level-calibrated service model: frame times measured by
    /// the `fcad-cyclesim` pipeline simulator (including weight-fetch
    /// stalls the analytical model ignores) at the given external-memory
    /// bandwidth.
    pub fn calibrated_service_model(&self, bandwidth_bytes_per_sec: f64) -> ServiceModel {
        let simulator = Simulator::for_accelerator(&self.accelerator, bandwidth_bytes_per_sec);
        let sim = simulator.simulate_accelerator(&self.accelerator, &self.dse.best_config);
        ServiceModel::from_simulation(&sim, self.accelerator.frequency_hz())
            .with_priorities(&self.customization.priorities)
    }

    /// Simulates serving `scenario` on the optimized design with the
    /// default batch-aggregating scheduler.
    pub fn serve(&self, scenario: &Scenario) -> ServeReport {
        self.serve_with(scenario, SchedulerKind::BatchAggregating)
    }

    /// Simulates serving `scenario` under an explicit scheduling
    /// discipline.
    pub fn serve_with(&self, scenario: &Scenario, kind: SchedulerKind) -> ServeReport {
        simulate(&self.service_model(), scenario, kind)
    }

    /// Simulates serving `scenario` under an explicit scheduling
    /// discipline *and* admission policy: the QoS entry point. Sessions
    /// draw their class from the scenario's class mix; the report scores
    /// each class against its budget (`slo_attainment`) and counts what
    /// the admission controller shed. [`AdmissionKind::AdmitAll`]
    /// reproduces [`FcadResult::serve_with`] bit for bit.
    pub fn serve_qos(
        &self,
        scenario: &Scenario,
        kind: SchedulerKind,
        admission: AdmissionKind,
    ) -> ServeReport {
        simulate_qos(&self.service_model(), scenario, kind, admission)
    }

    /// [`FcadResult::serve_qos`] under an explicit deadline policy. With
    /// [`DeadlinePolicy::CullExpired`] the dispatcher retires queued
    /// requests whose class budget has already elapsed — the `expired`
    /// outcome in the report — instead of spending fabric time completing
    /// dead frames; pair it with [`SchedulerKind::Deadline`] for
    /// earliest-deadline-first dispatch. [`DeadlinePolicy::Off`]
    /// reproduces [`FcadResult::serve_qos`] bit for bit.
    pub fn serve_deadline(
        &self,
        scenario: &Scenario,
        kind: SchedulerKind,
        admission: AdmissionKind,
        deadline: DeadlinePolicy,
    ) -> ServeReport {
        simulate_deadline(&self.service_model(), scenario, kind, admission, deadline)
    }

    /// [`FcadResult::serve_qos`] with every request lifecycle narrated
    /// into `sink` — the observability entry point. Pass a
    /// [`fcad_serve::Recorder`] and feed its events to the exporters
    /// (`chrome_trace`, `Windowed`, `FlightRecorder`); tracing is
    /// observation-only, so the returned report is byte-identical to the
    /// untraced [`FcadResult::serve_qos`] run.
    pub fn serve_qos_traced(
        &self,
        scenario: &Scenario,
        kind: SchedulerKind,
        admission: AdmissionKind,
        sink: &mut dyn TraceSink,
    ) -> ServeReport {
        simulate_traced(
            &self.fleet_config(1),
            scenario,
            kind,
            &Autoscaler::none(),
            &FailurePlan::none(),
            admission,
            sink,
        )
    }

    /// [`FcadResult::serve_with`] on the cycle-level-calibrated service
    /// model instead of the analytical one.
    pub fn serve_calibrated(
        &self,
        scenario: &Scenario,
        kind: SchedulerKind,
        bandwidth_bytes_per_sec: f64,
    ) -> ServeReport {
        simulate(
            &self.calibrated_service_model(bandwidth_bytes_per_sec),
            scenario,
            kind,
        )
    }

    /// A homogeneous fleet of `shards` copies of this design's analytical
    /// service model (round-robin until
    /// [`FleetConfig::with_balancer`] says otherwise).
    pub fn fleet_config(&self, shards: usize) -> FleetConfig {
        FleetConfig::uniform(self.service_model(), shards)
    }

    /// Simulates serving `scenario` on a fleet of `shards` copies of the
    /// optimized design under the given balancing policy and scheduling
    /// discipline. A one-shard fleet reproduces [`FcadResult::serve_with`]
    /// bit for bit (modulo the report's balancer name).
    pub fn serve_fleet(
        &self,
        scenario: &Scenario,
        shards: usize,
        balancer: LoadBalancerKind,
        kind: SchedulerKind,
    ) -> ServeReport {
        simulate_fleet(
            &self.fleet_config(shards).with_balancer(balancer),
            scenario,
            kind,
        )
    }

    /// [`FcadResult::serve_fleet`] under an explicit admission policy:
    /// the controller is consulted at every shard front door.
    /// [`AdmissionKind::AdmitAll`] reproduces [`FcadResult::serve_fleet`]
    /// bit for bit.
    pub fn serve_qos_fleet(
        &self,
        scenario: &Scenario,
        shards: usize,
        balancer: LoadBalancerKind,
        kind: SchedulerKind,
        admission: AdmissionKind,
    ) -> ServeReport {
        simulate_fleet_qos(
            &self.fleet_config(shards).with_balancer(balancer),
            scenario,
            kind,
            admission,
        )
    }

    /// Simulates serving `scenario` on a *dynamic* fleet that starts as
    /// `shards` copies of the optimized design: `policy` scales the fleet
    /// up and down at runtime (spawned shards pay a warm-up weight fill
    /// before serving) and `failures` kills shards mid-run, re-placing
    /// their orphaned sessions through the balancer. With
    /// [`Autoscaler::none`] and [`FailurePlan::none`] this reproduces
    /// [`FcadResult::serve_fleet`] bit for bit.
    pub fn serve_autoscaled(
        &self,
        scenario: &Scenario,
        shards: usize,
        balancer: LoadBalancerKind,
        kind: SchedulerKind,
        policy: &Autoscaler,
        failures: &FailurePlan,
    ) -> ServeReport {
        simulate_autoscaled(
            &self.fleet_config(shards).with_balancer(balancer),
            scenario,
            kind,
            policy,
            failures,
        )
    }

    /// [`FcadResult::serve_autoscaled`] under an explicit admission
    /// policy — the full stack: QoS classes, admission shedding,
    /// autoscaling and failure injection in one run.
    /// [`AdmissionKind::AdmitAll`] reproduces
    /// [`FcadResult::serve_autoscaled`] bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_qos_autoscaled(
        &self,
        scenario: &Scenario,
        shards: usize,
        balancer: LoadBalancerKind,
        kind: SchedulerKind,
        policy: &Autoscaler,
        failures: &FailurePlan,
        admission: AdmissionKind,
    ) -> ServeReport {
        simulate_autoscaled_qos(
            &self.fleet_config(shards).with_balancer(balancer),
            scenario,
            kind,
            policy,
            failures,
            admission,
        )
    }

    /// [`FcadResult::serve_qos_autoscaled`] executed by the
    /// time-windowed parallel engine on `workers` threads. The report is
    /// byte-identical to the sequential run at every worker count;
    /// `workers <= 1`, one-shard fleets and load-aware balancers run the
    /// sequential engine directly.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_windowed(
        &self,
        scenario: &Scenario,
        shards: usize,
        balancer: LoadBalancerKind,
        kind: SchedulerKind,
        policy: &Autoscaler,
        failures: &FailurePlan,
        admission: AdmissionKind,
        workers: usize,
    ) -> ServeReport {
        simulate_windowed(
            &self.fleet_config(shards).with_balancer(balancer),
            scenario,
            kind,
            policy,
            failures,
            admission,
            DeadlinePolicy::Off,
            &WindowPlan::new(workers).with_window_us(400_000),
        )
    }

    /// [`FcadResult::serve_fleet`] on the cycle-level-calibrated service
    /// model instead of the analytical one.
    pub fn serve_fleet_calibrated(
        &self,
        scenario: &Scenario,
        shards: usize,
        balancer: LoadBalancerKind,
        kind: SchedulerKind,
        bandwidth_bytes_per_sec: f64,
    ) -> ServeReport {
        let model = self.calibrated_service_model(bandwidth_bytes_per_sec);
        simulate_fleet(
            &FleetConfig::uniform(model, shards).with_balancer(balancer),
            scenario,
            kind,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Customization, DseParams, Fcad};
    use fcad_accel::Platform;
    use fcad_nnir::models::targeted_decoder;
    use fcad_nnir::Precision;

    fn optimized() -> FcadResult {
        Fcad::new(targeted_decoder(), Platform::zu17eg())
            .with_customization(Customization::codec_avatar(Precision::Int8))
            .with_dse_params(DseParams::fast())
            .run()
            .expect("decoder flow succeeds")
    }

    #[test]
    fn service_model_mirrors_the_report() {
        let result = optimized();
        let model = result.service_model();
        assert_eq!(model.branch_count(), result.report().branches.len());
        for (service, branch) in model.branches.iter().zip(&result.report().branches) {
            assert_eq!(service.name, branch.name);
            assert_eq!(service.max_batch, branch.batch_size);
            assert!(service.frame_time_us >= 1);
            // Frame time is the reciprocal of the branch throughput.
            let fps_from_model = 1e6 / service.frame_time_us as f64;
            assert!((fps_from_model - branch.fps).abs() / branch.fps < 0.05);
        }
    }

    #[test]
    fn serving_the_baseline_scenario_conserves_requests() {
        let result = optimized();
        let report = result.serve(&Scenario::a1());
        assert!(report.conserves_requests());
        assert!(report.completed > 0);
        assert!(report.latency.p99_ms >= report.latency.p50_ms);
    }

    #[test]
    fn calibrated_model_is_no_faster_than_the_analytical_one() {
        let result = optimized();
        let bandwidth = Platform::zu17eg().budget().bandwidth_bytes_per_sec;
        let analytical = result.service_model();
        let calibrated = result.calibrated_service_model(bandwidth);
        assert_eq!(analytical.branch_count(), calibrated.branch_count());
        for (a, c) in analytical.branches.iter().zip(&calibrated.branches) {
            // The cycle-level simulator adds tile overheads and weight
            // stalls, so its frame times can only be equal or slower.
            assert!(
                c.frame_time_us as f64 >= a.frame_time_us as f64 * 0.99,
                "{}: calibrated {} µs vs analytical {} µs",
                a.name,
                c.frame_time_us,
                a.frame_time_us
            );
        }
        let report =
            result.serve_calibrated(&Scenario::a1(), SchedulerKind::BatchAggregating, bandwidth);
        assert!(report.conserves_requests());
    }

    #[test]
    fn fleet_serving_conserves_and_scales_the_burst_tail_down() {
        let result = optimized();
        let chaos = Scenario::b2();
        let one = result.serve_fleet(
            &chaos,
            1,
            LoadBalancerKind::LeastLoaded,
            SchedulerKind::BatchAggregating,
        );
        let four = result.serve_fleet(
            &chaos,
            4,
            LoadBalancerKind::LeastLoaded,
            SchedulerKind::BatchAggregating,
        );
        assert!(one.conserves_requests());
        assert!(four.conserves_requests());
        assert_eq!(one.shard_count(), 1);
        assert_eq!(four.shard_count(), 4);
        assert!(
            four.latency.p99_ms < one.latency.p99_ms,
            "4-shard p99 {} !< 1-shard p99 {}",
            four.latency.p99_ms,
            one.latency.p99_ms
        );
    }

    #[test]
    fn autoscaled_serving_recovers_from_a_mid_run_failure() {
        let result = optimized();
        let scenario = Scenario::b2_failover(2);
        let plan = FailurePlan::scheduled(&[(1_500_000, 1)]);
        let noop = result.serve_autoscaled(
            &scenario,
            2,
            LoadBalancerKind::AffinityFirst,
            SchedulerKind::BatchAggregating,
            &Autoscaler::none(),
            &FailurePlan::none(),
        );
        let fixed = result.serve_fleet(
            &scenario,
            2,
            LoadBalancerKind::AffinityFirst,
            SchedulerKind::BatchAggregating,
        );
        assert_eq!(noop, fixed, "no-op policy must reproduce the fixed fleet");
        let failed = result.serve_autoscaled(
            &scenario,
            2,
            LoadBalancerKind::AffinityFirst,
            SchedulerKind::BatchAggregating,
            &Autoscaler::reactive(2, 4),
            &plan,
        );
        assert!(failed.conserves_requests());
        assert!(
            failed
                .scale_events
                .iter()
                .any(|e| e.kind == fcad_serve::ScaleEventKind::Fail),
            "the scheduled kill must fire"
        );
        assert!(failed.replaced + failed.lost > 0 || failed.shards[1].issued == 0);
        assert!(failed.availability > 0.5);
    }

    #[test]
    fn qos_entry_points_reduce_to_the_legacy_paths_under_admit_all() {
        let result = optimized();
        let scenario = Scenario::b2();
        let legacy = result.serve_with(&scenario, SchedulerKind::PriorityByBranch);
        let qos = result.serve_qos(
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::AdmitAll,
        );
        assert_eq!(legacy, qos, "admit-all must be the legacy single device");
        let fleet = result.serve_fleet(
            &scenario,
            2,
            LoadBalancerKind::LeastLoaded,
            SchedulerKind::BatchAggregating,
        );
        let qos_fleet = result.serve_qos_fleet(
            &scenario,
            2,
            LoadBalancerKind::LeastLoaded,
            SchedulerKind::BatchAggregating,
            AdmissionKind::AdmitAll,
        );
        assert_eq!(fleet, qos_fleet, "admit-all must be the legacy fleet");
    }

    #[test]
    fn qos_serving_sheds_and_scores_the_classes() {
        let result = optimized();
        let scenario = Scenario::b2_qos();
        let report = result.serve_qos(
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::BudgetAware,
        );
        assert!(report.conserves_requests());
        assert!(report.shed > 0, "the QoS burst must trigger shedding");
        assert!(report.slo_attainment > 0.0 && report.slo_attainment <= 1.0);
        let autoscaled = result.serve_qos_autoscaled(
            &scenario,
            1,
            LoadBalancerKind::RoundRobin,
            SchedulerKind::PriorityByBranch,
            &Autoscaler::none(),
            &FailurePlan::none(),
            AdmissionKind::BudgetAware,
        );
        assert_eq!(report, autoscaled, "no-op policy must not disturb QoS");
    }

    #[test]
    fn deadline_entry_point_reduces_to_qos_when_off() {
        let result = optimized();
        let scenario = Scenario::b2_qos();
        let qos = result.serve_qos(&scenario, SchedulerKind::Deadline, AdmissionKind::AdmitAll);
        let off = result.serve_deadline(
            &scenario,
            SchedulerKind::Deadline,
            AdmissionKind::AdmitAll,
            DeadlinePolicy::Off,
        );
        assert_eq!(qos, off, "culling off must be the QoS path bit for bit");
        let culled = result.serve_deadline(
            &scenario,
            SchedulerKind::Deadline,
            AdmissionKind::AdmitAll,
            DeadlinePolicy::CullExpired,
        );
        assert!(culled.conserves_requests());
        assert_eq!(culled.scheduler, "deadline");
        assert_eq!(
            culled.expired,
            culled.classes.iter().map(|c| c.expired).sum::<u64>(),
            "expiry must be attributed to classes"
        );
    }

    #[test]
    fn traced_qos_serving_observes_without_disturbing() {
        let result = optimized();
        let scenario = Scenario::b2_qos();
        let untraced = result.serve_qos(
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::BudgetAware,
        );
        let mut recorder = fcad_serve::Recorder::new();
        let traced = result.serve_qos_traced(
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::BudgetAware,
            &mut recorder,
        );
        assert_eq!(untraced, traced, "tracing must be observation-only");
        assert!(!recorder.is_empty(), "the run must narrate itself");
        assert_eq!(
            recorder.summary().events,
            recorder.events().len() as u64,
            "the summary must count what was recorded"
        );
    }

    #[test]
    fn calibrated_fleet_serving_conserves_requests() {
        let result = optimized();
        let bandwidth = Platform::zu17eg().budget().bandwidth_bytes_per_sec;
        let report = result.serve_fleet_calibrated(
            &Scenario::b1_fleet(2),
            2,
            LoadBalancerKind::AffinityFirst,
            SchedulerKind::BatchAggregating,
            bandwidth,
        );
        assert!(report.conserves_requests());
        assert_eq!(report.shard_count(), 2);
        assert_eq!(report.balancer, "affinity");
    }
}
