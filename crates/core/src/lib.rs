//! F-CAD: automated exploration of hardware accelerators for codec avatar
//! decoders (and multi-branch DNNs in general).
//!
//! This crate ties the workspace together into the three-step design flow of
//! Fig. 4 of the paper:
//!
//! 1. **Analysis** — profile the input network: layer/branch structure,
//!    per-layer and per-branch compute and memory demands
//!    ([`fcad_profiler::NetworkProfile`]).
//! 2. **Construction** — fuse lightweight layers into their neighbouring
//!    major layers, assign shared branch prefixes to the most
//!    compute-demanding branch (the *critical flow*), and instantiate the
//!    elastic architecture: one [`fcad_accel::BranchPipeline`] per branch
//!    ([`Construction`]).
//! 3. **Optimization** — explore the multi-branch dynamic design space with
//!    the DSE engine (cross-branch stochastic + in-branch greedy search) and
//!    return the best accelerator configuration together with its
//!    performance, efficiency and resource report ([`Fcad::run`]).
//!
//! The crate also provides the estimation-accuracy study of Sec. VI-B.3
//! ([`ValidationReport`]): the analytical model's FPS / efficiency estimates
//! are compared against the cycle-level simulator that stands in for the
//! paper's board measurements.
//!
//! Beyond the paper's static evaluation, an optimized design can be put
//! under multi-session telepresence load: [`FcadResult::serve`] runs the
//! `fcad-serve` discrete-event simulator (arrival patterns, pluggable
//! schedulers, tail-latency percentiles) on the design's frame times — see
//! [`Scenario`] for the `a1`/`a2`/`b1`/`b2` scenario suite.
//!
//! # Quick start
//!
//! ```
//! use fcad::{Fcad, DseParams};
//! use fcad_accel::Platform;
//! use fcad_nnir::models::targeted_decoder;
//!
//! let result = Fcad::new(targeted_decoder(), Platform::z7045())
//!     .with_dse_params(DseParams::fast())
//!     .run()?;
//! println!("{:.1} FPS at {:.1}% efficiency",
//!          result.report().min_fps,
//!          result.report().overall_efficiency * 100.0);
//! # Ok::<(), fcad::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construction;
mod error;
mod flow;
mod report;
mod serve;
mod validate;

pub use construction::{BranchConstruction, Construction};
pub use error::{Error, Result};
pub use flow::{Fcad, FcadResult};
pub use report::render_case_table;
pub use validate::{BranchValidation, ValidationReport};

// Re-export the types users need to drive the flow without importing every
// sub-crate explicitly.
pub use fcad_dse::{Customization, DseParams, DseResult, ElapsedTimer};
pub use fcad_serve::{
    chrome_trace, validate_json, AdmissionKind, Autoscaler, ClassMix, ClassServeStats, FailurePlan,
    FleetConfig, FlightRecorder, LoadBalancerKind, QosClass, Recorder, ScaleEvent, ScaleEventKind,
    Scenario, SchedulerKind, ServeReport, ServiceModel, ShardState, ShardStats, TraceSink,
    Windowed,
};
