//! Process-based performance-trajectory harness: times the **release
//! `reproduce` binary** — the artefact we actually ship — cell by cell
//! and maintains the versioned throughput ledger `BENCH_serve.json`
//! checked into the repository root.
//!
//! Each cell is one `reproduce` invocation (a scenario × policy slice of
//! the serving evaluation, including the windowed-parallel cells at 1
//! and 8 workers). The harness collects the single-line JSON reports
//! from stdout, sums their simulated events (`issued + completed`),
//! divides by wall time and records one ledger row per cell. For the
//! `--windowed` cells it prefers the binary's own serving-only timing
//! line (`"bench":"windowed_serve"`), which excludes the DSE flow that
//! dominates process wall time.
//!
//! Usage:
//!   perf_trajectory                  # run all cells, rewrite BENCH_serve.json
//!   perf_trajectory --check          # run all cells, FAIL if any cell's
//!                                    # events/sec fell more than 25% below
//!                                    # the checked-in ledger (CI gate)
//!   perf_trajectory --ledger PATH    # read/write a different ledger file
//!
//! The 25% tolerance absorbs shared-runner noise on sub-second cells
//! while still catching real engine regressions (which historically show
//! up as 2–10× slowdowns, not 25% ones). To accept an intentional
//! change, re-run `perf_trajectory` and commit the rewritten ledger in
//! the same PR (the workflow README documents this).

use std::process::Command;
use std::time::Instant;

/// Ledger schema version — bump when row fields change meaning.
const LEDGER_VERSION: u64 = 1;
/// A cell fails the `--check` gate below `(1 - TOLERANCE) ×` its ledger
/// events/sec.
const TOLERANCE: f64 = 0.25;

/// The timed cells: ledger name × `reproduce` arguments.
const CELLS: &[(&str, &[&str])] = &[
    ("serve_suite", &["--serve"]),
    ("fleet_sweep", &["--fleet"]),
    ("autoscale_failover", &["--autoscale"]),
    ("qos_admission", &["--qos"]),
    ("deadline_culling", &["--deadline"]),
    ("windowed_seq", &["--windowed"]),
    ("windowed_par8", &["--windowed", "--workers", "8"]),
];

struct CellResult {
    name: &'static str,
    args: String,
    sim_events: u64,
    wall_sec: f64,
    events_per_sec: f64,
}

/// Extracts `"key":<number>` from a JSON line (the reports and timing
/// lines are flat, machine-written objects — no nesting ambiguity).
fn extract_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let tail = &line[at..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn run_cell(binary: &std::path::Path, name: &'static str, args: &[&str]) -> CellResult {
    let start = Instant::now();
    let output = Command::new(binary)
        .args(args)
        .output()
        .expect("the release `reproduce` binary must be runnable");
    let wall_sec = start.elapsed().as_secs_f64().max(1e-9);
    assert!(
        output.status.success(),
        "`reproduce {}` exited with {}",
        args.join(" "),
        output.status
    );
    let stdout = String::from_utf8(output.stdout).expect("reproduce prints UTF-8");
    // Serving-only timing line (windowed cells print one): the preferred
    // throughput source, since it excludes the shared DSE-flow prelude.
    for line in stdout.lines() {
        if line.starts_with("{\"bench\":\"windowed_serve\"") {
            let sim_events =
                extract_number(line, "sim_events").expect("windowed_serve line carries sim_events");
            let events_per_sec = extract_number(line, "events_per_sec")
                .expect("windowed_serve line carries events_per_sec");
            let wall_sec =
                extract_number(line, "wall_sec").expect("windowed_serve line carries wall_sec");
            return CellResult {
                name,
                args: args.join(" "),
                sim_events: sim_events as u64,
                wall_sec,
                events_per_sec,
            };
        }
    }
    // Otherwise: sum simulated events over every report line and divide
    // by process wall time.
    let mut sim_events = 0u64;
    for line in stdout.lines() {
        if !line.starts_with('{') {
            continue;
        }
        if let (Some(issued), Some(completed)) = (
            extract_number(line, "issued"),
            extract_number(line, "completed"),
        ) {
            sim_events += issued as u64 + completed as u64;
        }
    }
    assert!(sim_events > 0, "cell {name} produced no serving reports");
    CellResult {
        name,
        args: args.join(" "),
        sim_events,
        wall_sec,
        events_per_sec: sim_events as f64 / wall_sec,
    }
}

fn render_ledger(cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {LEDGER_VERSION},\n"));
    out.push_str("  \"bench\": \"perf_trajectory\",\n");
    out.push_str("  \"binary\": \"reproduce\",\n");
    out.push_str(&format!("  \"tolerance\": {TOLERANCE},\n"));
    let speedup = windowed_speedup(cells);
    out.push_str(&format!(
        "  \"windowed_speedup_at_8_workers\": {speedup:.2},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (index, cell) in cells.iter().enumerate() {
        let comma = if index + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"args\": \"{}\", \"sim_events\": {}, \
             \"wall_sec\": {:.4}, \"events_per_sec\": {:.0}}}{comma}\n",
            cell.name, cell.args, cell.sim_events, cell.wall_sec, cell.events_per_sec,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Windowed-engine speedup: parallel-8 over sequential serving
/// throughput (both from the binary's serving-only timing lines).
fn windowed_speedup(cells: &[CellResult]) -> f64 {
    let seq = cells.iter().find(|c| c.name == "windowed_seq");
    let par = cells.iter().find(|c| c.name == "windowed_par8");
    match (seq, par) {
        (Some(seq), Some(par)) => par.events_per_sec / seq.events_per_sec,
        _ => 0.0,
    }
}

/// Pulls a cell's recorded events/sec out of the checked-in ledger.
fn ledger_events_per_sec(ledger: &str, cell: &str) -> Option<f64> {
    let row = ledger
        .lines()
        .find(|line| line.contains(&format!("\"cell\": \"{cell}\"")))?;
    extract_number(&row.replace(": ", ":"), "events_per_sec")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let ledger_path = args
        .iter()
        .position(|a| a == "--ledger")
        .map(|at| args[at + 1].clone())
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());

    // The release `reproduce` binary sits next to this one.
    let binary = std::env::current_exe()
        .expect("current_exe is resolvable")
        .with_file_name("reproduce");
    assert!(
        binary.exists(),
        "{} not found — build it first: cargo build --release -p fcad-bench --bin reproduce",
        binary.display()
    );

    let cells: Vec<CellResult> = CELLS
        .iter()
        .map(|&(name, args)| {
            // Best of two runs: the cells are sub-second, so one scheduler
            // hiccup in the shared-runner prelude would otherwise eat most
            // of the 25% tolerance on its own.
            let first = run_cell(&binary, name, args);
            let second = run_cell(&binary, name, args);
            let cell = if second.events_per_sec > first.events_per_sec {
                second
            } else {
                first
            };
            println!(
                "{{\"bench\":\"perf_trajectory\",\"cell\":\"{}\",\"sim_events\":{},\
                 \"wall_sec\":{:.4},\"events_per_sec\":{:.0}}}",
                cell.name, cell.sim_events, cell.wall_sec, cell.events_per_sec,
            );
            cell
        })
        .collect();
    println!(
        "{{\"bench\":\"perf_trajectory\",\"windowed_speedup_at_8_workers\":{:.2}}}",
        windowed_speedup(&cells)
    );

    if check {
        let ledger = std::fs::read_to_string(&ledger_path)
            .unwrap_or_else(|_| panic!("--check needs the checked-in ledger at {ledger_path}"));
        let mut failures = Vec::new();
        for cell in &cells {
            let Some(baseline) = ledger_events_per_sec(&ledger, cell.name) else {
                println!("new cell {} (no ledger row yet) — skipped", cell.name);
                continue;
            };
            let floor = baseline * (1.0 - TOLERANCE);
            let verdict = if cell.events_per_sec >= floor {
                "ok"
            } else {
                failures.push(format!(
                    "{}: {:.0} events/sec < floor {:.0} (ledger {:.0})",
                    cell.name, cell.events_per_sec, floor, baseline
                ));
                "REGRESSED"
            };
            println!(
                "check {}: measured {:.0} vs ledger {:.0} events/sec — {verdict}",
                cell.name, cell.events_per_sec, baseline
            );
        }
        if !failures.is_empty() {
            eprintln!(
                "perf regression gate failed (>{:.0}% drop):\n  {}",
                TOLERANCE * 100.0,
                failures.join("\n  ")
            );
            eprintln!(
                "If intentional, rerun `cargo run --release -p fcad-bench --bin \
                 perf_trajectory` and commit the rewritten {ledger_path}."
            );
            std::process::exit(1);
        }
        println!("perf regression gate passed ({} cells)", cells.len());
    } else {
        std::fs::write(&ledger_path, render_ledger(&cells))
            .unwrap_or_else(|_| panic!("ledger {ledger_path} must be writable"));
        println!("wrote {ledger_path}");
    }
}
