//! Benchmark harness: regenerates every table and figure of the F-CAD paper.
//!
//! Each experiment is a function returning both the structured data and a
//! printable table so that the Criterion benches (which time the generation)
//! and the `reproduce` binary (which prints the results for
//! `EXPERIMENTS.md`) share the same code path.
//!
//! | Experiment | Function | Paper artefact |
//! |------------|----------|----------------|
//! | Decoder profile | [`table1`] | Table I |
//! | Baseline evaluation | [`table2`] | Table II |
//! | DNNBuilder layer latencies | [`fig3`] | Fig. 3 |
//! | FPS estimation error | [`fig6`] | Fig. 6 |
//! | Efficiency estimation error | [`fig7`] | Fig. 7 |
//! | F-CAD generated accelerators | [`table4`] | Table IV |
//! | Comparison on ZU9CG | [`table5`] | Table V |
//! | DSE convergence | [`convergence`] | Sec. VII text |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fcad::{Customization, DseParams, Fcad, FcadResult, ValidationReport};
use fcad_accel::Platform;
use fcad_baselines::{BaselineResult, DnnBuilder, HybridDnn, LayerLatency, MobileSoc};
use fcad_dse::ConvergenceStats;
use fcad_nnir::models::{classic_benchmarks, mimic_decoder, targeted_decoder};
use fcad_nnir::Precision;
use fcad_profiler::{NetworkProfile, Table};

/// DSE hyper-parameters used by the harness. The paper uses `P = 200`,
/// `N = 20`; the harness defaults to a lighter setting that converges to the
/// same designs on these workloads while keeping `cargo bench` quick. Pass
/// `full = true` to use the paper's setting.
pub fn dse_params(full: bool) -> DseParams {
    if full {
        DseParams::paper()
    } else {
        DseParams {
            population: 48,
            iterations: 12,
            ..DseParams::paper()
        }
    }
}

/// Table I: the decoder's per-branch structure, GOP and parameter counts.
pub fn table1() -> String {
    let profile = NetworkProfile::of(&targeted_decoder());
    let mut text = profile.table();
    text.push_str(&format!(
        "paper reference: Br.1 1.9 GOP / 1.1M, Br.2 11.3 GOP / 6.1M, Br.3 4.9 GOP / 1.9M, \
         total 13.6 GOP / 7.2M\nlargest intermediate feature map: {} elements (paper: 16x1024x1024)\n",
        profile.max_intermediate_elements()
    ));
    text
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Scheme label ("865 SoC", "DNNBuilder scheme 1", ...).
    pub scheme: String,
    /// Baseline evaluation.
    pub result: BaselineResult,
}

/// Table II: the mobile SoC, DNNBuilder (schemes 1–3) and HybridDNN
/// (schemes 1–3) on the decoder / mimic decoder.
pub fn table2() -> (Vec<Table2Row>, String) {
    let mimic = mimic_decoder();
    let mut rows = Vec::new();
    rows.push(Table2Row {
        scheme: "Snapdragon-865-class SoC (8-bit)".into(),
        result: MobileSoc::snapdragon865().evaluate(&targeted_decoder(), Precision::Int8),
    });
    for (i, platform) in Platform::evaluation_schemes().into_iter().enumerate() {
        rows.push(Table2Row {
            scheme: format!("DNNBuilder scheme {} ({})", i + 1, platform.name()),
            result: DnnBuilder::new(platform, Precision::Int8).evaluate(&mimic),
        });
    }
    for (i, platform) in Platform::evaluation_schemes().into_iter().enumerate() {
        rows.push(Table2Row {
            scheme: format!("HybridDNN scheme {} ({})", i + 1, platform.name()),
            result: HybridDnn::new(platform).evaluate(&mimic),
        });
    }
    let mut table = Table::new(vec![
        "Scheme".into(),
        "DSP".into(),
        "BRAM".into(),
        "FPS".into(),
        "Efficiency".into(),
    ]);
    for row in &rows {
        table.add_row(vec![
            row.scheme.clone(),
            row.result.dsp.to_string(),
            row.result.bram.to_string(),
            format!("{:.1}", row.result.fps),
            format!("{:.1}%", row.result.efficiency * 100.0),
        ]);
    }
    let text = format!(
        "Table II — existing accelerators on the (mimic) decoder\n{}\
         paper reference: SoC 35.8 FPS / 16.9%; DNNBuilder 30.5 FPS with 81.6% -> 50.4% -> 28.8%; \
         HybridDNN 12.1 / 22.0 / 22.0 FPS with 77.5% / 70.4% / 70.4%\n",
        table.render()
    );
    (rows, text)
}

/// Fig. 3: latency of the last five branch-2 Conv layers under DNNBuilder
/// for the three FPGA schemes.
pub fn fig3() -> (Vec<(String, Vec<LayerLatency>)>, String) {
    let mimic = mimic_decoder();
    let mut series = Vec::new();
    for (i, platform) in Platform::evaluation_schemes().into_iter().enumerate() {
        let builder = DnnBuilder::new(platform.clone(), Precision::Int8);
        series.push((
            format!("scheme {} ({})", i + 1, platform.name()),
            builder.branch_tail_latencies(&mimic, "texture", 5),
        ));
    }
    let mut table = Table::new(
        std::iter::once("Layer".to_owned())
            .chain(series.iter().map(|(name, _)| format!("{name} [ms]")))
            .collect(),
    );
    if let Some((_, first)) = series.first() {
        for (idx, layer) in first.iter().enumerate() {
            let mut row = vec![layer.name.clone()];
            for (_, latencies) in &series {
                let cycles = latencies[idx].cycles as f64;
                let capped = if latencies[idx].at_parallelism_cap {
                    "*"
                } else {
                    ""
                };
                row.push(format!("{:.2}{}", cycles / 200e6 * 1e3, capped));
            }
            table.add_row(row);
        }
    }
    let text = format!(
        "Fig. 3 — DNNBuilder latency of the last five Br.2 Conv layers (* = stuck at the \
         InCh x OutCh parallelism cap)\n{}\
         paper reference: the circled few-channel layers stop scaling across schemes, pinning FPS\n",
        table.render()
    );
    (series, text)
}

/// One estimation-accuracy sample (Fig. 6 / Fig. 7).
#[derive(Debug, Clone)]
pub struct EstimationSample {
    /// Benchmark network name.
    pub network: String,
    /// Precision of the run.
    pub precision: Precision,
    /// Relative FPS estimation error (fraction).
    pub fps_error: f64,
    /// Relative efficiency estimation error (fraction).
    pub efficiency_error: f64,
    /// Analytically estimated FPS.
    pub estimated_fps: f64,
    /// Simulated ("measured") FPS.
    pub simulated_fps: f64,
}

/// Runs the Fig. 6/7 estimation-accuracy study: the eight benchmarks
/// (AlexNet, ZFNet, VGG16, Tiny-YOLO at 16-bit and 8-bit) on a KU115-class
/// budget, analytical model vs. cycle-level simulation.
pub fn estimation_study(full: bool) -> Vec<EstimationSample> {
    let platform = Platform::ku115();
    let mut samples = Vec::new();
    for precision in [Precision::Int16, Precision::Int8] {
        for network in classic_benchmarks() {
            let name = network.name().to_owned();
            let result = Fcad::new(network, platform.clone())
                .with_customization(Customization::uniform(1, precision))
                .with_dse_params(dse_params(full))
                .run()
                .expect("classic benchmark flow succeeds");
            let validation = ValidationReport::compare(
                &result.accelerator,
                &result.dse.best_config,
                platform.budget().bandwidth_bytes_per_sec,
            )
            .expect("configuration matches the accelerator");
            let branch = &validation.branches[0];
            samples.push(EstimationSample {
                network: name,
                precision,
                fps_error: branch.fps_error(),
                efficiency_error: branch.efficiency_error(),
                estimated_fps: branch.estimated_fps,
                simulated_fps: branch.simulated_fps,
            });
        }
    }
    samples
}

fn estimation_table(samples: &[EstimationSample], which: &str) -> String {
    let mut table = Table::new(vec![
        "Benchmark".into(),
        "Precision".into(),
        "Estimated FPS".into(),
        "Measured (sim) FPS".into(),
        "Error".into(),
    ]);
    let mut errors = Vec::new();
    for s in samples {
        let error = if which == "fps" {
            s.fps_error
        } else {
            s.efficiency_error
        };
        errors.push(error);
        table.add_row(vec![
            s.network.clone(),
            s.precision.to_string(),
            format!("{:.1}", s.estimated_fps),
            format!("{:.1}", s.simulated_fps),
            format!("{:.2}%", error * 100.0),
        ]);
    }
    let max = errors.iter().copied().fold(0.0, f64::max);
    let avg = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    let reference = if which == "fps" {
        "paper reference: max 2.89%, average 2.02%"
    } else {
        "paper reference: max 3.96%, average 1.91%"
    };
    format!(
        "{}\nmax error {:.2}%  average error {:.2}%   ({reference})\n",
        table.render(),
        max * 100.0,
        avg * 100.0
    )
}

/// Fig. 6: FPS estimation error of the analytical model on the eight
/// benchmarks.
pub fn fig6(samples: &[EstimationSample]) -> String {
    format!(
        "Fig. 6 — FPS estimation error (analytical vs. cycle-level simulation)\n{}",
        estimation_table(samples, "fps")
    )
}

/// Fig. 7: efficiency estimation error on the eight benchmarks.
pub fn fig7(samples: &[EstimationSample]) -> String {
    format!(
        "Fig. 7 — efficiency estimation error (analytical vs. cycle-level simulation)\n{}",
        estimation_table(samples, "efficiency")
    )
}

/// The five Table IV cases: platform, precision and label.
pub fn table4_cases() -> Vec<(String, Platform, Precision)> {
    vec![
        (
            "Case 1: Z7045 (8-bit)".into(),
            Platform::z7045(),
            Precision::Int8,
        ),
        (
            "Case 2: ZU17EG (8-bit)".into(),
            Platform::zu17eg(),
            Precision::Int8,
        ),
        (
            "Case 3: ZU17EG (16-bit)".into(),
            Platform::zu17eg(),
            Precision::Int16,
        ),
        (
            "Case 4: ZU9CG (8-bit)".into(),
            Platform::zu9cg(),
            Precision::Int8,
        ),
        (
            "Case 5: ZU9CG (16-bit)".into(),
            Platform::zu9cg(),
            Precision::Int16,
        ),
    ]
}

/// Runs one Table IV case: the full F-CAD flow on the targeted decoder with
/// the codec-avatar customization (batch sizes {1, 2, 2}).
pub fn run_case(platform: &Platform, precision: Precision, full: bool) -> FcadResult {
    Fcad::new(targeted_decoder(), platform.clone())
        .with_customization(Customization::codec_avatar(precision))
        .with_dse_params(dse_params(full))
        .run()
        .expect("decoder flow succeeds on all paper platforms")
}

/// Table IV: the five F-CAD-generated accelerators.
pub fn table4(full: bool) -> String {
    let mut text =
        String::from("Table IV — F-CAD generated accelerators for codec avatar decoding\n");
    for (name, platform, precision) in table4_cases() {
        let result = run_case(&platform, precision, full);
        text.push_str(&fcad::render_case_table(
            &format!(
                "{name} — budget {} DSPs, {} BRAMs",
                platform.budget().dsp,
                platform.budget().bram
            ),
            &result,
        ));
        text.push('\n');
    }
    text.push_str(
        "paper reference: up to 122.1 FPS (Case 4) and 96.7% branch efficiency (Case 5); \
         Br.2 receives the bulk of the DSPs in every case\n",
    );
    text
}

/// Table V: DNNBuilder, HybridDNN and F-CAD (8- and 16-bit) on the same
/// ZU9CG budget with uniform batch size 1.
pub fn table5(full: bool) -> String {
    let platform = Platform::zu9cg();
    let mimic = mimic_decoder();
    let dnnbuilder = DnnBuilder::new(platform.clone(), Precision::Int8).evaluate(&mimic);
    let hybrid = HybridDnn::new(platform.clone()).evaluate(&mimic);
    let mut table = Table::new(vec![
        "Design".into(),
        "Precision".into(),
        "DSP".into(),
        "BRAM".into(),
        "FPS".into(),
        "Efficiency".into(),
    ]);
    for (name, r) in [("DNNBuilder", &dnnbuilder), ("HybridDNN", &hybrid)] {
        table.add_row(vec![
            name.into(),
            r.name
                .split('(')
                .nth(1)
                .unwrap_or("")
                .trim_end_matches(')')
                .into(),
            r.dsp.to_string(),
            r.bram.to_string(),
            format!("{:.1}", r.fps),
            format!("{:.1}%", r.efficiency * 100.0),
        ]);
    }
    let mut speedups = String::new();
    for precision in [Precision::Int8, Precision::Int16] {
        let result = Fcad::new(targeted_decoder(), platform.clone())
            .with_customization(Customization::uniform(3, precision))
            .with_dse_params(dse_params(full))
            .run()
            .expect("decoder flow succeeds");
        table.add_row(vec![
            "F-CAD (this work)".into(),
            precision.to_string(),
            result.report().total_usage.dsp.to_string(),
            result.report().total_usage.bram.to_string(),
            format!("{:.1}", result.min_fps()),
            format!("{:.1}%", result.efficiency() * 100.0),
        ]);
        let reference = match precision {
            Precision::Int8 => dnnbuilder.fps,
            _ => hybrid.fps,
        };
        speedups.push_str(&format!(
            "F-CAD {} throughput is {:.1}x the {} baseline\n",
            precision,
            result.min_fps() / reference,
            if precision == Precision::Int8 {
                "DNNBuilder"
            } else {
                "HybridDNN"
            },
        ));
    }
    format!(
        "Table V — comparison on the same ZU9CG FPGA (batch 1)\n{}{}\
         paper reference: F-CAD 122.1 FPS / 91.3% (8-bit) and 61.0 FPS / 91.6% (16-bit): \
         4.0x DNNBuilder and 2.8x HybridDNN\n",
        table.render(),
        speedups
    )
}

/// DSE convergence study: independent searches per Table IV case.
pub fn convergence(runs: usize, full: bool) -> String {
    let mut table = Table::new(vec![
        "Case".into(),
        "Runs".into(),
        "Mean iter.".into(),
        "Min iter.".into(),
        "Max iter.".into(),
        "Mean seconds".into(),
    ]);
    for (name, platform, precision) in table4_cases() {
        let mut results = Vec::new();
        for seed in 0..runs {
            // The convergence study is the one flow that *reports* wall
            // time ("Mean seconds"), so it opts into the wall-clock timer;
            // every other flow keeps the deterministic default (0.0 s).
            let result = Fcad::new(targeted_decoder(), platform.clone())
                .with_customization(Customization::codec_avatar(precision))
                .with_dse_params(dse_params(full).with_seed(1 + seed as u64 * 7919))
                .with_timer(fcad::ElapsedTimer::WallClock)
                .run()
                .expect("decoder flow succeeds");
            results.push(result.dse);
        }
        let stats = ConvergenceStats::of(&results).expect("at least one run");
        table.add_row(vec![
            name,
            stats.runs.to_string(),
            format!("{:.1}", stats.mean_iterations),
            format!("{:.1}", stats.min_iterations),
            format!("{:.1}", stats.max_iterations),
            format!("{:.2}", stats.mean_seconds),
        ]);
    }
    format!(
        "DSE convergence — independent searches per case\n{}\
         paper reference: all searches converge in minutes; average 9.2 iterations (min 6.8, max 13.6)\n",
        table.render()
    )
}

/// Machine-readable run summary: one F-CAD case (ZU17EG, 8-bit) plus the
/// four-scenario serving suite, rendered as a single JSON line — the
/// machine-readable-output idiom of the WIND bench harness (`reproduce`
/// prints this as its final line).
pub fn summary(full: bool) -> String {
    let platform = Platform::zu17eg();
    summary_of(&run_case(&platform, Precision::Int8, full), &platform)
}

/// [`summary`] over an already-optimized design, so callers that ran the
/// case for other output (e.g. `reproduce --serve`) don't pay for the DSE
/// twice.
pub fn summary_of(result: &FcadResult, platform: &Platform) -> String {
    use fcad_serve::json::{array, JsonObject};
    use fcad_serve::Scenario;

    let report = result.report();
    let scenarios: Vec<String> = Scenario::suite()
        .iter()
        .map(|scenario| {
            let serve = result.serve(scenario);
            JsonObject::new()
                .str("scenario", &serve.scenario)
                .str("scheduler", &serve.scheduler)
                .u64("issued", serve.issued)
                .f64("throughput_rps", serve.throughput_rps)
                .f64("drop_rate", serve.drop_rate)
                .f64("p50_ms", serve.latency.p50_ms)
                .f64("p99_ms", serve.latency.p99_ms)
                .render()
        })
        .collect();
    JsonObject::new()
        .str("experiment", "fcad_repro_summary")
        .str("platform", platform.name())
        .f64("min_fps", report.min_fps)
        .f64("efficiency", report.overall_efficiency)
        .u64("dsp", report.total_usage.dsp as u64)
        .u64("bram", report.total_usage.bram as u64)
        .u64(
            "dse_convergence_iteration",
            result.dse.convergence_iteration as u64,
        )
        .raw("serve", &array(&scenarios))
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_text_contains_branches_and_totals() {
        let text = table1();
        assert!(text.contains("texture"));
        assert!(text.contains("total"));
    }

    #[test]
    fn table2_has_seven_rows() {
        let (rows, text) = table2();
        assert_eq!(rows.len(), 7);
        assert!(text.contains("DNNBuilder scheme 3"));
    }

    #[test]
    fn fig3_has_three_series_of_five_layers() {
        let (series, text) = fig3();
        assert_eq!(series.len(), 3);
        for (_, layers) in &series {
            assert_eq!(layers.len(), 5);
        }
        assert!(text.contains("Fig. 3"));
    }

    #[test]
    fn table4_cases_cover_the_three_fpgas() {
        let cases = table4_cases();
        assert_eq!(cases.len(), 5);
        assert_eq!(cases[0].1.name(), "Z7045");
        assert_eq!(cases[4].2, Precision::Int16);
    }
}
