//! Pins the engine rebuild's throughput: simulated events per wall-clock
//! second for the frozen pre-rebuild loop (`fcad_serve::reference`), the
//! calendar-driven engine and the parallel shard engine, on the fleet
//! suite at 64 shards (where the reference's per-iteration linear scans
//! dominate) plus a downscaled metropolis. Each comparison prints a
//! machine-readable JSON line with the measured events/sec and the
//! speedup over the reference — CI uploads this output as an artifact.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_serve::{
    reference, simulate_autoscaled_deadline, simulate_fleet, simulate_fleet_deadline,
    simulate_fleet_parallel, simulate_windowed, AdmissionKind, Autoscaler, BranchService,
    DeadlinePolicy, FailurePlan, FleetConfig, Scenario, SchedulerKind, ServeReport, ServiceModel,
    WindowPlan,
};

const SHARDS: usize = 64;
const PARALLEL_WORKERS: usize = 8;

/// The three-branch bench model (no DSE run needed): two visual branches
/// and a cheap low-priority audio-like branch, the same shape the test
/// suites use.
fn model() -> ServiceModel {
    ServiceModel {
        branches: vec![
            BranchService {
                name: "geometry".to_owned(),
                frame_time_us: 9_000,
                fill_time_us: 8_000,
                max_batch: 1,
                priority: 1.0,
            },
            BranchService {
                name: "texture".to_owned(),
                frame_time_us: 5_000,
                fill_time_us: 7_000,
                max_batch: 2,
                priority: 1.0,
            },
            BranchService {
                name: "audio".to_owned(),
                frame_time_us: 1_500,
                fill_time_us: 2_000,
                max_batch: 4,
                priority: 0.2,
            },
        ],
    }
}

/// Simulated events of one run: every arrival plus every completion.
fn sim_events(report: &ServeReport) -> u64 {
    report.issued + report.completed
}

fn timed<F: FnMut() -> ServeReport>(mut run: F) -> (f64, ServeReport) {
    let start = Instant::now();
    let report = run();
    (start.elapsed().as_secs_f64().max(1e-9), report)
}

fn print_comparison(scenario: &str, events: u64, reference_sec: f64, engine: &str, sec: f64) {
    println!(
        "{{\"bench\":\"sim_events_per_sec\",\"scenario\":\"{scenario}\",\"engine\":\"{engine}\",\
         \"sim_events\":{events},\"events_per_sec\":{:.0},\"speedup_vs_reference\":{:.2}}}",
        events as f64 / sec,
        reference_sec / sec,
    );
}

fn bench(c: &mut Criterion) {
    let model = model();
    let kind = SchedulerKind::BatchAggregating;
    for scenario in Scenario::fleet_suite(SHARDS) {
        let config = FleetConfig::uniform(model.clone(), SHARDS);
        let (ref_sec, ref_report) = timed(|| reference::simulate_fleet(&config, &scenario, kind));
        let (seq_sec, seq_report) = timed(|| simulate_fleet(&config, &scenario, kind));
        let (par_sec, par_report) =
            timed(|| simulate_fleet_parallel(&config, &scenario, kind, PARALLEL_WORKERS));
        assert_eq!(ref_report.to_json_line(), seq_report.to_json_line());
        assert_eq!(ref_report.to_json_line(), par_report.to_json_line());
        let events = sim_events(&ref_report);
        print_comparison(&scenario.name, events, ref_sec, "reference", ref_sec);
        print_comparison(&scenario.name, events, ref_sec, "rebuilt", seq_sec);
        print_comparison(&scenario.name, events, ref_sec, "parallel8", par_sec);
        c.bench_function(&format!("sim_events/{}/reference", scenario.name), |b| {
            b.iter(|| reference::simulate_fleet(&config, &scenario, kind))
        });
        c.bench_function(&format!("sim_events/{}/rebuilt", scenario.name), |b| {
            b.iter(|| simulate_fleet(&config, &scenario, kind))
        });
        c.bench_function(&format!("sim_events/{}/parallel8", scenario.name), |b| {
            b.iter(|| simulate_fleet_parallel(&config, &scenario, kind, PARALLEL_WORKERS))
        });
    }

    // The deadline cell: EDF dispatch on the mixed-class burst fleet.
    // Culling off is byte-identical to the frozen reference rescan; the
    // culling run has no reference twin (the frozen engine predates the
    // policy), so it prints throughput against the same baseline only.
    let qos = Scenario::b2_qos();
    let edf = SchedulerKind::Deadline;
    let config = FleetConfig::uniform(model.clone(), SHARDS);
    let (ref_sec, ref_report) = timed(|| reference::simulate_fleet(&config, &qos, edf));
    let (off_sec, off_report) = timed(|| {
        simulate_fleet_deadline(
            &config,
            &qos,
            edf,
            AdmissionKind::AdmitAll,
            DeadlinePolicy::Off,
        )
    });
    let (cull_sec, cull_report) = timed(|| {
        simulate_fleet_deadline(
            &config,
            &qos,
            edf,
            AdmissionKind::AdmitAll,
            DeadlinePolicy::CullExpired,
        )
    });
    assert_eq!(ref_report.to_json_line(), off_report.to_json_line());
    assert!(cull_report.conserves_requests());
    let events = sim_events(&ref_report);
    print_comparison("b2_qos_deadline", events, ref_sec, "reference", ref_sec);
    print_comparison("b2_qos_deadline", events, ref_sec, "deadline_off", off_sec);
    print_comparison(
        "b2_qos_deadline",
        sim_events(&cull_report),
        ref_sec,
        "deadline_cull",
        cull_sec,
    );
    c.bench_function("sim_events/b2_qos_deadline/deadline_cull", |b| {
        b.iter(|| {
            simulate_fleet_deadline(
                &config,
                &qos,
                edf,
                AdmissionKind::AdmitAll,
                DeadlinePolicy::CullExpired,
            )
        })
    });

    // Metropolis, downscaled so the reference loop stays affordable in one
    // bench run; the full 1.05 M-session workload lives in the release
    // scale test (`tests/engine_scale.rs`).
    let metropolis = Scenario::metropolis().with_sessions(100_000);
    let config = FleetConfig::uniform(model.clone(), 256);
    let (ref_sec, ref_report) = timed(|| reference::simulate_fleet(&config, &metropolis, kind));
    let (seq_sec, seq_report) = timed(|| simulate_fleet(&config, &metropolis, kind));
    let (par_sec, par_report) =
        timed(|| simulate_fleet_parallel(&config, &metropolis, kind, PARALLEL_WORKERS));
    assert_eq!(ref_report.to_json_line(), seq_report.to_json_line());
    assert_eq!(ref_report.to_json_line(), par_report.to_json_line());
    let events = sim_events(&ref_report);
    print_comparison("metropolis_100k", events, ref_sec, "reference", ref_sec);
    print_comparison("metropolis_100k", events, ref_sec, "rebuilt", seq_sec);
    print_comparison("metropolis_100k", events, ref_sec, "parallel8", par_sec);
    c.bench_function("sim_events/metropolis_100k/parallel8", |b| {
        b.iter(|| simulate_fleet_parallel(&config, &metropolis, kind, PARALLEL_WORKERS))
    });

    // The windowed cell: a *coupled* metropolis — the fleet scales from
    // 192 toward 256 shards under queue pressure (those spans run
    // sequentially), then the terminal phase executes in parallel
    // windows. All three engines are byte-identical; the windowed run at
    // 8 workers must clear 2× over the sequential coupled engine (the
    // floor `perf_trajectory` pins in BENCH_serve.json).
    let policy = Autoscaler::reactive(192, 256)
        .with_cooldown_us(0)
        .with_idle_retire_us(0);
    let config = FleetConfig::uniform(model.clone(), 192);
    let none = FailurePlan::none();
    let (ref_sec, ref_report) = timed(|| {
        reference::simulate_autoscaled_qos(
            &config,
            &metropolis,
            kind,
            &policy,
            &none,
            AdmissionKind::AdmitAll,
        )
    });
    let (seq_sec, seq_report) = timed(|| {
        simulate_autoscaled_deadline(
            &config,
            &metropolis,
            kind,
            &policy,
            &none,
            AdmissionKind::AdmitAll,
            DeadlinePolicy::Off,
        )
    });
    let plan = WindowPlan::new(PARALLEL_WORKERS).with_window_us(400_000);
    let (win_sec, win_report) = timed(|| {
        simulate_windowed(
            &config,
            &metropolis,
            kind,
            &policy,
            &none,
            AdmissionKind::AdmitAll,
            DeadlinePolicy::Off,
            &plan,
        )
    });
    assert_eq!(ref_report.to_json_line(), seq_report.to_json_line());
    assert_eq!(ref_report.to_json_line(), win_report.to_json_line());
    assert!(
        seq_sec / win_sec >= 2.0,
        "windowed8 must clear 2x over the sequential coupled engine \
         (got {:.2}x)",
        seq_sec / win_sec
    );
    let events = sim_events(&ref_report);
    let cell = "metropolis_100k_autoscaled";
    print_comparison(cell, events, ref_sec, "reference", ref_sec);
    print_comparison(cell, events, ref_sec, "rebuilt", seq_sec);
    print_comparison(cell, events, ref_sec, "windowed8", win_sec);
    c.bench_function("sim_events/metropolis_100k_autoscaled/windowed8", |b| {
        b.iter(|| {
            simulate_windowed(
                &config,
                &metropolis,
                kind,
                &policy,
                &none,
                AdmissionKind::AdmitAll,
                DeadlinePolicy::Off,
                &plan,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
