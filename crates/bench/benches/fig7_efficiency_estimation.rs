//! Regenerates Fig. 7 (efficiency estimation error) and benchmarks the
//! cycle-level simulation of a full decoder configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_cyclesim::Simulator;
use fcad_nnir::Precision;

fn bench(c: &mut Criterion) {
    let samples = fcad_bench::estimation_study(false);
    println!("{}", fcad_bench::fig7(&samples));
    let result = fcad_bench::run_case(&Platform::zu9cg(), Precision::Int8, false);
    let simulator = Simulator::for_accelerator(
        &result.accelerator,
        Platform::zu9cg().budget().bandwidth_bytes_per_sec,
    );
    c.bench_function("fig7/simulate_decoder_accelerator", |b| {
        b.iter(|| simulator.simulate_accelerator(&result.accelerator, &result.dse.best_config))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
