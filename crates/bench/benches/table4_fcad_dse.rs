//! Regenerates Table IV (the five F-CAD-generated accelerators) and
//! benchmarks one full design-space exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_nnir::Precision;

fn bench(c: &mut Criterion) {
    println!("{}", fcad_bench::table4(false));
    c.bench_function("table4/explore_case4_zu9cg_8bit", |b| {
        b.iter(|| fcad_bench::run_case(&Platform::zu9cg(), Precision::Int8, false))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
