//! Benchmarks the QoS serve stack: the mixed-class `b2_qos` burst on a
//! DSE-optimized ZU17EG decoder under the weighted cross-class scheduler,
//! once per admission policy — the admit-all path must stay at the legacy
//! engine's cost (the QoS layer is free when unused), and the shedding
//! policies are timed against it.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_nnir::Precision;
use fcad_serve::{simulate, simulate_qos, AdmissionKind, Scenario, SchedulerKind};

fn bench(c: &mut Criterion) {
    // Optimize the design once; benches time only the serving simulation.
    let result = fcad_bench::run_case(&Platform::zu17eg(), Precision::Int8, false);
    let model = result.service_model();
    let scenario = Scenario::b2_qos();

    let budget = simulate_qos(
        &model,
        &scenario,
        SchedulerKind::PriorityByBranch,
        AdmissionKind::BudgetAware,
    );
    println!("{}", budget.to_json_line());

    c.bench_function(&format!("qos/{}/legacy_classless", scenario.name), |b| {
        b.iter(|| simulate(&model, &scenario, SchedulerKind::PriorityByBranch))
    });
    for &admission in AdmissionKind::all() {
        c.bench_function(
            &format!("qos/{}/{}", scenario.name, admission.name()),
            |b| {
                b.iter(|| {
                    simulate_qos(
                        &model,
                        &scenario,
                        SchedulerKind::PriorityByBranch,
                        admission,
                    )
                })
            },
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
