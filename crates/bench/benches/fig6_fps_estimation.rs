//! Regenerates Fig. 6 (FPS estimation error) and benchmarks the
//! analytical-vs-simulation comparison for one benchmark network.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad::{Customization, Fcad, ValidationReport};
use fcad_accel::Platform;
use fcad_nnir::models::alexnet;
use fcad_nnir::Precision;

fn bench(c: &mut Criterion) {
    let samples = fcad_bench::estimation_study(false);
    println!("{}", fcad_bench::fig6(&samples));
    let platform = Platform::ku115();
    let result = Fcad::new(alexnet(), platform.clone())
        .with_customization(Customization::uniform(1, Precision::Int16))
        .with_dse_params(fcad_bench::dse_params(false))
        .run()
        .expect("alexnet flow succeeds");
    c.bench_function("fig6/validate_alexnet", |b| {
        b.iter(|| {
            ValidationReport::compare(
                &result.accelerator,
                &result.dse.best_config,
                platform.budget().bandwidth_bytes_per_sec,
            )
            .expect("configs match")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
