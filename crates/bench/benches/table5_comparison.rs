//! Regenerates Table V (F-CAD vs DNNBuilder vs HybridDNN on the ZU9CG) and
//! benchmarks the head-to-head evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_baselines::DnnBuilder;
use fcad_nnir::models::mimic_decoder;
use fcad_nnir::Precision;

fn bench(c: &mut Criterion) {
    println!("{}", fcad_bench::table5(false));
    let mimic = mimic_decoder();
    c.bench_function("table5/dnnbuilder_vs_fcad_inputs", |b| {
        let baseline = DnnBuilder::new(Platform::zu9cg(), Precision::Int8);
        b.iter(|| baseline.evaluate(&mimic))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
