//! Benchmarks the multi-session serving simulator: the four-scenario suite
//! on a DSE-optimized ZU17EG decoder accelerator, plus a scheduler
//! head-to-head on the mixed-priority chaos scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_nnir::Precision;
use fcad_serve::{simulate, Scenario, SchedulerKind};

fn bench(c: &mut Criterion) {
    // Optimize the design once; benches time only the serving simulation.
    let result = fcad_bench::run_case(&Platform::zu17eg(), Precision::Int8, false);
    let model = result.service_model();
    for scenario in Scenario::suite() {
        let report = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        println!("{}", report.to_json_line());
        c.bench_function(&format!("serve/{}/batch", scenario.name), |b| {
            b.iter(|| simulate(&model, &scenario, SchedulerKind::BatchAggregating))
        });
    }
    let chaos = Scenario::b2();
    for &kind in SchedulerKind::all() {
        let name = kind.build().name();
        c.bench_function(&format!("serve/{}/{}", chaos.name, name), |b| {
            b.iter(|| simulate(&model, &chaos, kind))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
