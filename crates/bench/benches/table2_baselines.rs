//! Regenerates Table II (baseline accelerators) and benchmarks the baseline
//! evaluators.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_baselines::{DnnBuilder, HybridDnn, MobileSoc};
use fcad_nnir::models::{mimic_decoder, targeted_decoder};
use fcad_nnir::Precision;

fn bench(c: &mut Criterion) {
    println!("{}", fcad_bench::table2().1);
    let mimic = mimic_decoder();
    let real = targeted_decoder();
    c.bench_function("table2/dnnbuilder_zu9cg", |b| {
        let baseline = DnnBuilder::new(Platform::zu9cg(), Precision::Int8);
        b.iter(|| baseline.evaluate(&mimic))
    });
    c.bench_function("table2/hybriddnn_zu9cg", |b| {
        let baseline = HybridDnn::new(Platform::zu9cg());
        b.iter(|| baseline.evaluate(&mimic))
    });
    c.bench_function("table2/mobile_soc", |b| {
        let soc = MobileSoc::snapdragon865();
        b.iter(|| soc.evaluate(&real, Precision::Int8))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
