//! Benchmarks the fleet serving engine: the b2 burst scenario swept over
//! 1/2/4/8-shard fleets of a DSE-optimized ZU17EG decoder accelerator
//! (fixed load, so the sweep shows shards collapsing the tail), plus a
//! balancer head-to-head on the 4-shard fleet at 4× load.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_nnir::Precision;
use fcad_serve::{simulate_fleet, FleetConfig, LoadBalancerKind, Scenario, SchedulerKind};

fn bench(c: &mut Criterion) {
    // Optimize the design once; benches time only the fleet simulation.
    let result = fcad_bench::run_case(&Platform::zu17eg(), Precision::Int8, false);
    let model = result.service_model();
    let chaos = Scenario::b2();
    for shards in [1usize, 2, 4, 8] {
        let config = FleetConfig::uniform(model.clone(), shards)
            .with_balancer(LoadBalancerKind::LeastLoaded);
        let report = simulate_fleet(&config, &chaos, SchedulerKind::BatchAggregating);
        println!("{}", report.to_json_line());
        c.bench_function(
            &format!("fleet/{}/{}shards/least_loaded", chaos.name, shards),
            |b| b.iter(|| simulate_fleet(&config, &chaos, SchedulerKind::BatchAggregating)),
        );
    }
    let fleet_chaos = Scenario::b2_fleet(4);
    for &balancer in LoadBalancerKind::all() {
        let config = FleetConfig::uniform(model.clone(), 4).with_balancer(balancer);
        c.bench_function(
            &format!("fleet/{}/4shards/{}", fleet_chaos.name, balancer.name()),
            |b| b.iter(|| simulate_fleet(&config, &fleet_chaos, SchedulerKind::BatchAggregating)),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
