//! Regenerates the Sec. VII convergence study and benchmarks a single
//! in-branch optimization (the inner loop of the DSE).

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::{BranchPipeline, ConvStage, ResourceBudget};
use fcad_dse::InBranchOptimizer;
use fcad_nnir::models::targeted_decoder;
use fcad_nnir::Precision;
use fcad_profiler::NetworkProfile;

fn bench(c: &mut Criterion) {
    println!("{}", fcad_bench::convergence(3, false));
    let profile = NetworkProfile::of(&targeted_decoder());
    let texture = BranchPipeline::new(
        "texture",
        ConvStage::stages_of_branch(&profile.branches()[1]),
    );
    c.bench_function("dse/in_branch_optimize_texture", |b| {
        let optimizer = InBranchOptimizer::new(&texture, Precision::Int8, 200e6);
        let budget = ResourceBudget::new(1600, 1000, 8.0);
        b.iter(|| optimizer.optimize(&budget, 2))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
