//! Regenerates Fig. 3 (DNNBuilder per-layer latencies across schemes) and
//! benchmarks the per-layer latency extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_baselines::DnnBuilder;
use fcad_nnir::models::mimic_decoder;
use fcad_nnir::Precision;

fn bench(c: &mut Criterion) {
    println!("{}", fcad_bench::fig3().1);
    let mimic = mimic_decoder();
    c.bench_function("fig3/branch_tail_latencies", |b| {
        let builder = DnnBuilder::new(Platform::zu9cg(), Precision::Int8);
        b.iter(|| builder.branch_tail_latencies(&mimic, "texture", 5))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
