//! Benchmarks the dynamic-fleet engine: the stretched `b2_failover` burst
//! on a six-shard least-loaded fleet of a DSE-optimized ZU17EG decoder —
//! fixed healthy, fixed with a triple mid-burst kill, and reactive
//! autoscaling healing the same kill — plus the no-op-policy path, whose
//! cost must stay at the fixed-fleet baseline (the lifecycle layer is free
//! when unused).

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_accel::Platform;
use fcad_nnir::Precision;
use fcad_serve::{
    simulate_autoscaled, simulate_fleet, Autoscaler, FailurePlan, FleetConfig, LoadBalancerKind,
    Scenario, SchedulerKind,
};

fn bench(c: &mut Criterion) {
    // Optimize the design once; benches time only the serving simulation.
    let result = fcad_bench::run_case(&Platform::zu17eg(), Precision::Int8, false);
    let model = result.service_model();
    let scenario = Scenario::b2_failover(1);
    let config = FleetConfig::uniform(model, 6).with_balancer(LoadBalancerKind::LeastLoaded);
    let kills = FailurePlan::scheduled(&[(1_100_000, 1), (1_150_000, 2), (1_200_000, 3)]);
    let policy = Autoscaler::reactive(6, 8)
        .with_scale_up_queue_depth(4)
        .with_warmup_us(25_000)
        .with_cooldown_us(80_000)
        .with_idle_retire_us(0);

    let healed = simulate_autoscaled(
        &config,
        &scenario,
        SchedulerKind::BatchAggregating,
        &policy,
        &kills,
    );
    println!("{}", healed.to_json_line());

    c.bench_function(&format!("autoscale/{}/fixed", scenario.name), |b| {
        b.iter(|| simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating))
    });
    c.bench_function(&format!("autoscale/{}/noop_policy", scenario.name), |b| {
        b.iter(|| {
            simulate_autoscaled(
                &config,
                &scenario,
                SchedulerKind::BatchAggregating,
                &Autoscaler::none(),
                &FailurePlan::none(),
            )
        })
    });
    c.bench_function(
        &format!("autoscale/{}/triple_kill_static", scenario.name),
        |b| {
            b.iter(|| {
                simulate_autoscaled(
                    &config,
                    &scenario,
                    SchedulerKind::BatchAggregating,
                    &Autoscaler::none(),
                    &kills,
                )
            })
        },
    );
    c.bench_function(
        &format!("autoscale/{}/triple_kill_reactive", scenario.name),
        |b| {
            b.iter(|| {
                simulate_autoscaled(
                    &config,
                    &scenario,
                    SchedulerKind::BatchAggregating,
                    &policy,
                    &kills,
                )
            })
        },
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
