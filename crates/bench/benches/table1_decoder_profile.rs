//! Regenerates Table I (decoder profile) and benchmarks the profiling pass.

use criterion::{criterion_group, criterion_main, Criterion};
use fcad_nnir::models::targeted_decoder;
use fcad_profiler::NetworkProfile;

fn bench(c: &mut Criterion) {
    println!("{}", fcad_bench::table1());
    c.bench_function("table1/profile_decoder", |b| {
        let net = targeted_decoder();
        b.iter(|| NetworkProfile::of(&net))
    });
    c.bench_function("table1/build_decoder_ir", |b| b.iter(targeted_decoder));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
