//! Multi-session telepresence serving simulator for F-CAD accelerators.
//!
//! The paper's evaluation (Table V) scales one DSE-optimized decoder
//! accelerator to 1, 3 and 5 concurrent avatars — but a static FPS number
//! says little about what users experience when many sessions contend for
//! the device. This crate closes that gap with a deterministic
//! discrete-event simulation of avatar-decode traffic:
//!
//! - **Sessions & arrivals** ([`Scenario`], [`ArrivalPattern`]): N avatar
//!   sessions emit one request per branch per frame, under steady, Poisson,
//!   bursty or diurnal-ramp arrival processes, all reproducible from a
//!   fixed seed.
//! - **Scheduling** ([`Scheduler`], [`SchedulerKind`]): pluggable
//!   disciplines — FIFO, priority-by-branch (visual branches outrank the
//!   audio-like stream, with aging to bound starvation), and
//!   batch-aggregation up to the DSE-chosen batch size.
//! - **Service model** ([`ServiceModel`]): per-branch frame times taken
//!   from the analytical [`fcad_accel::AcceleratorReport`] or, in the
//!   calibrated mode, from the cycle-level simulator
//!   ([`fcad_cyclesim::AcceleratorSim`]).
//! - **Fleet serving** ([`FleetConfig`], [`LoadBalancerKind`]): scale from
//!   one time-multiplexed accelerator to a sharded fleet (optionally
//!   heterogeneous), with round-robin, least-loaded-by-readiness,
//!   session-affinity-with-spill and per-branch-sharded placement. The
//!   single-device [`simulate`] path is the one-shard special case of
//!   [`simulate_fleet`], bit for bit.
//! - **Availability** ([`Autoscaler`], [`FailurePlan`]): a dynamic-fleet
//!   layer over the same loop — shards move through
//!   warming/active/draining/retired/failed lifecycle states
//!   ([`ShardState`]), the autoscaler spawns on queue or tail pressure
//!   (paying a warm-up weight fill) and drains idle shards, and the
//!   failure injector kills shards mid-run, re-placing their orphaned
//!   queues through the live balancer. [`simulate_fleet`] is
//!   [`simulate_autoscaled`] under the no-op policy, bit for bit.
//! - **QoS & admission** ([`QosClass`], [`AdmissionController`]): every
//!   session draws a QoS class (latency budget + scheduling weight) from
//!   the scenario's seeded [`ClassMix`]; the weighted priority scheduler
//!   orders work by `class weight × branch priority`, and an admission
//!   controller (admit-all, queue-depth thresholds, budget-aware early
//!   rejection) sheds low tiers *before* queues saturate — `shed` is a
//!   fourth terminal outcome with conservation `completed + dropped +
//!   lost + shed == issued`. The classless path is the
//!   everyone-is-`Standard` + admit-all special case, bit for bit.
//! - **Deadlines** ([`SchedulerKind::Deadline`], [`DeadlinePolicy`]): an
//!   earliest-deadline-first discipline serves the queue head with the
//!   least remaining slack within class bands, and an opt-in expiry
//!   policy ([`simulate_deadline`] and friends) retires requests whose
//!   budget ran out while queued as a fifth terminal outcome `expired` —
//!   `completed + dropped + lost + shed + expired == issued`. With
//!   [`DeadlinePolicy::Off`] every legacy entry point stays
//!   byte-identical.
//! - **Scale** ([`calendar::Calendar`], [`simulate_fleet_parallel`]): the
//!   loop is driven by an indexed event calendar (a binary min-heap with a
//!   total, deterministic key order) instead of per-iteration linear
//!   scans, and static fleets under load-oblivious balancers decompose
//!   across worker threads with an exact-merge reduction — both
//!   byte-identical to the frozen pre-rebuild engine
//!   ([`reference`]), pinned by a differential equivalence battery. The
//!   [`Scenario::metropolis`] workload (1.05 M sessions) exercises the
//!   path at fleet scale.
//! - **Reporting** ([`ServeReport`]): throughput, utilization, drop rate
//!   and p50/p95/p99 latency from a fixed-bucket histogram
//!   ([`LatencyHistogram`]), plus per-shard utilization/imbalance
//!   ([`ShardStats`]), availability (completed/issued with re-placed and
//!   lost counts, pre/post-failure tails, the [`ScaleEvent`] lifecycle
//!   log), per-class latency/shed statistics with `slo_attainment` (the
//!   fraction of completions inside their class budget,
//!   [`ClassServeStats`]) and a merged fleet-wide latency histogram,
//!   rendered as a single machine-readable JSON line.
//! - **Observability** ([`TraceSink`], [`simulate_traced`]): the same
//!   loop narrates itself through a pluggable, sim-time-stamped trace
//!   sink — per-request lifecycle events (arrival through terminal
//!   outcome), batch dispatches and fleet lifecycle instants. The
//!   default [`Off`] sink records nothing and changes nothing; a
//!   [`Recorder`] feeds the exporters re-exported from `fcad-obs`:
//!   Chrome `trace_event` JSON ([`chrome_trace`]), fixed-interval
//!   time-series metrics ([`Windowed`]) and a worst-latency flight
//!   recorder ([`FlightRecorder`]). Tracing is observation-only:
//!   traced and untraced runs of the same scenario produce
//!   byte-identical reports.
//!
//! # Example
//!
//! ```
//! use fcad_serve::{simulate, BranchService, Scenario, SchedulerKind, ServiceModel};
//!
//! let model = ServiceModel {
//!     branches: vec![BranchService {
//!         name: "texture".to_owned(),
//!         frame_time_us: 4_000,
//!         fill_time_us: 1_000,
//!         max_batch: 2,
//!         priority: 1.0,
//!     }],
//! };
//! let report = simulate(&model, &Scenario::a1(), SchedulerKind::BatchAggregating);
//! assert!(report.conserves_requests());
//! assert!(report.latency.p99_ms >= report.latency.p50_ms);
//! println!("{}", report.to_json_line());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod autoscale;
pub mod calendar;
mod cast;
mod deadline;
mod engine;
mod fleet;
mod histogram;
pub mod json;
mod model;
mod parallel;
mod qos;
pub mod reference;
mod report;
mod request;
mod scenario;
mod scheduler;
mod window;

pub use admission::{
    AdmissionController, AdmissionKind, AdmissionView, AdmitAll, BudgetAwareAdmission,
    QueueThresholdAdmission,
};
pub use autoscale::{Autoscaler, FailurePlan, ScaleEvent, ScaleEventKind, ShardState};
pub use deadline::DeadlinePolicy;
pub use engine::{
    simulate, simulate_autoscaled, simulate_autoscaled_deadline, simulate_autoscaled_qos,
    simulate_deadline, simulate_fleet, simulate_fleet_deadline, simulate_fleet_qos,
    simulate_fleet_with, simulate_qos, simulate_traced, simulate_with,
};
pub use fleet::{FleetConfig, LoadBalancerKind};
pub use histogram::LatencyHistogram;
pub use model::{BranchService, ServiceModel};
pub use parallel::{
    simulate_fleet_deadline_parallel, simulate_fleet_parallel, simulate_fleet_qos_parallel,
    simulate_fleet_traced_parallel,
};
pub use qos::{ClassMix, QosClass, CLASS_COUNT};
pub use report::{BranchServeStats, ClassServeStats, LatencySummary, ServeReport, ShardStats};
pub use request::Request;
pub use scenario::{ArrivalPattern, Scenario};
pub use scheduler::{
    BatchScheduler, DeadlineScheduler, FifoScheduler, PriorityScheduler, Scheduler, SchedulerKind,
};
pub use window::{simulate_windowed, simulate_windowed_traced, WindowPlan};

// Observability surface, re-exported from `fcad-obs` so traced serving
// needs only this crate: the sink trait and its implementations, the
// event taxonomy, and the exporters (Chrome trace, windowed metrics,
// flight recorder).
pub use fcad_obs::{
    chrome_trace, validate_json, BatchEvent, FleetEvent, FleetEventKind, FlightRecorder,
    MetricsSeries, MetricsWindow, Off, Recorder, RequestEvent, RequestEventKind, RequestTimeline,
    TraceEvent, TraceSink, TraceSummary, Windowed,
};
