//! Admission control: decide at enqueue time whether a request enters the
//! chosen shard's queue at all.
//!
//! The bounded front-end queue already sheds load, but it sheds *whoever
//! arrives last* — under a burst that is as likely to be a paying
//! interactive session as a background prefetch. An
//! [`AdmissionController`] moves that decision ahead of the queue: the
//! engine consults it once per arrival (after the balancer picks the
//! shard, before the capacity check), and a rejected request is counted
//! **shed** — a fourth terminal outcome next to completed, dropped and
//! lost, with conservation `completed + dropped + lost + shed == issued`.
//!
//! Three built-in policies:
//!
//! - [`AdmitAll`] — never sheds; the bit-identical legacy special case
//!   ([`crate::simulate_fleet`] is [`crate::simulate_fleet_qos`] under
//!   this policy).
//! - [`QueueThresholdAdmission`] — sheds lower tiers *before* the queue
//!   saturates: each class has an occupancy fraction above which it is
//!   turned away, so a filling queue stays reserved for the classes that
//!   can still use it.
//! - [`BudgetAwareAdmission`] — early rejection on the SLO itself: a
//!   request is shed when its projected completion (fabric busy time +
//!   the backlog of same-or-higher-weight work + its own service) already
//!   exceeds its class budget — serving it would burn fabric time on a
//!   frame that misses its deadline anyway.

use crate::cast::usize_to_f64;
use crate::qos::{QosClass, CLASS_COUNT};
use crate::request::Request;

/// The shard-local state an admission decision may inspect: the chosen
/// shard's queue occupancy, fabric readiness and per-class backlog, plus
/// the single-request service estimate of the arriving request's branch.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionView {
    /// Requests currently queued on the chosen shard.
    pub queued: usize,
    /// The scenario's front-end queue capacity.
    pub capacity: usize,
    /// Instant the shard's fabric frees (its last dispatch completion).
    pub free_at_us: u64,
    /// Estimated queued service time per class, µs, indexed by
    /// [`QosClass::index`] (each request counted at its unbatched
    /// single-request cost).
    pub class_backlog_us: [u64; CLASS_COUNT],
    /// Single-request service estimate for the arriving request's branch,
    /// µs (fill + one frame).
    pub service_us: u64,
    /// Branch priority of the arriving request's branch (the weighted
    /// scheduler scores it at `class weight × this`).
    pub priority: f64,
    /// Highest branch priority the shard's model exposes — the
    /// worst-case multiplier of any queued request's class weight.
    pub max_priority: f64,
}

impl AdmissionView {
    /// Projected wait before the arriving request's own dispatch, µs:
    /// remaining fabric busy time plus the backlog the weighted scheduler
    /// could serve ahead of it. A class's backlog counts when its weight
    /// times the *highest* branch priority reaches the arriving request's
    /// own `class weight × branch priority` score — the scheduler
    /// dispatches by that product, so a lower-weight class can still
    /// outrank a high-weight request on a low-priority branch. Using the
    /// model's maximum priority keeps the projection conservative (an
    /// over-estimate) without tracking per-branch backlog.
    pub fn projected_wait_us(&self, class: QosClass, now_us: u64) -> u64 {
        let own_score = class.weight() * self.priority;
        let ahead: u64 = QosClass::all()
            .iter()
            .filter(|c| c.weight() * self.max_priority >= own_score)
            .map(|c| self.class_backlog_us[c.index()])
            .sum();
        self.free_at_us.saturating_sub(now_us) + ahead
    }
}

/// An admission policy: accept the request onto the shard's queue, or
/// shed it at the front door.
pub trait AdmissionController {
    /// Policy name (used in reports).
    fn name(&self) -> &'static str;

    /// Whether `request`, arriving at `now_us` and routed to the shard
    /// described by `view`, may enter the queue. `false` sheds it.
    fn admit(&mut self, request: &Request, view: &AdmissionView, now_us: u64) -> bool;
}

/// The built-in admission policies, as a value users can pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Never shed (the legacy classless behaviour).
    AdmitAll,
    /// Queue-depth thresholds per class: lower tiers are turned away at
    /// lower occupancy, keeping headroom for the classes above them.
    QueueThreshold,
    /// Budget-aware early rejection: shed when the projected completion
    /// already misses the class budget.
    BudgetAware,
}

impl AdmissionKind {
    /// All built-in admission policies.
    pub fn all() -> &'static [AdmissionKind] {
        &[
            AdmissionKind::AdmitAll,
            AdmissionKind::QueueThreshold,
            AdmissionKind::BudgetAware,
        ]
    }

    /// Policy name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionKind::AdmitAll => "admit_all",
            AdmissionKind::QueueThreshold => "queue_threshold",
            AdmissionKind::BudgetAware => "budget_aware",
        }
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn AdmissionController> {
        match self {
            AdmissionKind::AdmitAll => Box::new(AdmitAll),
            AdmissionKind::QueueThreshold => Box::new(QueueThresholdAdmission::new()),
            AdmissionKind::BudgetAware => Box::new(BudgetAwareAdmission),
        }
    }
}

/// Consults `controller` and mirrors its verdict onto the trace: an
/// `Admit` or `Shed` event stamped with the chosen shard. `Shed` doubles
/// as the request's terminal event — a shed request never enters a queue,
/// so nothing else can happen to it.
pub(crate) fn admit_traced(
    controller: &mut dyn AdmissionController,
    request: &Request,
    view: &AdmissionView,
    now_us: u64,
    shard: usize,
    sink: &mut dyn fcad_obs::TraceSink,
    tracing: bool,
) -> bool {
    let admitted = controller.admit(request, view, now_us);
    if tracing {
        let kind = if admitted {
            fcad_obs::RequestEventKind::Admit
        } else {
            fcad_obs::RequestEventKind::Shed
        };
        sink.record(request.trace(now_us, Some(shard), kind));
    }
    admitted
}

/// Admit everything; the bounded queue alone sheds load (by dropping
/// whoever arrives at a full queue). The legacy engine, bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionController for AdmitAll {
    fn name(&self) -> &'static str {
        "admit_all"
    }

    fn admit(&mut self, _request: &Request, _view: &AdmissionView, _now_us: u64) -> bool {
        true
    }
}

/// Sheds class `c` once the chosen shard's queue occupancy reaches
/// `fraction(c) × capacity`: best-effort traffic is turned away at half a
/// queue, standard at three quarters, interactive only at a full queue —
/// so the remaining space is progressively reserved for the higher
/// tiers instead of being consumed first-come-first-served.
#[derive(Debug, Clone, Copy)]
pub struct QueueThresholdAdmission {
    /// Occupancy fraction at which each class is shed, indexed by
    /// [`QosClass::index`]; 1.0 means "only at a full queue".
    fractions: [f64; CLASS_COUNT],
}

impl QueueThresholdAdmission {
    /// The default thresholds: interactive 1.0, standard 0.75,
    /// best-effort 0.5.
    pub fn new() -> Self {
        Self {
            fractions: [1.0, 0.75, 0.5],
        }
    }

    /// Replaces one class's occupancy threshold (clamped to [0, 1]).
    pub fn with_fraction(mut self, class: QosClass, fraction: f64) -> Self {
        self.fractions[class.index()] = fraction.clamp(0.0, 1.0);
        self
    }
}

impl Default for QueueThresholdAdmission {
    fn default() -> Self {
        Self::new()
    }
}

impl AdmissionController for QueueThresholdAdmission {
    fn name(&self) -> &'static str {
        "queue_threshold"
    }

    fn admit(&mut self, request: &Request, view: &AdmissionView, _now_us: u64) -> bool {
        let threshold = self.fractions[request.class.index()] * usize_to_f64(view.capacity);
        usize_to_f64(view.queued) < threshold
    }
}

/// Sheds a request whose projected completion — fabric busy time, plus
/// the backlog of same-or-higher-weight work, plus its own service —
/// already exceeds its class budget. Serving such a request would spend
/// fabric time on a frame that misses its deadline anyway; rejecting it
/// early keeps the queue full of work that can still meet its SLO.
///
/// The projection over-estimates the wait of the class nothing outranks
/// (it counts whole-class backlogs at the model's worst-case branch
/// priority, and nothing arriving later can jump ahead of that class),
/// so admitted interactive requests overwhelmingly complete inside
/// their budget — the mechanism behind the example's ≥ 95 % attainment
/// claim. For the middle tiers the projection is a snapshot: interactive
/// work arriving *after* admission still jumps the queue, so their
/// attainment improves but is not guaranteed.
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetAwareAdmission;

impl AdmissionController for BudgetAwareAdmission {
    fn name(&self) -> &'static str {
        "budget_aware"
    }

    fn admit(&mut self, request: &Request, view: &AdmissionView, now_us: u64) -> bool {
        let projected = view.projected_wait_us(request.class, now_us) + view.service_us;
        projected <= request.class.budget_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(class: QosClass) -> Request {
        Request {
            id: 0,
            session: 0,
            branch: 0,
            issued_at_us: 0,
            class,
        }
    }

    fn view(queued: usize, capacity: usize) -> AdmissionView {
        AdmissionView {
            queued,
            capacity,
            free_at_us: 0,
            class_backlog_us: [0; CLASS_COUNT],
            service_us: 5_000,
            priority: 1.0,
            max_priority: 1.0,
        }
    }

    #[test]
    fn kinds_build_their_policies() {
        let names: Vec<&str> = AdmissionKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["admit_all", "queue_threshold", "budget_aware"]);
        for kind in AdmissionKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn admit_all_never_sheds() {
        let mut policy = AdmitAll;
        for class in QosClass::all() {
            assert!(policy.admit(&request(*class), &view(1_000, 4), 0));
        }
    }

    #[test]
    fn queue_thresholds_shed_lower_tiers_first() {
        let mut policy = QueueThresholdAdmission::new();
        let half_full = view(50, 100);
        assert!(policy.admit(&request(QosClass::Interactive), &half_full, 0));
        assert!(policy.admit(&request(QosClass::Standard), &half_full, 0));
        assert!(!policy.admit(&request(QosClass::BestEffort), &half_full, 0));
        let nearly_full = view(80, 100);
        assert!(policy.admit(&request(QosClass::Interactive), &nearly_full, 0));
        assert!(!policy.admit(&request(QosClass::Standard), &nearly_full, 0));
        let full = view(100, 100);
        assert!(!policy.admit(&request(QosClass::Interactive), &full, 0));
    }

    #[test]
    fn queue_threshold_fractions_are_tunable() {
        let mut strict = QueueThresholdAdmission::new().with_fraction(QosClass::Interactive, 0.1);
        assert!(!strict.admit(&request(QosClass::Interactive), &view(10, 100), 0));
        assert!(strict.admit(&request(QosClass::Interactive), &view(9, 100), 0));
        // Clamp: out-of-range fractions behave like their nearest bound.
        let mut never = QueueThresholdAdmission::new().with_fraction(QosClass::Standard, -3.0);
        assert!(!never.admit(&request(QosClass::Standard), &view(0, 100), 0));
    }

    #[test]
    fn budget_aware_projects_same_or_higher_weight_backlog() {
        let mut policy = BudgetAwareAdmission;
        let mut v = view(10, 100);
        // 30 ms interactive + 200 ms standard + 5 s best-effort backlog.
        v.class_backlog_us = [30_000, 200_000, 5_000_000];
        v.free_at_us = 10_000;
        // Interactive (100 ms budget): 10 ms busy + 30 ms own-class
        // backlog + 5 ms service = 45 ms — admitted; the best-effort
        // mountain behind it does not count.
        assert!(policy.admit(&request(QosClass::Interactive), &v, 0));
        // Standard (400 ms): 10 + 30 + 200 + 5 = 245 ms — admitted.
        assert!(policy.admit(&request(QosClass::Standard), &v, 0));
        // Best-effort (2 s): its own 5 s backlog blows the budget.
        assert!(!policy.admit(&request(QosClass::BestEffort), &v, 0));
        // Once the interactive backlog alone exceeds 100 ms, interactive
        // arrivals are shed too.
        v.class_backlog_us[0] = 120_000;
        assert!(!policy.admit(&request(QosClass::Interactive), &v, 0));
    }

    #[test]
    fn low_priority_branches_count_cross_class_backlog() {
        // Regression: the scheduler dispatches by `class weight × branch
        // priority`, so an interactive request on a 0.2-priority audio
        // branch (score 0.8) waits behind standard geometry work (score
        // up to 1.0) — the projection must count that backlog even
        // though standard's bare class weight is lower.
        let mut policy = BudgetAwareAdmission;
        let mut v = view(10, 100);
        v.class_backlog_us = [0, 300_000, 0]; // 300 ms of standard work
        v.priority = 0.2;
        v.max_priority = 1.0;
        let audio = request(QosClass::Interactive);
        assert!(
            !policy.admit(&audio, &v, 0),
            "interactive-audio must see the standard backlog it cannot outrank"
        );
        // The same request on a priority-1.0 branch outranks everything
        // standard can offer, so only interactive backlog counts.
        v.priority = 1.0;
        assert!(policy.admit(&request(QosClass::Interactive), &v, 0));
    }

    #[test]
    fn projected_wait_respects_elapsed_busy_time() {
        let mut v = view(0, 100);
        v.free_at_us = 50_000;
        v.class_backlog_us = [10_000, 20_000, 40_000];
        // At t = 30 ms, 20 ms of fabric time remains; Standard waits
        // behind interactive + standard backlog.
        assert_eq!(v.projected_wait_us(QosClass::Standard, 30_000), 50_000);
        // Past the free instant only the backlog remains.
        assert_eq!(v.projected_wait_us(QosClass::Interactive, 80_000), 10_000);
        assert_eq!(v.projected_wait_us(QosClass::BestEffort, 80_000), 70_000);
    }
}
