//! Pluggable scheduling disciplines for the shared accelerator.
//!
//! The engine owns admission (queue capacity and drops); schedulers own
//! ordering and batching. All queued requests have already arrived, so a
//! scheduler may inspect the whole queue when picking the next dispatch.

use crate::cast::u64_to_f64;
use crate::model::ServiceModel;
use crate::qos::CLASS_COUNT;
use crate::request::Request;
use std::collections::VecDeque;

/// A scheduling discipline: accepts admitted requests and, whenever the
/// shared weight-streaming DMA is free, picks the next same-branch batch
/// to dispatch.
pub trait Scheduler {
    /// Discipline name (used in reports).
    fn name(&self) -> &'static str;

    /// Accepts an admitted request. `now_us` is the admission time.
    fn enqueue(&mut self, request: Request, now_us: u64);

    /// Number of queued requests.
    fn queued(&self) -> usize;

    /// Removes and returns the next batch to dispatch. All returned
    /// requests target the same branch; the batch is non-empty whenever
    /// `queued() > 0`. `branch_free_us[b]` is a readiness hint: the
    /// earliest instant branch `b` can start (missing entries mean "ready
    /// now"). The time-multiplexed engine passes an empty slice — every
    /// branch is dispatchable the moment the fabric frees — but a future
    /// spatial/sharded engine can use it to steer disciplines away from
    /// busy pipelines.
    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request>;
}

/// Forwarding impl so a borrowed scheduler can stand in wherever an owned
/// one is expected (the fleet engine takes boxed per-shard schedulers;
/// `simulate_with` and `simulate_fleet_with` box their callers' borrowed
/// schedulers through this). The reference and trait-object lifetimes are
/// independent so a short reborrow of a long-lived scheduler still
/// forwards.
impl<'r, 'o> Scheduler for &'r mut (dyn Scheduler + 'o) {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn enqueue(&mut self, request: Request, now_us: u64) {
        (**self).enqueue(request, now_us);
    }

    fn queued(&self) -> usize {
        (**self).queued()
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        (**self).next_batch(model, now_us, branch_free_us)
    }
}

/// The built-in disciplines, as a value users can pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Strict arrival order, one request per dispatch.
    Fifo,
    /// Weighted cross-class priority: highest `class weight × branch
    /// priority` first (visual branches outrank audio, interactive
    /// sessions outrank best-effort), with waiting-time aging so neither
    /// low-priority branches nor low classes can starve.
    PriorityByBranch,
    /// Aggregates same-branch requests into batches up to the DSE-chosen
    /// batch size, amortizing pipeline fill.
    BatchAggregating,
}

impl SchedulerKind {
    /// All built-in disciplines. Returns a slice so adding a discipline
    /// does not ripple a fixed array length through every call site.
    pub fn all() -> &'static [SchedulerKind] {
        &[
            SchedulerKind::Fifo,
            SchedulerKind::PriorityByBranch,
            SchedulerKind::BatchAggregating,
        ]
    }

    /// Instantiates the discipline.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
            SchedulerKind::PriorityByBranch => Box::new(PriorityScheduler::new()),
            SchedulerKind::BatchAggregating => Box::new(BatchScheduler::new()),
        }
    }
}

/// Strict FIFO: one global queue, one request per dispatch (every dispatch
/// pays the full pipeline-fill overhead).
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Request>,
}

impl FifoScheduler {
    /// Creates an empty FIFO queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        self.queue.push_back(request);
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn next_batch(
        &mut self,
        _model: &ServiceModel,
        _now_us: u64,
        _branch_free_us: &[u64],
    ) -> Vec<Request> {
        self.queue.pop_front().into_iter().collect()
    }
}

/// Weighted cross-class priority: serves the `(branch, class)` queue whose
/// head request has the highest `class weight × branch priority +
/// aging_per_sec · wait` score, FIFO within a queue, one request per
/// dispatch.
///
/// The class weight multiplies the branch priority, so an interactive
/// session's audio branch still yields to anyone's visual branch only as
/// far as the weights say — and a run where every request is `Standard`
/// (weight exactly 1.0) scores identically to the classless
/// priority-by-branch discipline, which keeps the legacy path
/// bit-identical.
///
/// The aging term bounds starvation: a low-scoring head's score grows
/// linearly with its waiting time until it overtakes the high-weight
/// queues. With `aging_per_sec = 0` the discipline degenerates to strict
/// weighted priorities.
#[derive(Debug)]
pub struct PriorityScheduler {
    /// One FIFO per `(branch, class)`, branch-major.
    queues: Vec<[VecDeque<Request>; CLASS_COUNT]>,
    queued: usize,
    aging_per_sec: f64,
}

impl Default for PriorityScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl PriorityScheduler {
    /// Creates the discipline with the default aging rate of 0.25/s: a
    /// low-priority request overtakes a fresh priority-1.0 request after
    /// waiting `(1.0 - its priority) / 0.25` seconds (≈ 3.4 s for the 0.15
    /// audio-like branch), so priorities dominate at frame timescales while
    /// starvation stays bounded.
    pub fn new() -> Self {
        Self {
            queues: Vec::new(),
            queued: 0,
            aging_per_sec: 0.25,
        }
    }

    /// Replaces the aging rate (score points gained per second of waiting).
    pub fn with_aging_per_sec(mut self, aging_per_sec: f64) -> Self {
        self.aging_per_sec = aging_per_sec;
        self
    }

    fn score(&self, branch: usize, head: &Request, model: &ServiceModel, now_us: u64) -> f64 {
        let wait_sec = u64_to_f64(head.latency_us(now_us)) / 1e6;
        head.class.weight() * model.priority(branch) + self.aging_per_sec * wait_sec
    }

    /// The best-scoring `(branch, class)` queue of one branch, if any head
    /// is queued. Strictly-greater keeps ties on the class order, which
    /// keeps dispatch deterministic.
    fn best_class(&self, branch: usize, model: &ServiceModel, now_us: u64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (class, queue) in self.queues[branch].iter().enumerate() {
            if let Some(head) = queue.front() {
                let score = self.score(branch, head, model, now_us);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((class, score));
                }
            }
        }
        best
    }
}

impl Scheduler for PriorityScheduler {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues
                .resize_with(request.branch + 1, Default::default);
        }
        self.queues[request.branch][request.class.index()].push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        // Prefer branches whose pipeline is ready: committing the DMA to a
        // busy pipeline would block every other branch for no gain. Only
        // when every candidate is busy pick the one that frees soonest.
        let mut best_ready: Option<(usize, usize, f64)> = None;
        let mut best_busy: Option<(usize, u64)> = None;
        for branch in 0..self.queues.len() {
            let Some((class, score)) = self.best_class(branch, model, now_us) else {
                continue;
            };
            let free_at = branch_free_us.get(branch).copied().unwrap_or(0);
            if free_at <= now_us {
                // Strictly-greater keeps ties on the lowest branch index
                // (then the class order), which keeps dispatch order
                // deterministic.
                if best_ready.is_none_or(|(_, _, s)| score > s) {
                    best_ready = Some((branch, class, score));
                }
            } else if best_busy.is_none_or(|(_, f)| free_at < f) {
                best_busy = Some((branch, free_at));
            }
        }
        let pick = best_ready.map(|(b, c, _)| (b, c)).or_else(|| {
            best_busy.and_then(|(branch, _)| {
                self.best_class(branch, model, now_us)
                    .map(|(class, _)| (branch, class))
            })
        });
        match pick {
            Some((branch, class)) => {
                self.queued -= 1;
                self.queues[branch][class].pop_front().into_iter().collect()
            }
            None => Vec::new(),
        }
    }
}

/// Batch-aggregating: serves the branch whose head has waited longest
/// (FIFO across branches at batch granularity) and dispatches up to the
/// DSE-chosen batch size of that branch in one go, paying pipeline fill
/// once per batch.
#[derive(Debug, Default)]
pub struct BatchScheduler {
    queues: Vec<VecDeque<Request>>,
    queued: usize,
}

impl BatchScheduler {
    /// Creates the discipline with empty per-branch queues.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BatchScheduler {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues.resize_with(request.branch + 1, VecDeque::new);
        }
        self.queues[request.branch].push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        // Oldest head first among ready pipelines (FIFO across branches at
        // batch granularity); fall back to the soonest-free branch when
        // every pipeline is busy.
        let candidate = |ready: bool| {
            self.queues
                .iter()
                .enumerate()
                .filter(|(branch, _)| {
                    (branch_free_us.get(*branch).copied().unwrap_or(0) <= now_us) == ready
                })
                .filter_map(|(branch, queue)| queue.front().map(|head| (head.issued_at_us, branch)))
                .min()
        };
        let oldest = candidate(true).or_else(|| candidate(false));
        match oldest {
            Some((_, branch)) => {
                let take = model.max_batch(branch).min(self.queues[branch].len());
                let batch: Vec<Request> = self.queues[branch].drain(..take).collect();
                self.queued -= batch.len();
                batch
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model;
    use crate::qos::QosClass;

    fn request(id: u64, branch: usize, issued_at_us: u64) -> Request {
        Request {
            id,
            session: 0,
            branch,
            issued_at_us,
            class: QosClass::Standard,
        }
    }

    fn classed(id: u64, branch: usize, class: QosClass, issued_at_us: u64) -> Request {
        Request {
            class,
            ..request(id, branch, issued_at_us)
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let model = test_model();
        let mut fifo = FifoScheduler::new();
        for (id, branch) in [(0, 2), (1, 0), (2, 1)] {
            fifo.enqueue(request(id, branch, id * 10), id * 10);
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| fifo.next_batch(&model, 100, &[0; 3]).first().map(|r| r.id))
                .take(3)
                .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(fifo.queued(), 0);
    }

    #[test]
    fn priority_serves_visual_branches_before_audio() {
        let model = test_model(); // branch 2 has priority 0.2
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        sched.enqueue(request(0, 2, 0), 0);
        sched.enqueue(request(1, 0, 0), 0);
        sched.enqueue(request(2, 1, 0), 0);
        let first = sched.next_batch(&model, 0, &[0; 3])[0];
        let second = sched.next_batch(&model, 0, &[0; 3])[0];
        let third = sched.next_batch(&model, 0, &[0; 3])[0];
        assert_eq!(first.branch, 0); // priority 1.0, lowest index wins the tie
        assert_eq!(second.branch, 1);
        assert_eq!(third.branch, 2);
    }

    #[test]
    fn aging_lets_a_starving_branch_overtake() {
        let model = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(2.0);
        // Audio request waiting 600 ms: score 0.2 + 2.0·0.6 = 1.4 beats a
        // fresh visual request's 1.0.
        sched.enqueue(request(0, 2, 0), 0);
        sched.enqueue(request(1, 0, 600_000), 600_000);
        let first = sched.next_batch(&model, 600_000, &[0; 3])[0];
        assert_eq!(first.branch, 2, "aged audio request must be served first");
    }

    #[test]
    fn class_weight_multiplies_the_branch_priority() {
        let model = test_model(); // branches 0/1 priority 1.0, branch 2: 0.2
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        // Interactive audio (4.0 × 0.2 = 0.8) still yields to standard
        // geometry (1.0 × 1.0), but best-effort geometry (0.25) yields to
        // both.
        sched.enqueue(classed(0, 0, QosClass::BestEffort, 0), 0);
        sched.enqueue(classed(1, 2, QosClass::Interactive, 0), 0);
        sched.enqueue(classed(2, 0, QosClass::Standard, 0), 0);
        let order: Vec<u64> = (0..3)
            .map(|_| sched.next_batch(&model, 0, &[0; 3])[0].id)
            .collect();
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn same_branch_fifo_holds_within_a_class_and_weight_across_classes() {
        let model = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        sched.enqueue(classed(0, 1, QosClass::Standard, 0), 0);
        sched.enqueue(classed(1, 1, QosClass::Interactive, 10), 10);
        sched.enqueue(classed(2, 1, QosClass::Interactive, 20), 20);
        let order: Vec<u64> = (0..3)
            .map(|_| sched.next_batch(&model, 30, &[0; 3])[0].id)
            .collect();
        // Interactive jumps the standard head; within interactive, FIFO.
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn aging_lets_a_low_class_overtake_eventually() {
        let model = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(2.0);
        // Best-effort geometry waiting 2 s: 0.25 + 2.0·2.0 = 4.25 beats a
        // fresh interactive request's 4.0.
        sched.enqueue(classed(0, 0, QosClass::BestEffort, 0), 0);
        sched.enqueue(classed(1, 0, QosClass::Interactive, 2_000_000), 2_000_000);
        let first = sched.next_batch(&model, 2_000_000, &[0; 3])[0];
        assert_eq!(first.id, 0, "aged best-effort request must overtake");
    }

    #[test]
    fn batch_scheduler_aggregates_up_to_the_dse_batch_size() {
        let model = test_model(); // branch 1 has max_batch 2
        let mut sched = BatchScheduler::new();
        for id in 0..3 {
            sched.enqueue(request(id, 1, id * 5), id * 5);
        }
        let first = sched.next_batch(&model, 100, &[0; 3]);
        assert_eq!(first.len(), 2, "batch limited by the DSE batch size");
        assert_eq!(first[0].id, 0);
        assert_eq!(first[1].id, 1);
        let second = sched.next_batch(&model, 100, &[0; 3]);
        assert_eq!(second.len(), 1);
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn batch_scheduler_serves_the_oldest_head_first() {
        let model = test_model();
        let mut sched = BatchScheduler::new();
        sched.enqueue(request(0, 1, 50), 50);
        sched.enqueue(request(1, 0, 10), 50);
        assert_eq!(sched.next_batch(&model, 60, &[0; 3])[0].branch, 0);
    }

    #[test]
    fn kinds_build_their_disciplines() {
        let names: Vec<&str> = SchedulerKind::all()
            .iter()
            .map(|k| k.build().name())
            .collect();
        assert_eq!(names, vec!["fifo", "priority", "batch"]);
    }
}
