//! Pluggable scheduling disciplines for the shared accelerator.
//!
//! The engine owns admission (queue capacity and drops); schedulers own
//! ordering and batching. All queued requests have already arrived, so a
//! scheduler may inspect the whole queue when picking the next dispatch.
//!
//! # Heap-backed ready queues
//!
//! The weighted-priority and batch-aggregating disciplines used to rescan
//! every `(branch, class)` FIFO per dispatch — O(branches × classes) per
//! pop. They now keep incrementally-maintained head indexes (binary heaps
//! over the queue heads, invalidated lazily by per-queue stamps) so a pop
//! is O(log queues), while reproducing the rescan's pick *bit for bit*:
//!
//! - [`BatchScheduler`] ordered purely by `(head arrival, branch)` — an
//!   integer key, so one min-heap over the heads is exactly the rescan.
//! - [`PriorityScheduler`] scores heads with floats
//!   (`class weight × branch priority + aging · wait`), and *recomputing*
//!   that score from a different algebraic form can differ in the last
//!   ulp — enough to flip the rescan's tie-break. The index therefore
//!   groups heads by the exact bit pattern of their
//!   `class weight × branch priority` term: within a group the score is a
//!   monotone function of arrival time alone, so an integer
//!   `(arrival, branch, class)` heap reproduces the rescan's order
//!   exactly, and only the ≤ groups (≤ branches × classes) group-best
//!   heads ever have their scores evaluated — with the *same* expression
//!   the rescan used.
//!
//! The engine's hot path passes an empty readiness hint (every branch is
//! dispatchable the moment the shard's fabric frees), which is the indexed
//! path. A non-empty `branch_free_us` falls back to the frozen rescan —
//! the ready/busy split depends on per-branch state the index does not
//! model — and fixes the index up afterwards, so mixed call patterns stay
//! consistent. The differential battery in `tests/engine_equivalence.rs`
//! pins both paths against [`crate::reference`].

use crate::cast::u64_to_f64;
use crate::model::ServiceModel;
use crate::qos::CLASS_COUNT;
use crate::request::Request;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A scheduling discipline: accepts admitted requests and, whenever the
/// shared weight-streaming DMA is free, picks the next same-branch batch
/// to dispatch.
///
/// `Send` is a supertrait because the parallel engines move live shards —
/// scheduler included — onto scoped worker threads; every built-in
/// discipline is plain data, so the bound costs nothing.
pub trait Scheduler: Send {
    /// Discipline name (used in reports).
    fn name(&self) -> &'static str;

    /// Accepts an admitted request. `now_us` is the admission time.
    fn enqueue(&mut self, request: Request, now_us: u64);

    /// Number of queued requests.
    fn queued(&self) -> usize;

    /// Removes and returns the next batch to dispatch. All returned
    /// requests target the same branch; the batch is non-empty whenever
    /// `queued() > 0`. `branch_free_us[b]` is a readiness hint: the
    /// earliest instant branch `b` can start (missing entries mean "ready
    /// now"). The time-multiplexed engine passes an empty slice — every
    /// branch is dispatchable the moment the fabric frees — but a future
    /// spatial/sharded engine can use it to steer disciplines away from
    /// busy pipelines.
    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request>;
}

/// Forwarding impl so a borrowed scheduler can stand in wherever an owned
/// one is expected (the fleet engine takes boxed per-shard schedulers;
/// `simulate_with` and `simulate_fleet_with` box their callers' borrowed
/// schedulers through this). The reference and trait-object lifetimes are
/// independent so a short reborrow of a long-lived scheduler still
/// forwards.
impl<'r, 'o> Scheduler for &'r mut (dyn Scheduler + 'o) {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn enqueue(&mut self, request: Request, now_us: u64) {
        (**self).enqueue(request, now_us);
    }

    fn queued(&self) -> usize {
        (**self).queued()
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        (**self).next_batch(model, now_us, branch_free_us)
    }
}

/// The built-in disciplines, as a value users can pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Strict arrival order, one request per dispatch.
    Fifo,
    /// Weighted cross-class priority: highest `class weight × branch
    /// priority` first (visual branches outrank audio, interactive
    /// sessions outrank best-effort), with waiting-time aging so neither
    /// low-priority branches nor low classes can starve.
    PriorityByBranch,
    /// Aggregates same-branch requests into batches up to the DSE-chosen
    /// batch size, amortizing pipeline fill.
    BatchAggregating,
    /// Earliest-deadline-first within class bands: among the queue heads,
    /// serve the one whose absolute deadline (`arrival + class budget`)
    /// comes soonest, with the class order as the outer band so
    /// interactive work always outranks best-effort. FIFO within a
    /// `(branch, class)` lane, one request per dispatch.
    Deadline,
}

impl SchedulerKind {
    /// All built-in disciplines. Returns a slice so adding a discipline
    /// does not ripple a fixed array length through every call site.
    pub fn all() -> &'static [SchedulerKind] {
        &[
            SchedulerKind::Fifo,
            SchedulerKind::PriorityByBranch,
            SchedulerKind::BatchAggregating,
            SchedulerKind::Deadline,
        ]
    }

    /// Instantiates the discipline.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
            SchedulerKind::PriorityByBranch => Box::new(PriorityScheduler::new()),
            SchedulerKind::BatchAggregating => Box::new(BatchScheduler::new()),
            SchedulerKind::Deadline => Box::new(DeadlineScheduler::new()),
        }
    }
}

/// Strict FIFO: one global queue, one request per dispatch (every dispatch
/// pays the full pipeline-fill overhead).
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Request>,
}

impl FifoScheduler {
    /// Creates an empty FIFO queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        self.queue.push_back(request);
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn next_batch(
        &mut self,
        _model: &ServiceModel,
        _now_us: u64,
        _branch_free_us: &[u64],
    ) -> Vec<Request> {
        self.queue.pop_front().into_iter().collect()
    }
}

/// A head-index entry: `(arrival key, branch, class, stamp)`. The stamp
/// must match the queue's current stamp for the entry to be live; stale
/// entries are discarded lazily when they surface at the heap top.
type HeadEntry = Reverse<(u64, usize, usize, u64)>;

/// One weight-product group of the priority head index: every queue whose
/// head scores `wp + aging · wait` for this exact `wp` bit pattern. See
/// the module docs for why grouping by bits is what makes the index
/// bit-identical to the frozen rescan.
#[derive(Debug)]
struct WeightGroup {
    /// `class weight × branch priority`, the exact `f64` the rescan's
    /// score expression produces for every head in this group.
    wp: f64,
    /// Min-heap over the group's queue heads, keyed
    /// `(arrival, branch, class)`: within a fixed `wp` the score is
    /// monotone non-increasing in arrival time, and the rescan breaks
    /// exact score ties on the lowest `(branch, class)` — so the heap
    /// minimum *is* the rescan's pick restricted to this group.
    heads: BinaryHeap<HeadEntry>,
}

/// Weighted cross-class priority: serves the `(branch, class)` queue whose
/// head request has the highest `class weight × branch priority +
/// aging_per_sec · wait` score, FIFO within a queue, one request per
/// dispatch.
///
/// The class weight multiplies the branch priority, so an interactive
/// session's audio branch still yields to anyone's visual branch only as
/// far as the weights say — and a run where every request is `Standard`
/// (weight exactly 1.0) scores identically to the classless
/// priority-by-branch discipline, which keeps the legacy path
/// bit-identical.
///
/// The aging term bounds starvation: a low-scoring head's score grows
/// linearly with its waiting time until it overtakes the high-weight
/// queues. With `aging_per_sec = 0` the discipline degenerates to strict
/// weighted priorities.
///
/// Picks are O(log queues) through the grouped head index (module docs);
/// the index assumes simulation time is monotone (no queued request
/// arrives after `now_us`), which the engine guarantees by construction.
#[derive(Debug)]
pub struct PriorityScheduler {
    /// One FIFO per `(branch, class)`, branch-major.
    queues: Vec<[VecDeque<Request>; CLASS_COUNT]>,
    queued: usize,
    aging_per_sec: f64,
    /// Per-`(branch, class)` head stamp, bumped on every pop so index
    /// entries for superseded heads die lazily.
    stamps: Vec<[u64; CLASS_COUNT]>,
    /// The head index, grouped by weight-product bit pattern. At most
    /// `branches × CLASS_COUNT` groups ever exist.
    groups: Vec<WeightGroup>,
    /// Queues that went empty → non-empty since the last `next_batch`.
    /// Indexing needs the model (for the branch priority), which
    /// `enqueue` does not receive, so it is deferred to the next pick.
    dirty: Vec<(usize, usize)>,
    /// Bit patterns of the per-branch priorities the index was built
    /// against; a model with different priorities forces a rebuild.
    indexed_priorities: Vec<u64>,
}

impl Default for PriorityScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl PriorityScheduler {
    /// Creates the discipline with the default aging rate of 0.25/s: a
    /// low-priority request overtakes a fresh priority-1.0 request after
    /// waiting `(1.0 - its priority) / 0.25` seconds (≈ 3.4 s for the 0.15
    /// audio-like branch), so priorities dominate at frame timescales while
    /// starvation stays bounded.
    pub fn new() -> Self {
        Self {
            queues: Vec::new(),
            queued: 0,
            aging_per_sec: 0.25,
            stamps: Vec::new(),
            groups: Vec::new(),
            dirty: Vec::new(),
            indexed_priorities: Vec::new(),
        }
    }

    /// Replaces the aging rate (score points gained per second of waiting).
    pub fn with_aging_per_sec(mut self, aging_per_sec: f64) -> Self {
        self.aging_per_sec = aging_per_sec;
        // The aging rate decides the in-group arrival key, so any index
        // built under the old rate is void; force a rebuild at next pick.
        self.indexed_priorities.clear();
        self.groups.clear();
        self.dirty.clear();
        self
    }

    fn score(&self, branch: usize, head: &Request, model: &ServiceModel, now_us: u64) -> f64 {
        let wait_sec = u64_to_f64(head.latency_us(now_us)) / 1e6;
        head.class.weight() * model.priority(branch) + self.aging_per_sec * wait_sec
    }

    /// The best-scoring `(branch, class)` queue of one branch, if any head
    /// is queued. Strictly-greater keeps ties on the class order, which
    /// keeps dispatch deterministic.
    fn best_class(&self, branch: usize, model: &ServiceModel, now_us: u64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (class, queue) in self.queues[branch].iter().enumerate() {
            if let Some(head) = queue.front() {
                let score = self.score(branch, head, model, now_us);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((class, score));
                }
            }
        }
        best
    }

    /// The in-group arrival key of a head. With aging the score strictly
    /// decreases as arrival time grows (distinct microsecond arrivals
    /// never collapse to one score at simulated magnitudes: consecutive
    /// waits differ by ≥ 2.5e-7 score points under the 0.25/s default,
    /// against a sub-1e-12 ulp), so arrival time orders the group. With
    /// zero aging every head in the group scores exactly `wp`, and the
    /// rescan's tie-break is purely `(branch, class)` — the key ignores
    /// arrival time so the heap agrees.
    fn arrival_key(&self, head: &Request) -> u64 {
        if self.aging_per_sec == 0.0 {
            0
        } else {
            head.issued_at_us
        }
    }

    /// Inserts the current head of `(branch, class)` into its weight
    /// group, creating the group on first sight of that bit pattern.
    fn index_head(&mut self, branch: usize, class: usize, model: &ServiceModel) {
        let Some(head) = self.queues[branch][class].front() else {
            return;
        };
        let wp = head.class.weight() * model.priority(branch);
        let key = self.arrival_key(head);
        let entry = Reverse((key, branch, class, self.stamps[branch][class]));
        match self
            .groups
            .iter_mut()
            .find(|g| g.wp.to_bits() == wp.to_bits())
        {
            Some(group) => group.heads.push(entry),
            None => self.groups.push(WeightGroup {
                wp,
                heads: BinaryHeap::from([entry]),
            }),
        }
    }

    /// Brings the head index up to date with the queues and `model`:
    /// rebuilds from scratch when the model's priorities changed since the
    /// last pick, otherwise just indexes the queues that went non-empty.
    fn sync_index(&mut self, model: &ServiceModel) {
        let priorities: Vec<u64> = (0..self.queues.len())
            .map(|b| model.priority(b).to_bits())
            .collect();
        if priorities != self.indexed_priorities {
            self.indexed_priorities = priorities;
            self.groups.clear();
            self.dirty.clear();
            for branch in 0..self.queues.len() {
                for class in 0..CLASS_COUNT {
                    self.index_head(branch, class, model);
                }
            }
            return;
        }
        while let Some((branch, class)) = self.dirty.pop() {
            self.index_head(branch, class, model);
        }
    }

    /// Pops the rescan-identical pick through the head index: per group,
    /// surface the live minimum (discarding stale stamps), score only
    /// those group-best heads with the rescan's own expression, and keep
    /// the strictly-greatest score with ties to the lowest
    /// `(branch, class)` — the exact rescan rule.
    fn pop_indexed(&mut self, model: &ServiceModel, now_us: u64) -> Vec<Request> {
        self.sync_index(model);
        if self.queued == 0 {
            return Vec::new();
        }
        let mut best: Option<(f64, usize, usize, usize)> = None;
        for (index, group) in self.groups.iter_mut().enumerate() {
            let candidate = loop {
                match group.heads.peek() {
                    Some(&Reverse((_, branch, class, stamp))) => {
                        if stamp == self.stamps[branch][class] {
                            break Some((branch, class));
                        }
                        group.heads.pop();
                    }
                    None => break None,
                }
            };
            let Some((branch, class)) = candidate else {
                continue;
            };
            let head = self.queues[branch][class]
                .front()
                .expect("live index entry for an empty queue");
            let wait_sec = u64_to_f64(head.latency_us(now_us)) / 1e6;
            let score = group.wp + self.aging_per_sec * wait_sec;
            let better = match best {
                None => true,
                Some((s, b, c, _)) => score > s || (score == s && (branch, class) < (b, c)),
            };
            if better {
                best = Some((score, branch, class, index));
            }
        }
        let Some((_, branch, class, group)) = best else {
            debug_assert!(false, "queued requests but no live index entry");
            return Vec::new();
        };
        self.groups[group].heads.pop();
        self.pop_front(branch, class, model)
    }

    /// Removes the head of `(branch, class)`, bumps its stamp (killing any
    /// remaining index entries for the old head) and indexes the new head.
    fn pop_front(&mut self, branch: usize, class: usize, model: &ServiceModel) -> Vec<Request> {
        self.queued -= 1;
        self.stamps[branch][class] += 1;
        let popped = self.queues[branch][class].pop_front();
        self.index_head(branch, class, model);
        popped.into_iter().collect()
    }
}

impl Scheduler for PriorityScheduler {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues
                .resize_with(request.branch + 1, Default::default);
            self.stamps.resize(request.branch + 1, [0; CLASS_COUNT]);
        }
        let class = request.class.index();
        let queue = &mut self.queues[request.branch][class];
        if queue.is_empty() {
            self.dirty.push((request.branch, class));
        }
        queue.push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        // The engine's hot path: no readiness hint means every branch is
        // dispatchable, so the grouped head index answers in O(log
        // queues). (A negative aging rate would reverse the in-group
        // order; no caller uses one, but the rescan below handles it, so
        // route it there rather than mis-index.)
        if branch_free_us.is_empty() && self.aging_per_sec >= 0.0 {
            return self.pop_indexed(model, now_us);
        }
        // Frozen-rescan fallback. Prefer branches whose pipeline is
        // ready: committing the DMA to a busy pipeline would block every
        // other branch for no gain. Only when every candidate is busy
        // pick the one that frees soonest.
        self.sync_index(model);
        let mut best_ready: Option<(usize, usize, f64)> = None;
        let mut best_busy: Option<(usize, u64)> = None;
        for branch in 0..self.queues.len() {
            let Some((class, score)) = self.best_class(branch, model, now_us) else {
                continue;
            };
            let free_at = branch_free_us.get(branch).copied().unwrap_or(0);
            if free_at <= now_us {
                // Strictly-greater keeps ties on the lowest branch index
                // (then the class order), which keeps dispatch order
                // deterministic.
                if best_ready.is_none_or(|(_, _, s)| score > s) {
                    best_ready = Some((branch, class, score));
                }
            } else if best_busy.is_none_or(|(_, f)| free_at < f) {
                best_busy = Some((branch, free_at));
            }
        }
        let pick = best_ready.map(|(b, c, _)| (b, c)).or_else(|| {
            best_busy.and_then(|(branch, _)| {
                self.best_class(branch, model, now_us)
                    .map(|(class, _)| (branch, class))
            })
        });
        match pick {
            Some((branch, class)) => self.pop_front(branch, class, model),
            None => Vec::new(),
        }
    }
}

/// Batch-aggregating: serves the branch whose head has waited longest
/// (FIFO across branches at batch granularity) and dispatches up to the
/// DSE-chosen batch size of that branch in one go, paying pipeline fill
/// once per batch.
///
/// The pick key `(head arrival, branch)` is pure integers, so a min-heap
/// over the branch heads (stamp-invalidated like the priority index)
/// reproduces the frozen rescan exactly on the engine's no-hint path.
#[derive(Debug, Default)]
pub struct BatchScheduler {
    queues: Vec<VecDeque<Request>>,
    queued: usize,
    /// Per-branch head stamp; bumped per drain so superseded entries die.
    stamps: Vec<u64>,
    /// Min-heap of `(head arrival, branch, stamp)` over non-empty queues.
    heads: BinaryHeap<Reverse<(u64, usize, u64)>>,
}

impl BatchScheduler {
    /// Creates the discipline with empty per-branch queues.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the batch for `branch`, bumps its stamp and re-indexes the
    /// remaining head, if any.
    fn drain_branch(&mut self, branch: usize, model: &ServiceModel) -> Vec<Request> {
        let take = model.max_batch(branch).min(self.queues[branch].len());
        let batch: Vec<Request> = self.queues[branch].drain(..take).collect();
        self.queued -= batch.len();
        self.stamps[branch] += 1;
        if let Some(head) = self.queues[branch].front() {
            self.heads
                .push(Reverse((head.issued_at_us, branch, self.stamps[branch])));
        }
        batch
    }
}

impl Scheduler for BatchScheduler {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues.resize_with(request.branch + 1, VecDeque::new);
            self.stamps.resize(request.branch + 1, 0);
        }
        let branch = request.branch;
        if self.queues[branch].is_empty() {
            self.heads
                .push(Reverse((request.issued_at_us, branch, self.stamps[branch])));
        }
        self.queues[branch].push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        // The engine's hot path: every branch ready, so the head heap's
        // live minimum is exactly the rescan's `(head arrival, branch)`
        // minimum.
        if branch_free_us.is_empty() {
            while let Some(&Reverse((_, branch, stamp))) = self.heads.peek() {
                if stamp == self.stamps[branch] {
                    self.heads.pop();
                    return self.drain_branch(branch, model);
                }
                self.heads.pop();
            }
            return Vec::new();
        }
        // Frozen-rescan fallback: oldest head first among ready pipelines
        // (FIFO across branches at batch granularity); fall back to the
        // soonest-free branch when every pipeline is busy.
        let candidate = |ready: bool| {
            self.queues
                .iter()
                .enumerate()
                .filter(|(branch, _)| {
                    (branch_free_us.get(*branch).copied().unwrap_or(0) <= now_us) == ready
                })
                .filter_map(|(branch, queue)| queue.front().map(|head| (head.issued_at_us, branch)))
                .min()
        };
        let oldest = candidate(true).or_else(|| candidate(false));
        match oldest {
            Some((_, branch)) => self.drain_branch(branch, model),
            None => Vec::new(),
        }
    }
}

/// Earliest-deadline-first within class bands: serves the `(branch,
/// class)` queue whose head minimizes `(class index, absolute deadline,
/// branch)`, FIFO within a lane, one request per dispatch.
///
/// The absolute deadline is [`Request::deadline_us`] — `arrival + class
/// budget` — so within a class band the discipline is classic EDF over
/// the queue heads; the class index as the outer key keeps interactive
/// work ahead of best-effort even when the best-effort deadline happens
/// to come sooner (its budget is 20× longer, so in practice it rarely
/// does). The key is pure integers with no model dependence, so one
/// stamp-invalidated min-heap over the lane heads reproduces the frozen
/// rescan bit for bit on the engine's no-hint path.
#[derive(Debug, Default)]
pub struct DeadlineScheduler {
    /// One FIFO per `(branch, class)`, branch-major.
    queues: Vec<[VecDeque<Request>; CLASS_COUNT]>,
    queued: usize,
    /// Per-lane head stamp; bumped per pop so superseded entries die.
    stamps: Vec<[u64; CLASS_COUNT]>,
    /// Min-heap of `(class, deadline, branch, stamp)` over lane heads.
    heads: BinaryHeap<Reverse<(usize, u64, usize, u64)>>,
}

impl DeadlineScheduler {
    /// Creates the discipline with empty per-lane queues.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes the current head of `(branch, class)` into the head index.
    fn index_head(&mut self, branch: usize, class: usize) {
        if let Some(head) = self.queues[branch][class].front() {
            self.heads.push(Reverse((
                class,
                head.deadline_us(),
                branch,
                self.stamps[branch][class],
            )));
        }
    }

    /// Removes the head of `(branch, class)`, bumps its stamp (killing
    /// any remaining index entries for the old head) and indexes the new
    /// head.
    fn pop_front(&mut self, branch: usize, class: usize) -> Vec<Request> {
        self.queued -= 1;
        self.stamps[branch][class] += 1;
        let popped = self.queues[branch][class].pop_front();
        self.index_head(branch, class);
        popped.into_iter().collect()
    }
}

impl Scheduler for DeadlineScheduler {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues
                .resize_with(request.branch + 1, Default::default);
            self.stamps.resize(request.branch + 1, [0; CLASS_COUNT]);
        }
        let branch = request.branch;
        let class = request.class.index();
        let was_empty = self.queues[branch][class].is_empty();
        self.queues[branch][class].push_back(request);
        self.queued += 1;
        if was_empty {
            self.index_head(branch, class);
        }
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        _model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        // The engine's hot path: every branch ready, so the head heap's
        // live minimum is exactly the rescan's `(class, deadline, branch)`
        // minimum.
        if branch_free_us.is_empty() {
            while let Some(&Reverse((class, _, branch, stamp))) = self.heads.peek() {
                if stamp == self.stamps[branch][class] {
                    self.heads.pop();
                    return self.pop_front(branch, class);
                }
                self.heads.pop();
            }
            return Vec::new();
        }
        // Frozen-rescan fallback: tightest deadline among ready pipelines
        // first; only when every candidate is busy pick the tightest
        // deadline overall. `pop_front` bumps the stamp, so the index
        // stays truthful across mixed hinted/unhinted call patterns.
        let candidate = |ready: bool| {
            self.queues
                .iter()
                .enumerate()
                .filter(|(branch, _)| {
                    (branch_free_us.get(*branch).copied().unwrap_or(0) <= now_us) == ready
                })
                .flat_map(|(branch, lanes)| {
                    lanes.iter().enumerate().filter_map(move |(class, queue)| {
                        queue
                            .front()
                            .map(|head| (class, head.deadline_us(), branch))
                    })
                })
                .min()
        };
        let tightest = candidate(true).or_else(|| candidate(false));
        match tightest {
            Some((class, _, branch)) => self.pop_front(branch, class),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model;
    use crate::qos::QosClass;

    fn request(id: u64, branch: usize, issued_at_us: u64) -> Request {
        Request {
            id,
            session: 0,
            branch,
            issued_at_us,
            class: QosClass::Standard,
        }
    }

    fn classed(id: u64, branch: usize, class: QosClass, issued_at_us: u64) -> Request {
        Request {
            class,
            ..request(id, branch, issued_at_us)
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let model = test_model();
        let mut fifo = FifoScheduler::new();
        for (id, branch) in [(0, 2), (1, 0), (2, 1)] {
            fifo.enqueue(request(id, branch, id * 10), id * 10);
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| fifo.next_batch(&model, 100, &[0; 3]).first().map(|r| r.id))
                .take(3)
                .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(fifo.queued(), 0);
    }

    #[test]
    fn priority_serves_visual_branches_before_audio() {
        let model = test_model(); // branch 2 has priority 0.2
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        sched.enqueue(request(0, 2, 0), 0);
        sched.enqueue(request(1, 0, 0), 0);
        sched.enqueue(request(2, 1, 0), 0);
        let first = sched.next_batch(&model, 0, &[0; 3])[0];
        let second = sched.next_batch(&model, 0, &[0; 3])[0];
        let third = sched.next_batch(&model, 0, &[0; 3])[0];
        assert_eq!(first.branch, 0); // priority 1.0, lowest index wins the tie
        assert_eq!(second.branch, 1);
        assert_eq!(third.branch, 2);
    }

    #[test]
    fn aging_lets_a_starving_branch_overtake() {
        let model = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(2.0);
        // Audio request waiting 600 ms: score 0.2 + 2.0·0.6 = 1.4 beats a
        // fresh visual request's 1.0.
        sched.enqueue(request(0, 2, 0), 0);
        sched.enqueue(request(1, 0, 600_000), 600_000);
        let first = sched.next_batch(&model, 600_000, &[0; 3])[0];
        assert_eq!(first.branch, 2, "aged audio request must be served first");
    }

    #[test]
    fn class_weight_multiplies_the_branch_priority() {
        let model = test_model(); // branches 0/1 priority 1.0, branch 2: 0.2
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        // Interactive audio (4.0 × 0.2 = 0.8) still yields to standard
        // geometry (1.0 × 1.0), but best-effort geometry (0.25) yields to
        // both.
        sched.enqueue(classed(0, 0, QosClass::BestEffort, 0), 0);
        sched.enqueue(classed(1, 2, QosClass::Interactive, 0), 0);
        sched.enqueue(classed(2, 0, QosClass::Standard, 0), 0);
        let order: Vec<u64> = (0..3)
            .map(|_| sched.next_batch(&model, 0, &[0; 3])[0].id)
            .collect();
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn same_branch_fifo_holds_within_a_class_and_weight_across_classes() {
        let model = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        sched.enqueue(classed(0, 1, QosClass::Standard, 0), 0);
        sched.enqueue(classed(1, 1, QosClass::Interactive, 10), 10);
        sched.enqueue(classed(2, 1, QosClass::Interactive, 20), 20);
        let order: Vec<u64> = (0..3)
            .map(|_| sched.next_batch(&model, 30, &[0; 3])[0].id)
            .collect();
        // Interactive jumps the standard head; within interactive, FIFO.
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn aging_lets_a_low_class_overtake_eventually() {
        let model = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(2.0);
        // Best-effort geometry waiting 2 s: 0.25 + 2.0·2.0 = 4.25 beats a
        // fresh interactive request's 4.0.
        sched.enqueue(classed(0, 0, QosClass::BestEffort, 0), 0);
        sched.enqueue(classed(1, 0, QosClass::Interactive, 2_000_000), 2_000_000);
        let first = sched.next_batch(&model, 2_000_000, &[0; 3])[0];
        assert_eq!(first.id, 0, "aged best-effort request must overtake");
    }

    #[test]
    fn batch_scheduler_aggregates_up_to_the_dse_batch_size() {
        let model = test_model(); // branch 1 has max_batch 2
        let mut sched = BatchScheduler::new();
        for id in 0..3 {
            sched.enqueue(request(id, 1, id * 5), id * 5);
        }
        let first = sched.next_batch(&model, 100, &[0; 3]);
        assert_eq!(first.len(), 2, "batch limited by the DSE batch size");
        assert_eq!(first[0].id, 0);
        assert_eq!(first[1].id, 1);
        let second = sched.next_batch(&model, 100, &[0; 3]);
        assert_eq!(second.len(), 1);
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn batch_scheduler_serves_the_oldest_head_first() {
        let model = test_model();
        let mut sched = BatchScheduler::new();
        sched.enqueue(request(0, 1, 50), 50);
        sched.enqueue(request(1, 0, 10), 50);
        assert_eq!(sched.next_batch(&model, 60, &[0; 3])[0].branch, 0);
    }

    #[test]
    fn kinds_build_their_disciplines() {
        let names: Vec<&str> = SchedulerKind::all()
            .iter()
            .map(|k| k.build().name())
            .collect();
        assert_eq!(names, vec!["fifo", "priority", "batch", "deadline"]);
    }

    #[test]
    fn deadline_serves_the_tightest_deadline_within_class_bands() {
        let model = test_model();
        let mut sched = DeadlineScheduler::new();
        // Standard issued at 0 → deadline 400 ms; interactive issued at
        // 350 ms → deadline 450 ms. The interactive band still wins even
        // with the later absolute deadline.
        sched.enqueue(classed(0, 0, QosClass::Standard, 0), 0);
        sched.enqueue(classed(1, 1, QosClass::Interactive, 350_000), 350_000);
        // Standard issued at 10 ms → deadline 410 ms: within the standard
        // band, EDF serves the 400 ms deadline first.
        sched.enqueue(classed(2, 2, QosClass::Standard, 10_000), 350_000);
        let order: Vec<u64> = (0..3)
            .map(|_| sched.next_batch(&model, 350_000, &[])[0].id)
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn deadline_breaks_exact_ties_on_the_lowest_branch() {
        let model = test_model();
        let mut sched = DeadlineScheduler::new();
        // Same class, same arrival ⇒ identical deadlines; the branch
        // index is the deterministic tie-break.
        sched.enqueue(request(0, 2, 100), 100);
        sched.enqueue(request(1, 0, 100), 100);
        sched.enqueue(request(2, 1, 100), 100);
        let order: Vec<usize> = (0..3)
            .map(|_| sched.next_batch(&model, 200, &[])[0].branch)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    // --- Indexed fast path (empty readiness hint) ---

    /// Drives a rebuilt scheduler and its frozen counterpart through the
    /// same monotone enqueue/pop stream and demands identical pops.
    fn assert_pops_match_reference(
        requests: &[Request],
        mut rebuilt: impl Scheduler,
        mut frozen: impl Scheduler,
        hint: &[u64],
    ) {
        let model = test_model();
        let mut now = 0;
        for (step, request) in requests.iter().enumerate() {
            now = now.max(request.issued_at_us);
            rebuilt.enqueue(*request, now);
            frozen.enqueue(*request, now);
            // Interleave pops so head churn (not just bulk drain) is
            // exercised.
            if step % 2 == 1 {
                let a = rebuilt.next_batch(&model, now, hint);
                let b = frozen.next_batch(&model, now, hint);
                assert_eq!(a, b, "pop diverged mid-stream at step {step}");
            }
        }
        while frozen.queued() > 0 {
            now += 1_000;
            let a = rebuilt.next_batch(&model, now, hint);
            let b = frozen.next_batch(&model, now, hint);
            assert_eq!(a, b, "drain diverged at t={now}");
        }
        assert_eq!(rebuilt.queued(), 0);
        assert!(rebuilt.next_batch(&model, now, hint).is_empty());
    }

    fn churn_stream() -> Vec<Request> {
        let classes = QosClass::all();
        (0..60u64)
            .map(|i| Request {
                id: i,
                session: u64_to_usize_for_test(i % 7),
                branch: u64_to_usize_for_test(i % 3),
                issued_at_us: i * 3_337,
                class: classes[u64_to_usize_for_test(i % 3)],
            })
            .collect()
    }

    fn u64_to_usize_for_test(value: u64) -> usize {
        usize::try_from(value).expect("test value fits usize")
    }

    #[test]
    fn priority_index_matches_the_frozen_rescan() {
        assert_pops_match_reference(
            &churn_stream(),
            PriorityScheduler::new(),
            crate::reference::PriorityScheduler::new(),
            &[],
        );
    }

    #[test]
    fn priority_index_matches_under_zero_aging() {
        assert_pops_match_reference(
            &churn_stream(),
            PriorityScheduler::new().with_aging_per_sec(0.0),
            crate::reference::PriorityScheduler::new().with_aging_per_sec(0.0),
            &[],
        );
    }

    #[test]
    fn batch_index_matches_the_frozen_rescan() {
        assert_pops_match_reference(
            &churn_stream(),
            BatchScheduler::new(),
            crate::reference::BatchScheduler::new(),
            &[],
        );
    }

    #[test]
    fn deadline_index_matches_the_frozen_rescan() {
        assert_pops_match_reference(
            &churn_stream(),
            DeadlineScheduler::new(),
            crate::reference::DeadlineScheduler::new(),
            &[],
        );
    }

    #[test]
    fn deadline_mixed_hint_and_indexed_calls_stay_consistent() {
        // Alternating hinted (rescan fallback) and unhinted (indexed)
        // picks must agree with an all-rescan frozen scheduler: the
        // fallback's stamp fixup keeps the index truthful.
        let model = test_model();
        let mut rebuilt = DeadlineScheduler::new();
        let mut frozen = crate::reference::DeadlineScheduler::new();
        for request in churn_stream() {
            let now = request.issued_at_us;
            rebuilt.enqueue(request, now);
            frozen.enqueue(request, now);
        }
        let mut now = 200_000;
        let mut flip = false;
        while frozen.queued() > 0 {
            let hint: &[u64] = if flip { &[0; 3] } else { &[] };
            let a = rebuilt.next_batch(&model, now, hint);
            let b = frozen.next_batch(&model, now, &[0; 3]);
            assert_eq!(a, b, "hint-mixed pop diverged at t={now}");
            flip = !flip;
            now += 500;
        }
        assert_eq!(rebuilt.queued(), 0);
    }

    #[test]
    fn mixed_hint_and_indexed_calls_stay_consistent() {
        // Alternating hinted (rescan fallback) and unhinted (indexed)
        // picks must agree with an all-rescan frozen scheduler: the
        // fallback's stamp fixup keeps the index truthful.
        let model = test_model();
        let mut rebuilt = PriorityScheduler::new();
        let mut frozen = crate::reference::PriorityScheduler::new();
        for request in churn_stream() {
            let now = request.issued_at_us;
            rebuilt.enqueue(request, now);
            frozen.enqueue(request, now);
        }
        let mut now = 200_000;
        let mut flip = false;
        while frozen.queued() > 0 {
            let hint: &[u64] = if flip { &[0; 3] } else { &[] };
            let a = rebuilt.next_batch(&model, now, hint);
            let b = frozen.next_batch(&model, now, &[0; 3]);
            assert_eq!(a, b, "hint-mixed pop diverged at t={now}");
            flip = !flip;
            now += 500;
        }
        assert_eq!(rebuilt.queued(), 0);
    }

    #[test]
    fn priority_index_survives_a_priority_override_swap() {
        // Changing the model's priorities between picks must trigger the
        // index rebuild, not serve picks ordered by the stale weights.
        let mut base = test_model();
        let mut sched = PriorityScheduler::new().with_aging_per_sec(0.0);
        sched.enqueue(request(0, 2, 0), 0);
        sched.enqueue(request(1, 0, 0), 0);
        assert_eq!(sched.next_batch(&base, 10, &[])[0].branch, 0);
        sched.enqueue(request(2, 0, 20), 20);
        // Flip the weights: audio now dominates geometry.
        base.branches[2].priority = 5.0;
        assert_eq!(sched.next_batch(&base, 30, &[])[0].branch, 2);
        assert_eq!(sched.next_batch(&base, 40, &[])[0].branch, 0);
        assert_eq!(sched.queued(), 0);
    }
}
