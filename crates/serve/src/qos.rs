//! Quality-of-service classes: per-session latency budgets and scheduling
//! weights.
//!
//! F-CAD's whole argument is meeting a real-time latency budget for codec
//! avatar decoding, but not every session carries the same budget: an
//! interactive telepresence call must land every frame inside a tight
//! deadline, while a background/recording session tolerates seconds of
//! queueing. A [`QosClass`] makes that difference first-class: every
//! [`Request`](crate::Request) carries its session's class, the weighted
//! scheduler orders work by `class weight × branch priority`, the
//! admission layer ([`crate::AdmissionController`]) sheds low classes
//! before queues saturate, and the report scores each class against its
//! own budget (`slo_attainment`).
//!
//! The legacy classless path is the everyone-is-[`QosClass::Standard`]
//! special case: `Standard` has weight exactly 1.0, so the weighted score
//! degenerates to the plain branch priority and the whole serve stack is
//! bit-identical to the pre-QoS engine under the admit-all policy.

use crate::cast::{u64_to_f64, usize_to_u64};
use serde::{Deserialize, Serialize};

/// Number of QoS classes (the length of every per-class array).
pub const CLASS_COUNT: usize = 3;

/// A session's quality-of-service class: its latency budget (the SLO) and
/// its scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosClass {
    /// Live telepresence: a tight frame deadline and the highest
    /// scheduling weight (a paying, latency-critical tier).
    Interactive,
    /// The default tier — weight exactly 1.0, so an all-`Standard` run is
    /// bit-identical to the classless legacy engine.
    Standard,
    /// Background work (prefetch, recording, free tier): a loose budget
    /// and a small weight; the first tier shed under pressure.
    BestEffort,
}

impl QosClass {
    /// All classes, in descending weight order (also the per-class array
    /// index order).
    pub fn all() -> &'static [QosClass] {
        &[
            QosClass::Interactive,
            QosClass::Standard,
            QosClass::BestEffort,
        ]
    }

    /// Class name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Standard => "standard",
            QosClass::BestEffort => "best_effort",
        }
    }

    /// Index of this class into per-class arrays (the position in
    /// [`QosClass::all`]).
    pub fn index(&self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Standard => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// Latency budget (the per-class SLO), µs: a completed request meets
    /// its SLO when `latency ≤ budget`.
    pub fn budget_us(&self) -> u64 {
        match self {
            QosClass::Interactive => 100_000,
            QosClass::Standard => 400_000,
            QosClass::BestEffort => 2_000_000,
        }
    }

    /// Latency budget, milliseconds (the unit the report quotes).
    pub fn budget_ms(&self) -> f64 {
        u64_to_f64(self.budget_us()) / 1_000.0
    }

    /// Scheduling weight: the weighted scheduler orders queue heads by
    /// `weight × branch priority` (plus aging). `Standard` is exactly 1.0
    /// so the classless path degenerates to plain branch priorities.
    pub fn weight(&self) -> f64 {
        match self {
            QosClass::Interactive => 4.0,
            QosClass::Standard => 1.0,
            QosClass::BestEffort => 0.25,
        }
    }
}

/// Stream constant separating the class draw from the per-session arrival
/// RNG seeds (both derive from the scenario seed through the crate's
/// shared SplitMix64 finalizer).
const CLASS_STREAM: u64 = 0xC1A5_55E5;

/// The per-scenario class mix: relative fractions of sessions per class,
/// drawn deterministically from the scenario seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Relative (unnormalized) session fractions, indexed by
    /// [`QosClass::index`]. Negative entries are treated as 0; an
    /// all-zero mix falls back to `Standard`.
    pub fractions: [f64; CLASS_COUNT],
}

impl ClassMix {
    /// A mix from explicit relative fractions.
    pub fn new(interactive: f64, standard: f64, best_effort: f64) -> Self {
        Self {
            fractions: [interactive, standard, best_effort],
        }
    }

    /// The legacy mix: every session is `Standard` (the classless
    /// special case every pre-QoS scenario keeps).
    pub fn standard_only() -> Self {
        Self::new(0.0, 1.0, 0.0)
    }

    /// A telepresence-shaped mix: half the sessions interactive, the rest
    /// split between standard and background tiers.
    pub fn telepresence() -> Self {
        Self::new(0.5, 0.3, 0.2)
    }

    /// Whether every session draws `Standard` (the classless path).
    /// Mirrors [`ClassMix::class_at`] exactly: an all-zero (or
    /// all-negative) mix falls back to `Standard` for every draw, so it
    /// counts as standard-only too.
    pub fn is_standard_only(&self) -> bool {
        let fraction = |c: QosClass| self.fractions[c.index()].max(0.0);
        fraction(QosClass::Interactive) == 0.0 && fraction(QosClass::BestEffort) == 0.0
    }

    /// The class at cumulative position `u ∈ [0, 1)` of the normalized
    /// mix.
    pub fn class_at(&self, u: f64) -> QosClass {
        let total: f64 = self.fractions.iter().map(|f| f.max(0.0)).sum();
        if total <= 0.0 {
            return QosClass::Standard;
        }
        let mut cumulative = 0.0;
        for class in QosClass::all() {
            cumulative += self.fractions[class.index()].max(0.0) / total;
            if u < cumulative {
                return *class;
            }
        }
        QosClass::BestEffort
    }

    /// Deterministic class draw for one session: the same `(seed,
    /// session)` always yields the same class, independent of the
    /// session's arrival stream (which mixes the seed differently).
    pub fn class_for_session(&self, seed: u64, session: usize) -> QosClass {
        let draw = crate::autoscale::mix(seed ^ CLASS_STREAM, usize_to_u64(session));
        // Upper 53 bits to a uniform f64 in [0, 1).
        let u = u64_to_f64(draw >> 11) / u64_to_f64(1u64 << 53);
        self.class_at(u)
    }

    /// Interns the class draw for every session in `0..sessions` into one
    /// index-by-session arena (entry `s` is exactly
    /// [`ClassMix::class_for_session`]`(seed, s)`). The generators resolve
    /// each session's class once through this table instead of re-mixing
    /// the seed per request.
    pub fn classes_for(&self, seed: u64, sessions: usize) -> Vec<QosClass> {
        (0..sessions)
            .map(|session| self.class_for_session(seed, session))
            .collect()
    }
}

impl Default for ClassMix {
    fn default() -> Self {
        Self::standard_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_weights_and_budgets_are_consistent() {
        let all = QosClass::all();
        assert_eq!(all.len(), CLASS_COUNT);
        for (index, class) in all.iter().enumerate() {
            assert_eq!(class.index(), index);
        }
        // Weights strictly descend with the class order; budgets ascend.
        for pair in all.windows(2) {
            assert!(pair[0].weight() > pair[1].weight());
            assert!(pair[0].budget_us() < pair[1].budget_us());
        }
        // The classless special case hinges on Standard's weight being
        // exactly 1.0 (f64 multiplication by 1.0 is an identity).
        assert_eq!(QosClass::Standard.weight(), 1.0);
        assert_eq!(QosClass::Interactive.budget_ms(), 100.0);
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(QosClass::Interactive.name(), "interactive");
        assert_eq!(QosClass::Standard.name(), "standard");
        assert_eq!(QosClass::BestEffort.name(), "best_effort");
    }

    #[test]
    fn standard_only_mix_always_draws_standard() {
        let mix = ClassMix::standard_only();
        assert!(mix.is_standard_only());
        for session in 0..256 {
            for seed in [0u64, 7, 0xF_CAD] {
                assert_eq!(mix.class_for_session(seed, session), QosClass::Standard);
            }
        }
        assert!(!ClassMix::telepresence().is_standard_only());
    }

    #[test]
    fn degenerate_mixes_fall_back_to_standard() {
        assert_eq!(
            ClassMix::new(0.0, 0.0, 0.0).class_at(0.5),
            QosClass::Standard
        );
        // The predicate agrees with the draw behaviour on the fallback.
        assert!(ClassMix::new(0.0, 0.0, 0.0).is_standard_only());
        assert!(ClassMix::new(-1.0, -2.0, 0.0).is_standard_only());
        assert!(!ClassMix::new(0.0, 0.0, 1.0).is_standard_only());
        assert_eq!(
            ClassMix::new(-1.0, -2.0, 0.0).class_at(0.1),
            QosClass::Standard
        );
        // Negative entries are clamped out, not wrapped into weight.
        let mix = ClassMix::new(-5.0, 0.0, 1.0);
        assert_eq!(mix.class_at(0.0), QosClass::BestEffort);
    }

    #[test]
    fn class_draws_are_deterministic_and_follow_the_mix() {
        let mix = ClassMix::telepresence();
        let draws: Vec<QosClass> = (0..512).map(|s| mix.class_for_session(7, s)).collect();
        let again: Vec<QosClass> = (0..512).map(|s| mix.class_for_session(7, s)).collect();
        assert_eq!(draws, again);
        let interactive = draws
            .iter()
            .filter(|c| **c == QosClass::Interactive)
            .count();
        let best_effort = draws.iter().filter(|c| **c == QosClass::BestEffort).count();
        // 512 draws at 0.5 / 0.2: loose band, exact values pinned by the
        // determinism assertion above.
        assert!((150..=350).contains(&interactive), "{interactive}");
        assert!((50..=160).contains(&best_effort), "{best_effort}");
        // A different seed reshuffles the assignment.
        let reseeded: Vec<QosClass> = (0..512).map(|s| mix.class_for_session(8, s)).collect();
        assert_ne!(draws, reseeded);
    }

    #[test]
    fn cumulative_selection_covers_the_unit_interval() {
        let mix = ClassMix::new(1.0, 1.0, 1.0);
        assert_eq!(mix.class_at(0.0), QosClass::Interactive);
        assert_eq!(mix.class_at(0.5), QosClass::Standard);
        assert_eq!(mix.class_at(0.99), QosClass::BestEffort);
    }
}
