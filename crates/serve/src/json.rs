//! Minimal single-line JSON emission.
//!
//! The workspace's offline `serde` stand-in only provides marker traits, so
//! machine-readable output is rendered by this tiny writer instead of
//! `serde_json`. Output is deterministic: fields appear in insertion order
//! and floats use fixed four-decimal formatting.

/// Builds one JSON object as a single-line string.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a float field with four decimals (non-finite values become 0).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let value = if value.is_finite() { value } else { 0.0 };
        self.fields.push(format!("\"{}\":{value:.4}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Renders the object as `{"k":v,...}` on a single line.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(","))
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_typed_fields_in_insertion_order() {
        let line = JsonObject::new()
            .str("name", "a1")
            .u64("issued", 42)
            .f64("p99_ms", 1.25)
            .raw("branches", &array(&["{\"x\":1}".to_owned()]))
            .render();
        assert_eq!(
            line,
            "{\"name\":\"a1\",\"issued\":42,\"p99_ms\":1.2500,\"branches\":[{\"x\":1}]}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn escapes_quotes_and_nonfinite_floats() {
        let line = JsonObject::new()
            .str("k", "say \"hi\"")
            .f64("bad", f64::NAN)
            .render();
        assert_eq!(line, "{\"k\":\"say \\\"hi\\\"\",\"bad\":0.0000}");
    }
}
