//! Fixed-bucket latency histogram with percentile extraction (the
//! tail-behaviour bookkeeping idiom of the WIND bench harness).

use crate::cast::{f64_to_u64, u64_to_f64, u64_to_usize, usize_to_u64};
use serde::{Deserialize, Serialize};

/// Number of fixed-width buckets; latencies beyond the last bucket land in
/// an overflow bucket and are reported as the observed maximum.
const BUCKETS: usize = 8192;

/// Width of one bucket, µs (2 ms — avatar frame times are milliseconds and
/// overload queueing reaches seconds, so the histogram covers ~16 s before
/// overflowing).
const BUCKET_WIDTH_US: u64 = 2_000;

/// A latency histogram with `BUCKETS` fixed 2 ms buckets plus overflow.
///
/// Percentiles are read from the cumulative distribution and reported as
/// the upper edge of the bucket where the requested rank falls, which makes
/// `percentile(p)` monotone in `p` by construction (p99 ≥ p95 ≥ p50).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            overflow: 0,
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency observation, µs.
    pub fn record(&mut self, latency_us: u64) {
        let bucket = u64_to_usize(latency_us / BUCKET_WIDTH_US);
        if bucket < BUCKETS {
            self.counts[bucket] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum_us += latency_us;
        self.max_us = self.max_us.max(latency_us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Folds another histogram into this one. Bucket widths are fixed, so
    /// the merge is exact: the merged histogram is identical to recording
    /// both observation streams into one histogram, and its count is the
    /// sum of the two counts.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The `p`-th percentile (0 < p ≤ 100), in milliseconds: the upper edge
    /// of the bucket containing the rank, or the observed maximum for ranks
    /// in the overflow bucket. Returns 0 for an empty histogram.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        debug_assert!(
            p > 0.0 && p <= 100.0,
            "percentile {p} outside the documented domain 0 < p <= 100"
        );
        if self.total == 0 {
            return 0.0;
        }
        let rank = f64_to_u64(((p / 100.0) * u64_to_f64(self.total)).ceil().max(1.0));
        let mut seen = 0;
        for (bucket, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Clamp to the observed maximum so a percentile can never
                // exceed `max_ms` when every observation sits low in its
                // bucket.
                let edge_ms = u64_to_f64((usize_to_u64(bucket) + 1) * BUCKET_WIDTH_US) / 1_000.0;
                return edge_ms.min(self.max_ms());
            }
        }
        self.max_ms()
    }

    /// Mean latency, milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            u64_to_f64(self.sum_us) / u64_to_f64(self.total) / 1_000.0
        }
    }

    /// Maximum observed latency, milliseconds.
    pub fn max_ms(&self) -> f64 {
        u64_to_f64(self.max_us) / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ms(50.0), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for latency_ms in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 200] {
            h.record(latency_ms * 1_000);
        }
        let p50 = h.percentile_ms(50.0);
        let p95 = h.percentile_ms(95.0);
        let p99 = h.percentile_ms(99.0);
        assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");
        assert!(p99 <= h.max_ms() + 2.0);
    }

    #[test]
    fn rank_lands_in_the_right_bucket() {
        let mut h = LatencyHistogram::new();
        // 99 fast observations, one slow outlier.
        for _ in 0..99 {
            h.record(500);
        }
        h.record(100_000);
        assert_eq!(h.percentile_ms(50.0), 2.0); // upper edge of bucket 0
        assert_eq!(h.percentile_ms(99.0), 2.0);
        assert_eq!(h.percentile_ms(100.0), 100.0); // bucket edge clamped to max
    }

    #[test]
    fn percentiles_never_exceed_the_observed_max() {
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(500); // all observations low in bucket 0
        }
        assert_eq!(h.percentile_ms(50.0), 0.5);
        assert_eq!(h.percentile_ms(99.0), 0.5);
    }

    #[test]
    fn overflow_falls_back_to_the_observed_max() {
        let mut h = LatencyHistogram::new();
        h.record(60_000_000); // 60 s, beyond the 16.4 s histogram range
        assert_eq!(h.percentile_ms(99.0), 60_000.0);
        assert_eq!(h.max_ms(), 60_000.0);
    }

    #[test]
    fn merging_equals_recording_both_streams() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for (i, latency_us) in [500u64, 3_000, 7_500, 60_000_000, 12_000]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 {
                left.record(*latency_us);
            } else {
                right.record(*latency_us);
            }
            combined.record(*latency_us);
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, combined);
        assert_eq!(merged.count(), left.count() + right.count());
    }

    // ---- merge-order audit for the parallel engine's tally fold ----
    //
    // The parallel engine accumulates one histogram per worker and folds
    // the worker histograms in whatever order the workers finish their
    // shards on disjoint strides; `finalize` then merges per-shard
    // histograms in shard-id order. Both are only exact because `merge`
    // is a pure element-wise integer add: commutative, associative, with
    // the empty histogram as identity. These tests pin that contract.

    fn shard_histograms() -> Vec<LatencyHistogram> {
        (0..8u64)
            .map(|shard| {
                let mut h = LatencyHistogram::new();
                for i in 0..(shard + 1) * 3 {
                    // A spread per shard: in-range, bucket-boundary and
                    // overflow observations.
                    h.record(shard * 1_999 + i * 977);
                    h.record(BUCKET_WIDTH_US * (shard + i));
                }
                if shard % 3 == 0 {
                    h.record(60_000_000 + shard);
                }
                h
            })
            .collect()
    }

    #[test]
    fn merge_is_commutative() {
        let shards = shard_histograms();
        let mut ab = shards[2].clone();
        ab.merge(&shards[5]);
        let mut ba = shards[5].clone();
        ba.merge(&shards[2]);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let shards = shard_histograms();
        let mut left_first = shards[0].clone();
        left_first.merge(&shards[1]);
        left_first.merge(&shards[2]);
        let mut right_first = shards[1].clone();
        right_first.merge(&shards[2]);
        let mut outer = shards[0].clone();
        outer.merge(&right_first);
        assert_eq!(left_first, outer);
    }

    #[test]
    fn merging_the_empty_histogram_is_identity() {
        let shards = shard_histograms();
        let mut merged = shards[3].clone();
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, shards[3]);
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&shards[3]);
        assert_eq!(from_empty, shards[3]);
    }

    #[test]
    fn merge_order_across_shards_is_irrelevant() {
        // Fold the same eight shard histograms in shard-id order, reverse
        // order and a strided (worker-interleaved) order: identical
        // structs, hence identical percentiles in the merged report.
        let shards = shard_histograms();
        let mut forward = LatencyHistogram::new();
        for h in &shards {
            forward.merge(h);
        }
        let mut reverse = LatencyHistogram::new();
        for h in shards.iter().rev() {
            reverse.merge(h);
        }
        let mut strided = LatencyHistogram::new();
        for worker in 0..3 {
            for h in shards.iter().skip(worker).step_by(3) {
                strided.merge(h);
            }
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward, strided);
        assert_eq!(forward.percentile_ms(99.0), strided.percentile_ms(99.0));
    }

    #[test]
    fn percentile_rank_edges_are_exact() {
        // Four observations, one per bucket: rank edges 25/50/75/100 land
        // exactly on each observation's bucket, and any p in (0, 25] maps
        // to rank 1 (ceil semantics — never rank 0).
        let mut h = LatencyHistogram::new();
        for bucket in 0u64..4 {
            h.record(bucket * BUCKET_WIDTH_US + 1_000);
        }
        assert_eq!(h.percentile_ms(0.1), 2.0);
        assert_eq!(h.percentile_ms(25.0), 2.0);
        assert_eq!(h.percentile_ms(25.1), 4.0);
        assert_eq!(h.percentile_ms(50.0), 4.0);
        assert_eq!(h.percentile_ms(75.0), 6.0);
        assert_eq!(h.percentile_ms(100.0), 7.0); // clamped to the max (7 ms)
    }

    #[test]
    #[should_panic(expected = "outside the documented domain")]
    #[cfg(debug_assertions)]
    fn out_of_domain_percentile_panics_in_debug() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        let _ = h.percentile_ms(0.0);
    }

    #[test]
    #[should_panic(expected = "outside the documented domain")]
    #[cfg(debug_assertions)]
    fn percentile_above_one_hundred_panics_in_debug() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        let _ = h.percentile_ms(100.1);
    }

    #[test]
    fn mean_tracks_the_sum() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        h.record(3_000);
        assert_eq!(h.mean_ms(), 2.0);
    }
}
