//! Serving-run reports: throughput, utilization, drops and latency
//! percentiles, per accelerator and per branch.

use crate::autoscale::{ScaleEvent, ShardState};
use crate::histogram::LatencyHistogram;
use crate::json::{array, JsonObject};
use serde::{Deserialize, Serialize};

/// Latency summary extracted from a fixed-bucket histogram, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Maximum observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Reads the summary out of a histogram.
    pub fn of(histogram: &LatencyHistogram) -> Self {
        Self {
            p50_ms: histogram.percentile_ms(50.0),
            p95_ms: histogram.percentile_ms(95.0),
            p99_ms: histogram.percentile_ms(99.0),
            mean_ms: histogram.mean_ms(),
            max_ms: histogram.max_ms(),
        }
    }
}

/// Serving statistics of one branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchServeStats {
    /// Branch name.
    pub name: String,
    /// Effective priority weight the run used for this branch.
    pub priority: f64,
    /// Requests issued for this branch.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Requests lost to shard failure (orphaned by a dead shard and not
    /// admitted by the balancer's re-placement pick, or arriving while no
    /// shard was placeable).
    pub lost: u64,
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
}

/// Serving statistics of one fleet shard (one accelerator device).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Requests the balancer routed to this shard (admitted + dropped).
    pub issued: u64,
    /// Requests this shard completed.
    pub completed: u64,
    /// Requests dropped at this shard's full queue.
    pub dropped: u64,
    /// The shard's lifecycle state at the end of the run (every shard of
    /// a fixed fleet stays active).
    pub state: ShardState,
    /// This shard's busy time over the fleet makespan (1.0 = busy the
    /// whole run).
    pub utilization: f64,
    /// Latency summary over this shard's completed requests.
    pub latency: LatencySummary,
}

/// The outcome of one serving simulation: one scenario, one scheduler, one
/// fleet of accelerator shards (a single device is the one-shard fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Scheduling discipline name.
    pub scheduler: String,
    /// Load-balancing policy name (`round_robin` for a single device,
    /// where every policy is equivalent).
    pub balancer: String,
    /// Scenario seed (same seed + same scenario ⇒ identical report).
    pub seed: u64,
    /// Concurrent avatar sessions.
    pub sessions: usize,
    /// Requests issued by the generators.
    pub issued: u64,
    /// Requests completed by the accelerator.
    pub completed: u64,
    /// Requests dropped at admission.
    pub dropped: u64,
    /// `dropped / issued` (0 when nothing was issued).
    pub drop_rate: f64,
    /// Time from simulation start (t = 0) to the last completion,
    /// seconds.
    pub makespan_sec: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Mean shard occupancy over the makespan (1.0 = every shard busy the
    /// whole run).
    pub utilization: f64,
    /// Busy-time imbalance across the fleet:
    /// `(max − min) / mean` shard busy time, 0 for a single shard or an
    /// idle fleet. 0 means perfectly even work; 1 means the busiest shard
    /// did a full mean-share more work than the idlest.
    pub imbalance: f64,
    /// Latency summary over all completed requests (the merge of every
    /// shard's histogram).
    pub latency: LatencySummary,
    /// Per-branch statistics, in branch order, merged across shards.
    pub branches: Vec<BranchServeStats>,
    /// Per-shard statistics covering every shard that ever existed, in
    /// spawn order (one entry for a single device; autoscaled runs append
    /// spawned shards after the initial ones).
    pub shards: Vec<ShardStats>,
    /// Requests re-placed onto surviving shards after a failure (each
    /// migration counts once, so a twice-orphaned request counts twice).
    pub replaced: u64,
    /// Requests lost to shard failure: orphaned by a dead shard and not
    /// admitted by the balancer's re-placement pick, or arriving while no
    /// shard was placeable. Load-aware balancers steer re-placement to
    /// queues with space, so their losses mean real exhaustion; static
    /// policies (round-robin, branch-sharded) can lose requests while
    /// capacity remains elsewhere.
    pub lost: u64,
    /// `completed / issued` — the fraction of decode requests that made it
    /// out (1.0 for an empty run). `1 − availability` is the drop rate
    /// plus the loss rate.
    pub availability: f64,
    /// Latency of completions strictly before the first scheduled failure
    /// (all zeros when the run injects no failure).
    pub latency_pre_failure: LatencySummary,
    /// Latency of completions at or after the first scheduled failure
    /// (all zeros when the run injects no failure).
    pub latency_post_failure: LatencySummary,
    /// Fleet lifecycle log — spawns, warm-ups, drains, retirements and
    /// failures in time order; empty for a fixed fleet.
    pub scale_events: Vec<ScaleEvent>,
}

impl ServeReport {
    /// Sanity invariant: every issued request is accounted for — in total
    /// (completed, dropped at admission, or lost to failure), per branch,
    /// and per shard. Every request is routed to exactly one shard's front
    /// door — lost requests to none — so shard totals also sum back to the
    /// fleet totals.
    pub fn conserves_requests(&self) -> bool {
        self.completed + self.dropped + self.lost == self.issued
            && self
                .branches
                .iter()
                .all(|b| b.completed + b.dropped + b.lost == b.issued)
            && self
                .shards
                .iter()
                .all(|s| s.completed + s.dropped == s.issued)
            && self.shards.iter().map(|s| s.issued).sum::<u64>() + self.lost == self.issued
            && self.shards.iter().map(|s| s.completed).sum::<u64>() == self.completed
    }

    /// Number of shards the run used.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Statistics of the branch with the given index.
    pub fn branch(&self, index: usize) -> Option<&BranchServeStats> {
        self.branches.get(index)
    }

    /// Renders the report as one machine-readable JSON line. New fields
    /// are only ever appended at the end of each object, so consumers that
    /// index existing keys (or cut the line positionally up to `shards`)
    /// keep working across format growth.
    pub fn to_json_line(&self) -> String {
        let branches: Vec<String> = self
            .branches
            .iter()
            .map(|b| {
                JsonObject::new()
                    .str("name", &b.name)
                    .f64("priority", b.priority)
                    .u64("issued", b.issued)
                    .u64("completed", b.completed)
                    .u64("dropped", b.dropped)
                    .f64("p50_ms", b.latency.p50_ms)
                    .f64("p99_ms", b.latency.p99_ms)
                    .f64("max_ms", b.latency.max_ms)
                    .u64("lost", b.lost)
                    .render()
            })
            .collect();
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                JsonObject::new()
                    .u64("issued", s.issued)
                    .u64("completed", s.completed)
                    .u64("dropped", s.dropped)
                    .f64("utilization", s.utilization)
                    .f64("p50_ms", s.latency.p50_ms)
                    .f64("p99_ms", s.latency.p99_ms)
                    .f64("max_ms", s.latency.max_ms)
                    .str("state", s.state.name())
                    .render()
            })
            .collect();
        let scale_events: Vec<String> = self
            .scale_events
            .iter()
            .map(|e| {
                JsonObject::new()
                    .f64("at_sec", e.at_sec)
                    .str("kind", e.kind.name())
                    .u64("shard", e.shard as u64)
                    .u64("active_after", e.active_after as u64)
                    .render()
            })
            .collect();
        JsonObject::new()
            .str("scenario", &self.scenario)
            .str("scheduler", &self.scheduler)
            .str("balancer", &self.balancer)
            .u64("seed", self.seed)
            .u64("sessions", self.sessions as u64)
            .u64("issued", self.issued)
            .u64("completed", self.completed)
            .u64("dropped", self.dropped)
            .f64("drop_rate", self.drop_rate)
            .f64("makespan_sec", self.makespan_sec)
            .f64("throughput_rps", self.throughput_rps)
            .f64("utilization", self.utilization)
            .f64("imbalance", self.imbalance)
            .f64("p50_ms", self.latency.p50_ms)
            .f64("p95_ms", self.latency.p95_ms)
            .f64("p99_ms", self.latency.p99_ms)
            .f64("mean_ms", self.latency.mean_ms)
            .f64("max_ms", self.latency.max_ms)
            .raw("branches", &array(&branches))
            .raw("shards", &array(&shards))
            .u64("replaced", self.replaced)
            .u64("lost", self.lost)
            .f64("availability", self.availability)
            .f64("pre_failure_p99_ms", self.latency_pre_failure.p99_ms)
            .f64("post_failure_p99_ms", self.latency_post_failure.p99_ms)
            .raw("scale_events", &array(&scale_events))
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            scenario: "a1_baseline".into(),
            scheduler: "batch".into(),
            balancer: "round_robin".into(),
            seed: 7,
            sessions: 1,
            issued: 10,
            completed: 9,
            dropped: 1,
            drop_rate: 0.1,
            makespan_sec: 1.0,
            throughput_rps: 9.0,
            utilization: 0.5,
            imbalance: 0.0,
            latency: LatencySummary::default(),
            branches: vec![BranchServeStats {
                name: "texture".into(),
                priority: 1.0,
                issued: 10,
                completed: 9,
                dropped: 1,
                lost: 0,
                latency: LatencySummary::default(),
            }],
            shards: vec![ShardStats {
                issued: 10,
                completed: 9,
                dropped: 1,
                state: ShardState::Active,
                utilization: 0.5,
                latency: LatencySummary::default(),
            }],
            replaced: 0,
            lost: 0,
            availability: 0.9,
            latency_pre_failure: LatencySummary::default(),
            latency_post_failure: LatencySummary::default(),
            scale_events: Vec::new(),
        }
    }

    #[test]
    fn conservation_checks_totals_and_branches() {
        let mut r = report();
        assert!(r.conserves_requests());
        r.completed = 8;
        assert!(!r.conserves_requests());
    }

    #[test]
    fn json_line_is_single_line_and_carries_key_fields() {
        let line = report().to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in [
            "\"scenario\":\"a1_baseline\"",
            "\"scheduler\":\"batch\"",
            "\"balancer\":\"round_robin\"",
            "\"issued\":10",
            "\"p99_ms\":",
            "\"imbalance\":",
            "\"branches\":[{",
            "\"shards\":[{",
            "\"replaced\":0",
            "\"lost\":0",
            "\"availability\":0.9000",
            "\"scale_events\":[]",
            "\"state\":\"active\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn conservation_also_checks_the_shard_totals() {
        let mut r = report();
        r.shards[0].completed = 8;
        assert!(!r.conserves_requests(), "shard totals must be checked");
        let mut split = report();
        split.shards[0].issued = 4;
        assert!(
            !split.conserves_requests(),
            "shard issued counts must sum to the fleet total"
        );
    }

    #[test]
    fn conservation_accounts_lost_requests_outside_the_shards() {
        // A request lost at failure belongs to no shard's front door: the
        // fleet totals carry it, the shard sums run `lost` short.
        let mut r = report();
        r.issued = 12;
        r.lost = 2;
        r.branches[0].issued = 12;
        r.branches[0].lost = 2;
        assert!(r.conserves_requests());
        r.lost = 1;
        assert!(!r.conserves_requests(), "fleet lost must match the books");
    }

    #[test]
    fn availability_fields_render_after_the_shard_section() {
        let line = report().to_json_line();
        let shards_at = line.find("\"shards\":[").expect("shards key");
        for key in [
            "\"replaced\":",
            "\"lost\":0,\"availability\":",
            "\"pre_failure_p99_ms\":",
            "\"post_failure_p99_ms\":",
            "\"scale_events\":",
        ] {
            let at = line.rfind(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > shards_at, "{key} must render after the shard list");
        }
    }
}
