//! Serving-run reports: throughput, utilization, drops and latency
//! percentiles, per accelerator and per branch.

use crate::histogram::LatencyHistogram;
use crate::json::{array, JsonObject};
use serde::{Deserialize, Serialize};

/// Latency summary extracted from a fixed-bucket histogram, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Maximum observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Reads the summary out of a histogram.
    pub fn of(histogram: &LatencyHistogram) -> Self {
        Self {
            p50_ms: histogram.percentile_ms(50.0),
            p95_ms: histogram.percentile_ms(95.0),
            p99_ms: histogram.percentile_ms(99.0),
            mean_ms: histogram.mean_ms(),
            max_ms: histogram.max_ms(),
        }
    }
}

/// Serving statistics of one branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchServeStats {
    /// Branch name.
    pub name: String,
    /// Effective priority weight the run used for this branch.
    pub priority: f64,
    /// Requests issued for this branch.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
}

/// Serving statistics of one fleet shard (one accelerator device).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Requests the balancer routed to this shard (admitted + dropped).
    pub issued: u64,
    /// Requests this shard completed.
    pub completed: u64,
    /// Requests dropped at this shard's full queue.
    pub dropped: u64,
    /// This shard's busy time over the fleet makespan (1.0 = busy the
    /// whole run).
    pub utilization: f64,
    /// Latency summary over this shard's completed requests.
    pub latency: LatencySummary,
}

/// The outcome of one serving simulation: one scenario, one scheduler, one
/// fleet of accelerator shards (a single device is the one-shard fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Scheduling discipline name.
    pub scheduler: String,
    /// Load-balancing policy name (`round_robin` for a single device,
    /// where every policy is equivalent).
    pub balancer: String,
    /// Scenario seed (same seed + same scenario ⇒ identical report).
    pub seed: u64,
    /// Concurrent avatar sessions.
    pub sessions: usize,
    /// Requests issued by the generators.
    pub issued: u64,
    /// Requests completed by the accelerator.
    pub completed: u64,
    /// Requests dropped at admission.
    pub dropped: u64,
    /// `dropped / issued` (0 when nothing was issued).
    pub drop_rate: f64,
    /// Time from simulation start (t = 0) to the last completion,
    /// seconds.
    pub makespan_sec: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Mean shard occupancy over the makespan (1.0 = every shard busy the
    /// whole run).
    pub utilization: f64,
    /// Busy-time imbalance across the fleet:
    /// `(max − min) / mean` shard busy time, 0 for a single shard or an
    /// idle fleet. 0 means perfectly even work; 1 means the busiest shard
    /// did a full mean-share more work than the idlest.
    pub imbalance: f64,
    /// Latency summary over all completed requests (the merge of every
    /// shard's histogram).
    pub latency: LatencySummary,
    /// Per-branch statistics, in branch order, merged across shards.
    pub branches: Vec<BranchServeStats>,
    /// Per-shard statistics, in shard order (one entry for a single
    /// device).
    pub shards: Vec<ShardStats>,
}

impl ServeReport {
    /// Sanity invariant: every issued request is accounted for — in total,
    /// per branch, and per shard (every request is routed to exactly one
    /// shard, so shard totals also sum back to the fleet totals).
    pub fn conserves_requests(&self) -> bool {
        self.completed + self.dropped == self.issued
            && self
                .branches
                .iter()
                .all(|b| b.completed + b.dropped == b.issued)
            && self
                .shards
                .iter()
                .all(|s| s.completed + s.dropped == s.issued)
            && self.shards.iter().map(|s| s.issued).sum::<u64>() == self.issued
            && self.shards.iter().map(|s| s.completed).sum::<u64>() == self.completed
    }

    /// Number of shards the run used.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Statistics of the branch with the given index.
    pub fn branch(&self, index: usize) -> Option<&BranchServeStats> {
        self.branches.get(index)
    }

    /// Renders the report as one machine-readable JSON line.
    pub fn to_json_line(&self) -> String {
        let branches: Vec<String> = self
            .branches
            .iter()
            .map(|b| {
                JsonObject::new()
                    .str("name", &b.name)
                    .f64("priority", b.priority)
                    .u64("issued", b.issued)
                    .u64("completed", b.completed)
                    .u64("dropped", b.dropped)
                    .f64("p50_ms", b.latency.p50_ms)
                    .f64("p99_ms", b.latency.p99_ms)
                    .f64("max_ms", b.latency.max_ms)
                    .render()
            })
            .collect();
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                JsonObject::new()
                    .u64("issued", s.issued)
                    .u64("completed", s.completed)
                    .u64("dropped", s.dropped)
                    .f64("utilization", s.utilization)
                    .f64("p50_ms", s.latency.p50_ms)
                    .f64("p99_ms", s.latency.p99_ms)
                    .f64("max_ms", s.latency.max_ms)
                    .render()
            })
            .collect();
        JsonObject::new()
            .str("scenario", &self.scenario)
            .str("scheduler", &self.scheduler)
            .str("balancer", &self.balancer)
            .u64("seed", self.seed)
            .u64("sessions", self.sessions as u64)
            .u64("issued", self.issued)
            .u64("completed", self.completed)
            .u64("dropped", self.dropped)
            .f64("drop_rate", self.drop_rate)
            .f64("makespan_sec", self.makespan_sec)
            .f64("throughput_rps", self.throughput_rps)
            .f64("utilization", self.utilization)
            .f64("imbalance", self.imbalance)
            .f64("p50_ms", self.latency.p50_ms)
            .f64("p95_ms", self.latency.p95_ms)
            .f64("p99_ms", self.latency.p99_ms)
            .f64("mean_ms", self.latency.mean_ms)
            .f64("max_ms", self.latency.max_ms)
            .raw("branches", &array(&branches))
            .raw("shards", &array(&shards))
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            scenario: "a1_baseline".into(),
            scheduler: "batch".into(),
            balancer: "round_robin".into(),
            seed: 7,
            sessions: 1,
            issued: 10,
            completed: 9,
            dropped: 1,
            drop_rate: 0.1,
            makespan_sec: 1.0,
            throughput_rps: 9.0,
            utilization: 0.5,
            imbalance: 0.0,
            latency: LatencySummary::default(),
            branches: vec![BranchServeStats {
                name: "texture".into(),
                priority: 1.0,
                issued: 10,
                completed: 9,
                dropped: 1,
                latency: LatencySummary::default(),
            }],
            shards: vec![ShardStats {
                issued: 10,
                completed: 9,
                dropped: 1,
                utilization: 0.5,
                latency: LatencySummary::default(),
            }],
        }
    }

    #[test]
    fn conservation_checks_totals_and_branches() {
        let mut r = report();
        assert!(r.conserves_requests());
        r.completed = 8;
        assert!(!r.conserves_requests());
    }

    #[test]
    fn json_line_is_single_line_and_carries_key_fields() {
        let line = report().to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in [
            "\"scenario\":\"a1_baseline\"",
            "\"scheduler\":\"batch\"",
            "\"balancer\":\"round_robin\"",
            "\"issued\":10",
            "\"p99_ms\":",
            "\"imbalance\":",
            "\"branches\":[{",
            "\"shards\":[{",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn conservation_also_checks_the_shard_totals() {
        let mut r = report();
        r.shards[0].completed = 8;
        assert!(!r.conserves_requests(), "shard totals must be checked");
        let mut split = report();
        split.shards[0].issued = 4;
        assert!(
            !split.conserves_requests(),
            "shard issued counts must sum to the fleet total"
        );
    }
}
