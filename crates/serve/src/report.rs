//! Serving-run reports: throughput, utilization, drops and latency
//! percentiles, per accelerator and per branch.

use crate::autoscale::{ScaleEvent, ShardState};
use crate::cast::usize_to_u64;
use crate::histogram::LatencyHistogram;
use crate::json::{array, JsonObject};
use crate::qos::QosClass;
use fcad_obs::TraceSummary;
use serde::{Deserialize, Serialize};

/// Latency summary extracted from a fixed-bucket histogram, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Maximum observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Reads the summary out of a histogram.
    pub fn of(histogram: &LatencyHistogram) -> Self {
        Self {
            p50_ms: histogram.percentile_ms(50.0),
            p95_ms: histogram.percentile_ms(95.0),
            p99_ms: histogram.percentile_ms(99.0),
            mean_ms: histogram.mean_ms(),
            max_ms: histogram.max_ms(),
        }
    }
}

/// Serving statistics of one branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchServeStats {
    /// Branch name.
    pub name: String,
    /// Effective priority weight the run used for this branch.
    pub priority: f64,
    /// Requests issued for this branch.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Requests lost to shard failure (orphaned by a dead shard and not
    /// admitted by the balancer's re-placement pick, or arriving while no
    /// shard was placeable).
    pub lost: u64,
    /// Requests shed by the admission controller (0 under admit-all).
    pub shed: u64,
    /// Requests retired in-queue by the deadline policy (0 when the
    /// policy is off — every legacy path).
    pub expired: u64,
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
}

/// Serving statistics of one QoS class, scored against its own budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassServeStats {
    /// The class.
    pub class: QosClass,
    /// The class's latency budget (its SLO), milliseconds.
    pub budget_ms: f64,
    /// The class's scheduling weight.
    pub weight: f64,
    /// Requests issued by sessions of this class.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at a full queue.
    pub dropped: u64,
    /// Requests lost to shard failure.
    pub lost: u64,
    /// Requests shed by the admission controller.
    pub shed: u64,
    /// Requests of this class retired in-queue by the deadline policy.
    pub expired: u64,
    /// Fraction of this class's completed requests that finished within
    /// the class budget. A class that issued traffic but completed
    /// nothing scores 0.0; only a class with no traffic at all scores a
    /// vacuous 1.0.
    pub slo_attainment: f64,
    /// Latency summary over this class's completed requests.
    pub latency: LatencySummary,
}

/// Serving statistics of one fleet shard (one accelerator device).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Requests the balancer routed to this shard (admitted + dropped).
    pub issued: u64,
    /// Requests this shard completed.
    pub completed: u64,
    /// Requests dropped at this shard's full queue.
    pub dropped: u64,
    /// Requests the admission controller shed at this shard's front door.
    pub shed: u64,
    /// Requests retired from this shard's queue by the deadline policy.
    pub expired: u64,
    /// The shard's lifecycle state at the end of the run (every shard of
    /// a fixed fleet stays active).
    pub state: ShardState,
    /// This shard's busy time over the fleet makespan (1.0 = busy the
    /// whole run).
    pub utilization: f64,
    /// Latency summary over this shard's completed requests.
    pub latency: LatencySummary,
}

/// The outcome of one serving simulation: one scenario, one scheduler, one
/// fleet of accelerator shards (a single device is the one-shard fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Scheduling discipline name.
    pub scheduler: String,
    /// Load-balancing policy name (`round_robin` for a single device,
    /// where every policy is equivalent).
    pub balancer: String,
    /// Scenario seed (same seed + same scenario ⇒ identical report).
    pub seed: u64,
    /// Concurrent avatar sessions.
    pub sessions: usize,
    /// Requests issued by the generators.
    pub issued: u64,
    /// Requests completed by the accelerator.
    pub completed: u64,
    /// Requests dropped at admission.
    pub dropped: u64,
    /// `dropped / issued` (0 when nothing was issued).
    pub drop_rate: f64,
    /// Time from simulation start (t = 0) to the last completion,
    /// seconds.
    pub makespan_sec: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Mean shard occupancy over the makespan (1.0 = every shard busy the
    /// whole run).
    pub utilization: f64,
    /// Busy-time imbalance across the fleet:
    /// `(max − min) / mean` shard busy time, 0 for a single shard or an
    /// idle fleet. 0 means perfectly even work; 1 means the busiest shard
    /// did a full mean-share more work than the idlest.
    pub imbalance: f64,
    /// Latency summary over all completed requests (the merge of every
    /// shard's histogram).
    pub latency: LatencySummary,
    /// Per-branch statistics, in branch order, merged across shards.
    pub branches: Vec<BranchServeStats>,
    /// Per-shard statistics covering every shard that ever existed, in
    /// spawn order (one entry for a single device; autoscaled runs append
    /// spawned shards after the initial ones).
    pub shards: Vec<ShardStats>,
    /// Requests re-placed onto surviving shards after a failure (each
    /// migration counts once, so a twice-orphaned request counts twice).
    pub replaced: u64,
    /// Requests lost to shard failure: orphaned by a dead shard and not
    /// admitted by the balancer's re-placement pick, or arriving while no
    /// shard was placeable. Load-aware balancers steer re-placement to
    /// queues with space, so their losses mean real exhaustion; static
    /// policies (round-robin, branch-sharded) can lose requests while
    /// capacity remains elsewhere.
    pub lost: u64,
    /// `completed / issued` — the fraction of decode requests that made it
    /// out (1.0 for an empty run). `1 − availability` is the drop rate
    /// plus the loss rate.
    pub availability: f64,
    /// Latency of completions strictly before the first scheduled failure
    /// (all zeros when the run injects no failure).
    pub latency_pre_failure: LatencySummary,
    /// Latency of completions at or after the first scheduled failure
    /// (all zeros when the run injects no failure).
    pub latency_post_failure: LatencySummary,
    /// Fleet lifecycle log — spawns, warm-ups, drains, retirements and
    /// failures in time order; empty for a fixed fleet.
    pub scale_events: Vec<ScaleEvent>,
    /// Requests shed by the admission controller — the fourth terminal
    /// outcome: `completed + dropped + lost + shed == issued`. Always 0
    /// under admit-all (the legacy paths).
    pub shed: u64,
    /// Admission policy name (`admit_all` on the legacy paths).
    pub admission: String,
    /// Fraction of completed requests that finished within their class
    /// budget. A run that issued traffic but completed nothing scores
    /// 0.0; only a run with no traffic at all scores a vacuous 1.0. The
    /// SLO headline: policies are compared on this, not raw p99.
    pub slo_attainment: f64,
    /// Per-class statistics, in [`QosClass::all`] order (a classless run
    /// carries everything in the `standard` row).
    pub classes: Vec<ClassServeStats>,
    /// Requests retired in-queue by the deadline policy — the fifth
    /// terminal outcome, distinct from `shed` (rejected *before* the
    /// queue): `completed + dropped + lost + shed + expired == issued`.
    /// Always 0 when [`DeadlinePolicy::Off`](crate::DeadlinePolicy::Off)
    /// — every legacy path.
    pub expired: u64,
    /// Total fabric busy time summed over shards, microseconds — the
    /// denominator for SLO-per-busy-time comparisons.
    pub fabric_busy_us: u64,
    /// `slo_attainment` per second of fabric busy time — how much SLO a
    /// discipline buys per unit of fabric it burns (0 for an idle run).
    /// Culling expired work raises this even when raw attainment ties.
    pub slo_per_busy_sec: f64,
    /// Event counts of the trace captured alongside this run, when the
    /// caller attached a recording sink via [`with_trace_summary`]
    /// (`None` otherwise — the engine itself never sets it, so traced and
    /// untraced runs of the same scenario stay byte-identical).
    ///
    /// [`with_trace_summary`]: ServeReport::with_trace_summary
    pub trace_summary: Option<TraceSummary>,
}

impl ServeReport {
    /// Sanity invariant: every issued request is accounted for — in total
    /// (completed, dropped at a full queue, lost to failure, or shed by
    /// admission), per branch, per QoS class, and per shard. Every
    /// request is routed to exactly one shard's front door — lost
    /// requests to none — so shard totals also sum back to the fleet
    /// totals, and the class rows partition every fleet counter.
    pub fn conserves_requests(&self) -> bool {
        let sums = |f: fn(&ClassServeStats) -> u64| self.classes.iter().map(f).sum::<u64>();
        self.completed + self.dropped + self.lost + self.shed + self.expired == self.issued
            && self
                .branches
                .iter()
                .all(|b| b.completed + b.dropped + b.lost + b.shed + b.expired == b.issued)
            && self
                .classes
                .iter()
                .all(|c| c.completed + c.dropped + c.lost + c.shed + c.expired == c.issued)
            && sums(|c| c.issued) == self.issued
            && sums(|c| c.completed) == self.completed
            && sums(|c| c.dropped) == self.dropped
            && sums(|c| c.lost) == self.lost
            && sums(|c| c.shed) == self.shed
            && sums(|c| c.expired) == self.expired
            && self
                .shards
                .iter()
                .all(|s| s.completed + s.dropped + s.shed + s.expired == s.issued)
            && self.shards.iter().map(|s| s.issued).sum::<u64>() + self.lost == self.issued
            && self.shards.iter().map(|s| s.completed).sum::<u64>() == self.completed
    }

    /// Number of shards the run used.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Statistics of the branch with the given index.
    pub fn branch(&self, index: usize) -> Option<&BranchServeStats> {
        self.branches.get(index)
    }

    /// Statistics of one QoS class.
    pub fn class(&self, class: QosClass) -> Option<&ClassServeStats> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Attaches the summary of the trace recorded alongside this run, so
    /// the JSON line documents how many events the sink captured.
    pub fn with_trace_summary(mut self, summary: TraceSummary) -> Self {
        self.trace_summary = Some(summary);
        self
    }

    /// Renders the report as one machine-readable JSON line. New fields
    /// are only ever appended at the end of each object, so consumers that
    /// index existing keys (or cut the line positionally up to `shards`)
    /// keep working across format growth.
    pub fn to_json_line(&self) -> String {
        let branches: Vec<String> = self
            .branches
            .iter()
            .map(|b| {
                JsonObject::new()
                    .str("name", &b.name)
                    .f64("priority", b.priority)
                    .u64("issued", b.issued)
                    .u64("completed", b.completed)
                    .u64("dropped", b.dropped)
                    .f64("p50_ms", b.latency.p50_ms)
                    .f64("p99_ms", b.latency.p99_ms)
                    .f64("max_ms", b.latency.max_ms)
                    .u64("lost", b.lost)
                    .u64("shed", b.shed)
                    .u64("expired", b.expired)
                    .render()
            })
            .collect();
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                JsonObject::new()
                    .u64("issued", s.issued)
                    .u64("completed", s.completed)
                    .u64("dropped", s.dropped)
                    .f64("utilization", s.utilization)
                    .f64("p50_ms", s.latency.p50_ms)
                    .f64("p99_ms", s.latency.p99_ms)
                    .f64("max_ms", s.latency.max_ms)
                    .str("state", s.state.name())
                    .u64("shed", s.shed)
                    .u64("expired", s.expired)
                    .render()
            })
            .collect();
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                JsonObject::new()
                    .str("class", c.class.name())
                    .f64("budget_ms", c.budget_ms)
                    .f64("weight", c.weight)
                    .u64("issued", c.issued)
                    .u64("completed", c.completed)
                    .u64("dropped", c.dropped)
                    .u64("lost", c.lost)
                    .u64("shed", c.shed)
                    .f64("slo_attainment", c.slo_attainment)
                    .f64("p50_ms", c.latency.p50_ms)
                    .f64("p99_ms", c.latency.p99_ms)
                    .f64("max_ms", c.latency.max_ms)
                    .u64("expired", c.expired)
                    .render()
            })
            .collect();
        let scale_events: Vec<String> = self
            .scale_events
            .iter()
            .map(|e| {
                JsonObject::new()
                    .f64("at_sec", e.at_sec)
                    .str("kind", e.kind.name())
                    .u64("shard", usize_to_u64(e.shard))
                    .u64("active_after", usize_to_u64(e.active_after))
                    .render()
            })
            .collect();
        let trace_summary = self.trace_summary.as_ref().map(|t| {
            JsonObject::new()
                .u64("events", t.events)
                .u64("request_events", t.request_events)
                .u64("batch_events", t.batch_events)
                .u64("fleet_events", t.fleet_events)
                .render()
        });
        let mut line = JsonObject::new()
            .str("scenario", &self.scenario)
            .str("scheduler", &self.scheduler)
            .str("balancer", &self.balancer)
            .u64("seed", self.seed)
            .u64("sessions", usize_to_u64(self.sessions))
            .u64("issued", self.issued)
            .u64("completed", self.completed)
            .u64("dropped", self.dropped)
            .f64("drop_rate", self.drop_rate)
            .f64("makespan_sec", self.makespan_sec)
            .f64("throughput_rps", self.throughput_rps)
            .f64("utilization", self.utilization)
            .f64("imbalance", self.imbalance)
            .f64("p50_ms", self.latency.p50_ms)
            .f64("p95_ms", self.latency.p95_ms)
            .f64("p99_ms", self.latency.p99_ms)
            .f64("mean_ms", self.latency.mean_ms)
            .f64("max_ms", self.latency.max_ms)
            .raw("branches", &array(&branches))
            .raw("shards", &array(&shards))
            .u64("replaced", self.replaced)
            .u64("lost", self.lost)
            .f64("availability", self.availability)
            .f64("pre_failure_p99_ms", self.latency_pre_failure.p99_ms)
            .f64("post_failure_p99_ms", self.latency_post_failure.p99_ms)
            .raw("scale_events", &array(&scale_events))
            .u64("shed", self.shed)
            .str("admission", &self.admission)
            .f64("slo_attainment", self.slo_attainment)
            .raw("classes", &array(&classes))
            .u64("expired", self.expired)
            .u64("fabric_busy_us", self.fabric_busy_us)
            .f64("slo_per_busy_sec", self.slo_per_busy_sec);
        // Optional tail: appended strictly after every unconditional key,
        // so untraced lines are byte-identical to the pre-tracing format.
        if let Some(trace) = trace_summary {
            line = line.raw("trace_summary", &trace);
        }
        line.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            scenario: "a1_baseline".into(),
            scheduler: "batch".into(),
            balancer: "round_robin".into(),
            seed: 7,
            sessions: 1,
            issued: 10,
            completed: 9,
            dropped: 1,
            drop_rate: 0.1,
            makespan_sec: 1.0,
            throughput_rps: 9.0,
            utilization: 0.5,
            imbalance: 0.0,
            latency: LatencySummary::default(),
            branches: vec![BranchServeStats {
                name: "texture".into(),
                priority: 1.0,
                issued: 10,
                completed: 9,
                dropped: 1,
                lost: 0,
                shed: 0,
                expired: 0,
                latency: LatencySummary::default(),
            }],
            shards: vec![ShardStats {
                issued: 10,
                completed: 9,
                dropped: 1,
                shed: 0,
                expired: 0,
                state: ShardState::Active,
                utilization: 0.5,
                latency: LatencySummary::default(),
            }],
            replaced: 0,
            lost: 0,
            availability: 0.9,
            latency_pre_failure: LatencySummary::default(),
            latency_post_failure: LatencySummary::default(),
            scale_events: Vec::new(),
            shed: 0,
            admission: "admit_all".into(),
            slo_attainment: 1.0,
            classes: standard_only_classes(10, 9, 1, 0, 0),
            expired: 0,
            fabric_busy_us: 500_000,
            slo_per_busy_sec: 2.0,
            trace_summary: None,
        }
    }

    /// Class rows with everything in the `standard` row — the shape every
    /// classless run reports.
    fn standard_only_classes(
        issued: u64,
        completed: u64,
        dropped: u64,
        lost: u64,
        shed: u64,
    ) -> Vec<ClassServeStats> {
        QosClass::all()
            .iter()
            .map(|class| {
                let hit = *class == QosClass::Standard;
                ClassServeStats {
                    class: *class,
                    budget_ms: class.budget_ms(),
                    weight: class.weight(),
                    issued: if hit { issued } else { 0 },
                    completed: if hit { completed } else { 0 },
                    dropped: if hit { dropped } else { 0 },
                    lost: if hit { lost } else { 0 },
                    shed: if hit { shed } else { 0 },
                    expired: 0,
                    slo_attainment: 1.0,
                    latency: LatencySummary::default(),
                }
            })
            .collect()
    }

    #[test]
    fn conservation_checks_totals_and_branches() {
        let mut r = report();
        assert!(r.conserves_requests());
        r.completed = 8;
        assert!(!r.conserves_requests());
    }

    #[test]
    fn json_line_is_single_line_and_carries_key_fields() {
        let line = report().to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in [
            "\"scenario\":\"a1_baseline\"",
            "\"scheduler\":\"batch\"",
            "\"balancer\":\"round_robin\"",
            "\"issued\":10",
            "\"p99_ms\":",
            "\"imbalance\":",
            "\"branches\":[{",
            "\"shards\":[{",
            "\"replaced\":0",
            "\"lost\":0",
            "\"availability\":0.9000",
            "\"scale_events\":[]",
            "\"state\":\"active\"",
            "\"shed\":0",
            "\"admission\":\"admit_all\"",
            "\"slo_attainment\":1.0000",
            "\"classes\":[{\"class\":\"interactive\"",
            "\"budget_ms\":400.0000",
            "\"weight\":0.2500",
            "\"expired\":0",
            "\"fabric_busy_us\":500000",
            "\"slo_per_busy_sec\":2.0000",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn conservation_also_checks_the_shard_totals() {
        let mut r = report();
        r.shards[0].completed = 8;
        assert!(!r.conserves_requests(), "shard totals must be checked");
        let mut split = report();
        split.shards[0].issued = 4;
        assert!(
            !split.conserves_requests(),
            "shard issued counts must sum to the fleet total"
        );
    }

    #[test]
    fn conservation_accounts_lost_requests_outside_the_shards() {
        // A request lost at failure belongs to no shard's front door: the
        // fleet totals carry it, the shard sums run `lost` short.
        let mut r = report();
        r.issued = 12;
        r.lost = 2;
        r.branches[0].issued = 12;
        r.branches[0].lost = 2;
        r.classes[1].issued = 12;
        r.classes[1].lost = 2;
        assert!(r.conserves_requests());
        r.lost = 1;
        assert!(!r.conserves_requests(), "fleet lost must match the books");
    }

    #[test]
    fn availability_fields_render_after_the_shard_section() {
        let line = report().to_json_line();
        let shards_at = line.find("\"shards\":[").expect("shards key");
        for key in [
            "\"replaced\":",
            "\"lost\":0,\"availability\":",
            "\"pre_failure_p99_ms\":",
            "\"post_failure_p99_ms\":",
            "\"scale_events\":",
        ] {
            let at = line.rfind(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > shards_at, "{key} must render after the shard list");
        }
    }

    #[test]
    fn qos_fields_render_after_the_availability_tail() {
        // Append-only growth: the QoS section comes after everything the
        // availability refactor appended.
        let line = report().to_json_line();
        let events_at = line.rfind("\"scale_events\":").expect("scale_events");
        for key in ["\"admission\":", "\"slo_attainment\":", "\"classes\":["] {
            let at = line.rfind(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > events_at, "{key} must render after the event log");
        }
    }

    #[test]
    fn conservation_checks_the_class_partition() {
        // Class rows must partition every fleet counter…
        let mut r = report();
        r.classes[1].issued = 9;
        r.classes[1].completed = 8;
        assert!(!r.conserves_requests(), "class sums must match the totals");
        // …and balance internally.
        let mut r = report();
        r.classes[1].completed = 8;
        r.classes[0].completed = 1;
        assert!(
            !r.conserves_requests(),
            "per-class books must balance even when the sums do"
        );
        // Shed requests are part of the partition.
        let mut r = report();
        r.issued = 12;
        r.shed = 2;
        r.branches[0].issued = 12;
        r.branches[0].shed = 2;
        r.shards[0].issued = 12;
        r.shards[0].shed = 2;
        r.classes[1].issued = 12;
        r.classes[1].shed = 2;
        assert!(r.conserves_requests());
        r.shards[0].shed = 1;
        assert!(!r.conserves_requests(), "shard shed must match its books");
    }

    #[test]
    fn conservation_checks_the_fifth_outcome() {
        // Expired requests balance the books at every level…
        let mut r = report();
        r.issued = 12;
        r.expired = 2;
        r.branches[0].issued = 12;
        r.branches[0].expired = 2;
        r.shards[0].issued = 12;
        r.shards[0].expired = 2;
        r.classes[1].issued = 12;
        r.classes[1].expired = 2;
        assert!(r.conserves_requests());
        // …and every level is audited independently.
        r.shards[0].expired = 1;
        assert!(
            !r.conserves_requests(),
            "shard expired must match its books"
        );
        let mut r = report();
        r.expired = 1;
        assert!(
            !r.conserves_requests(),
            "fleet expired must match the books"
        );
    }

    #[test]
    fn deadline_fields_render_after_the_qos_tail() {
        // Append-only growth: the deadline section comes after everything
        // the QoS refactor appended, and before the optional trace tail.
        let line = report().to_json_line();
        let classes_at = line.rfind("\"classes\":[").expect("classes");
        for key in ["\"expired\":0,\"fabric_busy_us\":", "\"slo_per_busy_sec\":"] {
            let at = line.rfind(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > classes_at, "{key} must render after the class list");
        }
        assert!(line.ends_with("\"slo_per_busy_sec\":2.0000}"));
    }

    #[test]
    fn trace_summary_is_absent_by_default_and_renders_last() {
        let line = report().to_json_line();
        assert!(
            !line.contains("trace_summary"),
            "untraced reports must not mention the trace at all"
        );
        let traced = report()
            .with_trace_summary(TraceSummary {
                events: 42,
                request_events: 30,
                batch_events: 10,
                fleet_events: 2,
            })
            .to_json_line();
        assert!(traced.ends_with(
            "\"trace_summary\":{\"events\":42,\"request_events\":30,\
             \"batch_events\":10,\"fleet_events\":2}}"
        ));
    }

    #[test]
    fn class_lookup_finds_each_row() {
        let r = report();
        assert_eq!(
            r.class(QosClass::Standard).expect("standard row").issued,
            10
        );
        assert_eq!(
            r.class(QosClass::Interactive)
                .expect("interactive row")
                .issued,
            0
        );
    }
}
