//! Serving-run reports: throughput, utilization, drops and latency
//! percentiles, per accelerator and per branch.

use crate::histogram::LatencyHistogram;
use crate::json::{array, JsonObject};
use serde::{Deserialize, Serialize};

/// Latency summary extracted from a fixed-bucket histogram, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Maximum observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Reads the summary out of a histogram.
    pub fn of(histogram: &LatencyHistogram) -> Self {
        Self {
            p50_ms: histogram.percentile_ms(50.0),
            p95_ms: histogram.percentile_ms(95.0),
            p99_ms: histogram.percentile_ms(99.0),
            mean_ms: histogram.mean_ms(),
            max_ms: histogram.max_ms(),
        }
    }
}

/// Serving statistics of one branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchServeStats {
    /// Branch name.
    pub name: String,
    /// Effective priority weight the run used for this branch.
    pub priority: f64,
    /// Requests issued for this branch.
    pub issued: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped at admission (queue full).
    pub dropped: u64,
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
}

/// The outcome of one serving simulation: one scenario, one scheduler, one
/// accelerator service model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Scheduling discipline name.
    pub scheduler: String,
    /// Scenario seed (same seed + same scenario ⇒ identical report).
    pub seed: u64,
    /// Concurrent avatar sessions.
    pub sessions: usize,
    /// Requests issued by the generators.
    pub issued: u64,
    /// Requests completed by the accelerator.
    pub completed: u64,
    /// Requests dropped at admission.
    pub dropped: u64,
    /// `dropped / issued` (0 when nothing was issued).
    pub drop_rate: f64,
    /// Time from simulation start (t = 0) to the last completion,
    /// seconds.
    pub makespan_sec: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Mean branch-pipeline occupancy over the makespan (1.0 = every
    /// pipeline busy the whole run).
    pub utilization: f64,
    /// Latency summary over all completed requests.
    pub latency: LatencySummary,
    /// Per-branch statistics, in branch order.
    pub branches: Vec<BranchServeStats>,
}

impl ServeReport {
    /// Sanity invariant: every issued request is accounted for.
    pub fn conserves_requests(&self) -> bool {
        self.completed + self.dropped == self.issued
            && self
                .branches
                .iter()
                .all(|b| b.completed + b.dropped == b.issued)
    }

    /// Statistics of the branch with the given index.
    pub fn branch(&self, index: usize) -> Option<&BranchServeStats> {
        self.branches.get(index)
    }

    /// Renders the report as one machine-readable JSON line.
    pub fn to_json_line(&self) -> String {
        let branches: Vec<String> = self
            .branches
            .iter()
            .map(|b| {
                JsonObject::new()
                    .str("name", &b.name)
                    .f64("priority", b.priority)
                    .u64("issued", b.issued)
                    .u64("completed", b.completed)
                    .u64("dropped", b.dropped)
                    .f64("p50_ms", b.latency.p50_ms)
                    .f64("p99_ms", b.latency.p99_ms)
                    .f64("max_ms", b.latency.max_ms)
                    .render()
            })
            .collect();
        JsonObject::new()
            .str("scenario", &self.scenario)
            .str("scheduler", &self.scheduler)
            .u64("seed", self.seed)
            .u64("sessions", self.sessions as u64)
            .u64("issued", self.issued)
            .u64("completed", self.completed)
            .u64("dropped", self.dropped)
            .f64("drop_rate", self.drop_rate)
            .f64("makespan_sec", self.makespan_sec)
            .f64("throughput_rps", self.throughput_rps)
            .f64("utilization", self.utilization)
            .f64("p50_ms", self.latency.p50_ms)
            .f64("p95_ms", self.latency.p95_ms)
            .f64("p99_ms", self.latency.p99_ms)
            .f64("mean_ms", self.latency.mean_ms)
            .f64("max_ms", self.latency.max_ms)
            .raw("branches", &array(&branches))
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            scenario: "a1_baseline".into(),
            scheduler: "batch".into(),
            seed: 7,
            sessions: 1,
            issued: 10,
            completed: 9,
            dropped: 1,
            drop_rate: 0.1,
            makespan_sec: 1.0,
            throughput_rps: 9.0,
            utilization: 0.5,
            latency: LatencySummary::default(),
            branches: vec![BranchServeStats {
                name: "texture".into(),
                priority: 1.0,
                issued: 10,
                completed: 9,
                dropped: 1,
                latency: LatencySummary::default(),
            }],
        }
    }

    #[test]
    fn conservation_checks_totals_and_branches() {
        let mut r = report();
        assert!(r.conserves_requests());
        r.completed = 8;
        assert!(!r.conserves_requests());
    }

    #[test]
    fn json_line_is_single_line_and_carries_key_fields() {
        let line = report().to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in [
            "\"scenario\":\"a1_baseline\"",
            "\"scheduler\":\"batch\"",
            "\"issued\":10",
            "\"p99_ms\":",
            "\"branches\":[{",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}
