//! Indexed event calendar: the binary min-heap driving the rebuilt engine.
//!
//! The pre-rebuild loop (frozen in [`crate::reference`]) found its next
//! event by scanning every shard and every pending lifecycle entry each
//! iteration — O(shards) per event. The calendar replaces those scans
//! with a single heap ordered by an explicit five-part key, so the next
//! event is an O(log n) pop regardless of fleet size.
//!
//! Determinism is carried entirely by the key, never by heap internals:
//!
//! 1. `at_us` — the simulation instant.
//! 2. `lane` — the event family, encoding the engine's fixed tie order at
//!    equal instants: lifecycle ([`LANE_LIFECYCLE`] = 0) fires before
//!    arrivals ([`LANE_ARRIVAL`] = 1), which fire before dispatches
//!    ([`LANE_DISPATCH`] = 2). This reproduces the frozen loop's
//!    `life_at <= arrival_at.min(dispatch_at)` and
//!    `arrival_at <= dispatch_at` tie rules exactly.
//! 3. `a` / `b` — in-lane tiebreaks: `(rank, seq)` for lifecycle events
//!    (Fail < Drain < Warm < IdleCheck, then scheduling order) and
//!    `(shard, epoch)` for dispatches (lowest shard id wins a tie, as the
//!    frozen `(dispatch_at, index).min()` scan did).
//! 4. `seq` — an insertion counter assigned by the calendar itself, making
//!    the order *total*: entries that tie on all four caller-supplied
//!    fields pop in push order. No comparison ever falls through to heap
//!    internals, so the pop sequence is a pure function of the push
//!    sequence.
//!
//! Arrivals never enter the heap: the scenario pre-sorts them, so the
//! engine keeps a cursor and compares the heap front against the next
//! arrival as an implicit `(issued_at_us, LANE_ARRIVAL)` key. Stale
//! dispatch entries (superseded by a later queue change) are detected by
//! their `epoch` field and discarded lazily at pop time.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Lane for shard lifecycle events (fail / drain / warm / idle-check);
/// wins every same-instant tie.
pub const LANE_LIFECYCLE: u8 = 0;
/// Implicit lane for arrivals; the arrival cursor is compared against the
/// heap as `(issued_at_us, LANE_ARRIVAL, 0, 0)`.
pub const LANE_ARRIVAL: u8 = 1;
/// Lane for shard dispatch events; loses every same-instant tie.
pub const LANE_DISPATCH: u8 = 2;

/// The five-part ordering key of a calendar entry. Lexicographic `Ord`:
/// `(at_us, lane, a, b, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulation instant in microseconds.
    pub at_us: u64,
    /// Event family; see the [`LANE_LIFECYCLE`] / [`LANE_ARRIVAL`] /
    /// [`LANE_DISPATCH`] constants.
    pub lane: u8,
    /// First in-lane tiebreak (lifecycle rank, or dispatch shard id).
    pub a: u64,
    /// Second in-lane tiebreak (lifecycle seq, or dispatch epoch).
    pub b: u64,
    /// Calendar-assigned insertion counter; makes the order total and
    /// push-order stable under full ties.
    pub seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    key: EventKey,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic event calendar: a binary min-heap over [`EventKey`]
/// with calendar-assigned insertion sequencing.
///
/// `T` is the event payload; it never participates in ordering.
#[derive(Debug)]
pub struct Calendar<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for Calendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Calendar<T> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty calendar with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` under `(at_us, lane, a, b)`; the calendar
    /// appends its own insertion counter as the final tiebreak and
    /// returns the complete key.
    pub fn push(&mut self, at_us: u64, lane: u8, a: u64, b: u64, payload: T) -> EventKey {
        let key = EventKey {
            at_us,
            lane,
            a,
            b,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, payload }));
        key
    }

    /// The key of the earliest pending entry, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(entry)| entry.key)
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        self.heap
            .pop()
            .map(|Reverse(entry)| (entry.key, entry.payload))
    }

    /// The earliest `at_us` among pending entries in `lane`, if any — an
    /// O(n) scan over the heap's backing storage. The windowed parallel
    /// engine calls this once per window to find the next lifecycle
    /// coupling point; lifecycle entries are never lazily invalidated, so
    /// the answer needs no epoch filtering for [`LANE_LIFECYCLE`].
    pub fn earliest_in_lane(&self, lane: u8) -> Option<u64> {
        self.heap
            .iter()
            .filter(|Reverse(entry)| entry.key.lane == lane)
            .map(|Reverse(entry)| entry.key.at_us)
            .min()
    }

    /// Number of pending entries (including any lazily-invalidated ones
    /// the caller has yet to discard).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order_across_lanes() {
        let mut calendar = Calendar::new();
        calendar.push(10, LANE_DISPATCH, 0, 0, "dispatch@10");
        calendar.push(10, LANE_LIFECYCLE, 0, 0, "life@10");
        calendar.push(5, LANE_DISPATCH, 3, 0, "dispatch@5");
        assert_eq!(calendar.pop().map(|(_, p)| p), Some("dispatch@5"));
        assert_eq!(calendar.pop().map(|(_, p)| p), Some("life@10"));
        assert_eq!(calendar.pop().map(|(_, p)| p), Some("dispatch@10"));
        assert!(calendar.pop().is_none());
    }

    #[test]
    fn full_ties_pop_in_push_order() {
        let mut calendar = Calendar::new();
        for label in 0..100u64 {
            calendar.push(7, LANE_DISPATCH, 2, 1, label);
        }
        for expect in 0..100u64 {
            let (key, label) = calendar.pop().expect("entry pending");
            assert_eq!(label, expect);
            assert_eq!(key.seq, expect);
        }
    }

    #[test]
    fn lane_breaks_same_instant_ties_lifecycle_first() {
        let mut calendar = Calendar::new();
        calendar.push(42, LANE_DISPATCH, 0, 0, 'd');
        calendar.push(42, LANE_LIFECYCLE, 3, 9, 'l');
        let key = calendar.peek_key().expect("entry pending");
        assert_eq!((key.at_us, key.lane), (42, LANE_LIFECYCLE));
        assert_eq!(calendar.pop().map(|(_, p)| p), Some('l'));
        assert_eq!(calendar.pop().map(|(_, p)| p), Some('d'));
    }

    #[test]
    fn dispatch_ties_break_on_lowest_shard() {
        let mut calendar = Calendar::new();
        calendar.push(100, LANE_DISPATCH, 5, 0, 5usize);
        calendar.push(100, LANE_DISPATCH, 1, 0, 1usize);
        calendar.push(100, LANE_DISPATCH, 3, 0, 3usize);
        let order: Vec<usize> = std::iter::from_fn(|| calendar.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
