//! Time-windowed parallel execution for *coupled* fleets: autoscaled,
//! failure-injected and admission-shedding runs spread across worker
//! threads, bit-identical to the sequential calendar engine.
//!
//! [`crate::parallel`] decomposes the static corner — an all-Active fleet
//! under a load-oblivious balancer — by partitioning the entire arrival
//! stream up front. Coupled configurations cannot decompose that way:
//! lifecycle events (spawn / warm / drain / fail), autoscale trigger
//! evaluations and orphan re-placement all read or write **cross-shard**
//! state, so their ordering against every other event is load-bearing.
//!
//! The windowed engine runs the *same* [`EngineCore`] the sequential
//! engine runs, but drives it in two alternating modes:
//!
//! 1. **Sequential spans.** Every event that touches cross-shard state is
//!    processed by [`EngineCore::step`] on the coordinator thread — the
//!    exact code path `run()` takes, so the interleaving is the
//!    sequential one by construction.
//! 2. **Parallel windows.** Between those events the fleet is *quiescent*:
//!    no lifecycle event is pending before a provable horizon, placement
//!    is pure cursor arithmetic over a frozen placeable snapshot, and no
//!    autoscale trigger can fire ([`EngineCore::quiescent_horizon`]
//!    proves all three). Within `[start, horizon)` every shard's events
//!    are then independent, so the coordinator pre-places the window's
//!    arrivals (advancing the real balancer cursor), fans the shards out
//!    across `std::thread::scope` workers, and at the window edge
//!    barriers and re-derives exactly the cross-shard state the
//!    sequential engine would hold: queue totals, refreshed dispatch
//!    calendar entries, merged tallies and the sorted trace stream.
//!
//! **Window-edge pinning rules** (what forces a window to end):
//!
//! - the earliest pending lifecycle event — scheduled kill, drain,
//!   warm-up completion or idle check (idle-retirement runs disable
//!   windows outright: in-window dispatches would need to *schedule* new
//!   idle checks, a cross-shard calendar write);
//! - an armed queue-depth autoscale trigger: windows may not extend past
//!   `last_scale_up + cooldown`, the first instant the trigger could
//!   fire again (before the first spawn no bound exists, so execution
//!   stays sequential while the trigger is armed);
//! - a configured p99 trigger pins everything — its rolling latency
//!   window is global per-completion state — until the fleet is
//!   provably terminal (at `max_shards` with no lifecycle pending), after
//!   which the trigger is dead and windows reopen;
//! - the plan's `window_us` chunk size, bounding memory and barrier
//!   latency when no coupling event is pending at all.
//!
//! **What still falls back to the fully sequential engine and why:**
//! load-aware balancers (least-loaded, affinity-with-spill) read every
//! shard's live load *per arrival*, so each placement is itself a
//! cross-shard read and no window can open; a speculative
//! run-and-rollback scheme for those is the ROADMAP follow-on. One-shard
//! fleets and `workers <= 1` also run sequentially.
//!
//! Identical inputs produce **byte-identical** reports and recorder
//! streams at every worker count — pinned across the coupled grid
//! (balancer × {static, autoscaled, failure-injected} × admission ×
//! deadline × workers) by `tests/engine_equivalence.rs` and the
//! worker-count invariance proptests.

use fcad_obs::{BatchEvent, Off, RequestEventKind, TraceEvent, TraceSink};

use crate::admission::{admit_traced, AdmissionController, AdmissionKind};
use crate::autoscale::{Autoscaler, FailurePlan, ShardState};
use crate::calendar::{LANE_ARRIVAL, LANE_DISPATCH, LANE_LIFECYCLE};
use crate::cast::{u64_to_usize, usize_to_u64};
use crate::deadline::DeadlinePolicy;
use crate::engine::{refresh_dispatch, run, EngineCore, Shard, Tally};
use crate::fleet::{FleetConfig, LoadBalancerKind};
use crate::parallel::{StepKey, StepSink};
use crate::report::ServeReport;
use crate::request::Request;
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

/// Tuning knobs for windowed parallel execution. The plan never affects
/// results — only how much of the run executes in parallel windows
/// versus sequential spans.
#[derive(Debug, Clone, Copy)]
pub struct WindowPlan {
    /// Worker threads for the in-window fan-out; `<= 1` runs the whole
    /// simulation sequentially.
    pub workers: usize,
    /// Maximum window length in microseconds of simulated time; windows
    /// end earlier at any pinned edge (lifecycle event, armed trigger
    /// gate).
    pub window_us: u64,
    /// Minimum in-window workload (pending arrivals plus queued requests)
    /// worth a thread fan-out; smaller windows execute sequentially.
    pub min_parallel_events: usize,
}

impl WindowPlan {
    /// A plan with `workers` threads and the default window shape
    /// (100 ms windows, 128-event fan-out threshold).
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            window_us: 100_000,
            min_parallel_events: 128,
        }
    }

    /// Replaces the maximum window length (must be non-zero).
    pub fn with_window_us(mut self, window_us: u64) -> Self {
        assert!(window_us > 0, "a window must span at least 1 us");
        self.window_us = window_us;
        self
    }

    /// Replaces the fan-out threshold.
    pub fn with_min_parallel_events(mut self, min_parallel_events: usize) -> Self {
        self.min_parallel_events = min_parallel_events;
        self
    }
}

/// [`crate::engine::simulate_autoscaled_deadline`] — the full coupled
/// stack: QoS classes, admission shedding, autoscaling, failure injection
/// and deadline culling — executed with windowed parallelism.
///
/// Identical inputs produce a report byte-identical to the sequential
/// engine at every worker count; configurations outside the windowed
/// regime (see the module docs) run the sequential loop directly.
#[allow(clippy::too_many_arguments)]
pub fn simulate_windowed(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
    plan: &WindowPlan,
) -> ServeReport {
    simulate_windowed_traced(
        config, scenario, kind, policy, failures, admission, deadline, &mut Off, plan,
    )
}

/// [`simulate_windowed`] with every engine event delivered to `sink`, in
/// the exact order the sequential [`crate::engine::simulate_traced`]
/// would record them: sequential spans write straight through, window
/// events carry deterministic step keys and merge by sort at each window
/// edge.
#[allow(clippy::too_many_arguments)]
pub fn simulate_windowed_traced(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
    sink: &mut dyn TraceSink,
    plan: &WindowPlan,
) -> ServeReport {
    let windowable = matches!(
        config.balancer,
        LoadBalancerKind::RoundRobin | LoadBalancerKind::BranchSharded
    );
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    if plan.workers <= 1 || config.shard_count() <= 1 || !windowable {
        return run(
            config,
            scenario,
            schedulers,
            Some(kind),
            policy,
            failures,
            controller.as_mut(),
            deadline,
            sink,
        );
    }
    let mut core = EngineCore::new(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        deadline,
        sink,
    );
    while let Some(start) = core.next_instant() {
        match core.quiescent_horizon() {
            Some(horizon) => {
                let cap = horizon.min(start.saturating_add(plan.window_us));
                // `cap <= start`: the pinning event *is* the next event.
                // `run_window == 0`: the window is below the fan-out
                // threshold (or holds only work dispatchable at or after
                // the edge). Either way, advance sequentially — `step()`
                // is the sequential engine and is always correct.
                if (cap <= start || core.run_window(cap, plan, admission) == 0)
                    && !core.step_until(cap)
                {
                    break;
                }
            }
            None => {
                if !core.step() {
                    break;
                }
            }
        }
    }
    core.finish()
}

impl<'a> EngineCore<'a, '_> {
    /// The earliest pending event instant (arrival cursor vs. live
    /// calendar front), or `None` when the run is complete. Discards
    /// stale dispatch entries exactly as [`EngineCore::step`] would.
    pub(crate) fn next_instant(&mut self) -> Option<u64> {
        let due_arrival = self.arrivals.get(self.next_arrival).map(|r| r.issued_at_us);
        if due_arrival.is_none() && self.queued_total == 0 {
            return None;
        }
        let front = loop {
            match self.calendar.peek_key() {
                Some(key)
                    if key.lane == LANE_DISPATCH
                        && key.b != self.shards[u64_to_usize(key.a)].dispatch_epoch =>
                {
                    self.calendar.pop();
                }
                other => break other,
            }
        };
        match (due_arrival, front) {
            (Some(arrival), Some(key)) => Some(arrival.min(key.at_us)),
            (Some(arrival), None) => Some(arrival),
            (None, Some(key)) => Some(key.at_us),
            (None, None) => None,
        }
    }

    /// Runs sequential steps through every event strictly before `cap`,
    /// taking at least one step (the pinning event at the window edge
    /// when the window itself was empty). Returns `false` on run
    /// completion.
    pub(crate) fn step_until(&mut self, cap: u64) -> bool {
        if !self.step() {
            return false;
        }
        while self.next_instant().is_some_and(|at| at < cap) {
            if !self.step() {
                return false;
            }
        }
        true
    }

    /// Proves a quiescent horizon: the earliest instant at which an event
    /// *could* read or write cross-shard state. Every event strictly
    /// before the horizon touches only its own shard, so `[now, horizon)`
    /// may execute as a parallel window. Returns `None` when no horizon
    /// can be proved and execution must stay sequential.
    ///
    /// The proof obligations, matching the sequential engine arm by arm:
    ///
    /// - placement must be load-oblivious (`dense`) — load-aware
    ///   balancers read every shard's load per arrival;
    /// - no shard may be Warming or Draining (their transitions interact
    ///   with in-window dispatches), and at least one must be Active
    ///   (otherwise arrivals take the global lost path);
    /// - idle retirement must be off — in-window dispatch-to-empty would
    ///   have to push new idle-check calendar entries, reordering the
    ///   shared lifecycle sequence;
    /// - the earliest pending lifecycle event bounds the horizon;
    /// - a configured p99 trigger demands sequential execution until the
    ///   fleet is terminal (`max_shards` reached, no lifecycle pending):
    ///   its rolling latency window is global state written on *every*
    ///   completion, and only in the terminal state is that write
    ///   provably unobservable (the trigger is permanently gated on
    ///   `alive < max_shards`, and alive can no longer change);
    /// - an armed queue-depth trigger (arrivals remain, `alive <
    ///   max_shards`) bounds the horizon by `last_scale_up + cooldown` —
    ///   the first instant it could fire again; before the first
    ///   scale-up there is no bound, so no window opens.
    pub(crate) fn quiescent_horizon(&self) -> Option<u64> {
        if !self.dense || self.policy.idle_retire_us > 0 {
            return None;
        }
        let mut active = 0usize;
        for shard in &self.shards {
            match shard.phase {
                ShardState::Warming | ShardState::Draining => return None,
                ShardState::Active => active += 1,
                ShardState::Retired | ShardState::Failed => {}
            }
        }
        if active == 0 {
            return None;
        }
        let next_life = self.calendar.earliest_in_lane(LANE_LIFECYCLE);
        let mut horizon = next_life.unwrap_or(u64::MAX);
        if self.spawn.is_some() {
            let terminal = active >= self.policy.max_shards && next_life.is_none();
            if self.policy.scale_up_p99_ms > 0.0 && !terminal {
                return None;
            }
            let depth_armed = self.policy.scale_up_queue_depth > 0
                && active < self.policy.max_shards
                && self.next_arrival < self.arrivals.len();
            if depth_armed {
                match self.last_scale_up {
                    Some(last) => {
                        horizon = horizon.min(last.saturating_add(self.policy.cooldown_us));
                    }
                    None => return None,
                }
            }
        }
        Some(horizon)
    }

    /// Executes every event strictly before `cap` as one parallel window:
    /// pre-places the window's arrivals through the dense snapshot
    /// (advancing the real balancer cursor), fans the shards out across
    /// scoped worker threads, then re-derives the coordinator's
    /// cross-shard state at the window edge — queue totals, dispatch
    /// calendar entries, merged tallies and the sorted trace stream.
    ///
    /// Returns the number of events processed; `0` means the window was
    /// below the plan's fan-out threshold (nothing ran — the caller
    /// advances sequentially instead).
    pub(crate) fn run_window(
        &mut self,
        cap: u64,
        plan: &WindowPlan,
        admission_kind: AdmissionKind,
    ) -> usize {
        let in_window =
            self.arrivals[self.next_arrival..].partition_point(|r| r.issued_at_us < cap);
        if in_window + self.queued_total < plan.min_parallel_events.max(1) {
            return 0;
        }
        if self.placeable_dirty {
            self.rebuild_placeable();
        }
        let shard_count = self.shards.len();
        let mut per_shard: Vec<Vec<Request>> = (0..shard_count).map(|_| Vec::new()).collect();
        for index in self.next_arrival..self.next_arrival + in_window {
            let request = self.arrivals[index];
            let dst = self
                .balancer
                .place_dense(&request, &self.placeable_ids)
                .expect("windowed execution covers only load-oblivious balancers");
            per_shard[dst].push(request);
        }
        self.next_arrival += in_window;

        let capacity = self.capacity;
        let deadline = self.deadline;
        let split_us = self.split_us;
        let tracing = self.tracing;
        let branch_count = self.tally.issued.len();

        let worker_count = plan.workers.min(shard_count);
        let mut assignments: Vec<Vec<(usize, &mut Shard<'a>, Vec<Request>)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        for (shard_id, (shard, slice)) in self.shards.iter_mut().zip(per_shard).enumerate() {
            assignments[shard_id % worker_count].push((shard_id, shard, slice));
        }
        let mut processed = 0usize;
        let mut trace: Vec<(StepKey, TraceEvent)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .into_iter()
                .map(|mine| {
                    scope.spawn(move || {
                        let mut worker_tally = Tally::new(branch_count);
                        let mut events: Vec<(StepKey, TraceEvent)> = Vec::new();
                        let mut steps = 0usize;
                        for (shard_id, shard, slice) in mine {
                            let mut controller = admission_kind.build();
                            let mut sink = StepSink::new(tracing);
                            steps += advance_shard(
                                shard_id,
                                shard,
                                controller.as_mut(),
                                &slice,
                                capacity,
                                deadline,
                                cap,
                                split_us,
                                &mut worker_tally,
                                &mut sink,
                            );
                            events.extend(sink.events);
                        }
                        (worker_tally, events, steps)
                    })
                })
                .collect();
            for handle in handles {
                let (worker_tally, events, steps) =
                    handle.join().expect("window worker thread panicked");
                self.tally.absorb(&worker_tally);
                trace.extend(events);
                processed += steps;
            }
        });

        // Barrier: re-derive the cross-shard state the sequential engine
        // would hold at the window edge. Queue total is a plain re-sum;
        // dispatch entries are refreshed per shard in ascending id order
        // (epoch bumps invalidate every pre-window entry lazily); window
        // trace events sort by step key into exactly the sequential
        // emission order, all strictly before any post-window event.
        self.queued_total = self.shards.iter().map(|s| s.scheduler.queued()).sum();
        for shard in 0..shard_count {
            refresh_dispatch(&mut self.calendar, &mut self.shards, shard);
        }
        if tracing {
            trace.sort_unstable_by_key(|(key, _)| *key);
            for (_, event) in trace {
                self.sink.record(event);
            }
        }
        processed
    }
}

/// Runs one shard's discrete-event loop over `arrivals` until every event
/// strictly before `horizon_us` is processed: the per-shard restriction
/// of the engine's loop — only arrival and dispatch events exist, the
/// shard never changes lifecycle phase, and arrivals win same-instant
/// ties against dispatches exactly as the calendar's lane order dictates.
/// Queued work whose dispatch instant lands at or past the horizon stays
/// queued for the next window (or the sequential engine).
///
/// [`crate::parallel`] calls this with an unbounded horizon over a fresh
/// shard — the static full-run decomposition; the windowed engine calls
/// it repeatedly on live shards. Returns the number of events processed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_shard(
    shard_id: usize,
    shard: &mut Shard<'_>,
    admission: &mut dyn AdmissionController,
    arrivals: &[Request],
    capacity: usize,
    deadline: DeadlinePolicy,
    horizon_us: u64,
    split_us: Option<u64>,
    tally: &mut Tally,
    sink: &mut StepSink,
) -> usize {
    let tracing = sink.enabled();
    let mut next_arrival = 0usize;
    let mut processed = 0usize;
    loop {
        let due_arrival = arrivals.get(next_arrival).copied();
        if due_arrival.is_none() && shard.scheduler.queued() == 0 {
            break;
        }
        let arrival_at = due_arrival.map_or(u64::MAX, |r| r.issued_at_us);
        if shard.scheduler.queued() > 0 && shard.dispatch_at() < arrival_at {
            let now_us = shard.dispatch_at();
            if now_us >= horizon_us {
                break;
            }
            processed += 1;
            sink.begin_step(now_us, LANE_DISPATCH, usize_to_u64(shard_id));
            // Same culling discipline as the sequential dispatch arm:
            // already-expired requests retire straight out of the queue,
            // and a fully-dead batch is followed by another pop at the
            // same instant — culling costs no fabric time.
            let batch = loop {
                let popped = shard.scheduler.next_batch(&shard.model, now_us, &[]);
                debug_assert!(!popped.is_empty(), "scheduler returned an empty batch");
                let live = if deadline.culls() {
                    let mut live = Vec::with_capacity(popped.len());
                    for request in popped {
                        if now_us > request.deadline_us() {
                            let single_us = shard.single_cost_us[request.branch];
                            let class = request.class.index();
                            shard.backlog_us = shard.backlog_us.saturating_sub(single_us);
                            shard.class_backlog_us[class] =
                                shard.class_backlog_us[class].saturating_sub(single_us);
                            shard.expired += 1;
                            tally.expired[request.branch] += 1;
                            tally.class_expired[class] += 1;
                            if tracing {
                                sink.record(request.trace(
                                    now_us,
                                    Some(shard_id),
                                    RequestEventKind::Expired,
                                ));
                            }
                        } else {
                            live.push(request);
                        }
                    }
                    live
                } else {
                    popped
                };
                if !live.is_empty() || shard.scheduler.queued() == 0 {
                    break live;
                }
            };
            if batch.is_empty() {
                // Expiry drained the whole queue without touching the
                // fabric — `free_at_us` stays put.
                shard.pending_since_us = 0;
                continue;
            }
            let branch = batch[0].branch;
            debug_assert!(batch.iter().all(|r| r.branch == branch));
            let service_us = shard.model.batch_service_us(branch, batch.len());
            let done_us = now_us + service_us;
            shard.busy_us += service_us;
            if tracing {
                sink.record(TraceEvent::Batch(BatchEvent {
                    at_us: now_us,
                    shard: shard_id,
                    branch,
                    len: batch.len(),
                    service_us,
                }));
            }
            for request in &batch {
                let latency_us = request.latency_us(done_us);
                if tracing {
                    sink.record(request.trace(
                        now_us,
                        Some(shard_id),
                        RequestEventKind::ServiceStart,
                    ));
                    sink.record(request.trace(
                        done_us,
                        Some(shard_id),
                        RequestEventKind::Complete { latency_us },
                    ));
                }
                tally.branch_histograms[request.branch].record(latency_us);
                tally.completed[request.branch] += 1;
                let class = request.class.index();
                tally.class_histograms[class].record(latency_us);
                tally.class_completed[class] += 1;
                if request.meets_slo(done_us) {
                    tally.within_budget[class] += 1;
                }
                shard.histogram.record(latency_us);
                shard.completed += 1;
                let single_us = shard.single_cost_us[request.branch];
                shard.backlog_us = shard.backlog_us.saturating_sub(single_us);
                shard.class_backlog_us[class] =
                    shard.class_backlog_us[class].saturating_sub(single_us);
                if let Some(split) = split_us {
                    if done_us < split {
                        tally.pre_failure.record(latency_us);
                    } else {
                        tally.post_failure.record(latency_us);
                    }
                }
            }
            shard.free_at_us = done_us;
            shard.pending_since_us = 0;
        } else {
            let request = due_arrival.expect("arrival_at is finite");
            debug_assert!(
                request.issued_at_us < horizon_us,
                "window arrivals are pre-filtered to the horizon"
            );
            next_arrival += 1;
            processed += 1;
            let now_us = request.issued_at_us;
            sink.begin_step(now_us, LANE_ARRIVAL, request.id);
            if tracing {
                sink.record(request.trace(now_us, Some(shard_id), RequestEventKind::Arrival));
            }
            shard.issued += 1;
            let single_us = shard.single_cost_us[request.branch];
            let view = shard.admission_view(capacity, single_us, request.branch);
            if !admit_traced(
                admission, &request, &view, now_us, shard_id, &mut *sink, tracing,
            ) {
                tally.shed[request.branch] += 1;
                tally.class_shed[request.class.index()] += 1;
                shard.shed += 1;
            } else if shard.scheduler.queued() >= capacity {
                tally.dropped[request.branch] += 1;
                tally.class_dropped[request.class.index()] += 1;
                shard.dropped += 1;
                if tracing {
                    sink.record(request.trace(now_us, Some(shard_id), RequestEventKind::Drop));
                }
            } else {
                if shard.scheduler.queued() == 0 {
                    shard.pending_since_us = now_us;
                }
                shard.backlog_us += single_us;
                shard.class_backlog_us[request.class.index()] += single_us;
                shard.scheduler.enqueue(request, now_us);
                if tracing {
                    sink.record(request.trace(now_us, Some(shard_id), RequestEventKind::Enqueue));
                }
            }
        }
    }
    processed
}
