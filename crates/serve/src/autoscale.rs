//! Dynamic-fleet serving: the autoscaling policy and the shard failure
//! injector.
//!
//! A fixed, always-healthy fleet answers "how fast", but the telepresence
//! question is "how available": Auto-CARD frames codec-avatar decoding as a
//! latency-critical, resource-elastic mobile workload, and a fleet sized
//! for the diurnal peak wastes most of its devices off-peak while a fleet
//! sized for the trough melts under bursts. The [`Autoscaler`] closes that
//! gap by spinning shards up when queue pressure (or the rolling p99)
//! crosses a threshold and draining idle shards back down — with a warm-up
//! penalty before a spawned shard serves, because a fresh accelerator must
//! stream identity weights before it can decode anyone's avatar.
//!
//! The [`FailurePlan`] injects the other half of the availability story: a
//! shard dies mid-run (at a scheduled instant or a seeded pseudo-random
//! one), its queued requests lose their affinity and re-place through the
//! live balancer — optionally re-paying the identity weight fill on their
//! new shard — and whatever cannot be re-placed is *lost*, a third terminal
//! outcome next to completed and dropped.
//!
//! Both knobs are plain data consumed by
//! [`simulate_autoscaled`](crate::simulate_autoscaled); the no-op policy
//! plus the empty failure plan reproduce the fixed-fleet engine bit for
//! bit.

use crate::cast::usize_to_u64;
use serde::{Deserialize, Serialize};

/// Lifecycle state of one fleet shard. A fixed fleet keeps every shard
/// [`ShardState::Active`] for the whole run; the autoscaler and the failure
/// injector move shards through the other states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardState {
    /// Spawned but still streaming identity weights (the warm-up fill
    /// penalty): receives placements only if no active shard exists and
    /// dispatches nothing until warmed.
    Warming,
    /// Serving: receives placements and dispatches queued work.
    Active,
    /// Winding down: receives no new placements, still dispatches its
    /// queued work, and retires once the queue is empty.
    Draining,
    /// Drained and decommissioned by the autoscaler.
    Retired,
    /// Killed by the failure injector; its queued requests were re-placed
    /// through the balancer or lost.
    Failed,
}

impl ShardState {
    /// State name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            ShardState::Warming => "warming",
            ShardState::Active => "active",
            ShardState::Draining => "draining",
            ShardState::Retired => "retired",
            ShardState::Failed => "failed",
        }
    }

    /// Whether the shard still exists in the fleet (it may yet serve work).
    pub(crate) fn is_alive(&self) -> bool {
        matches!(
            self,
            ShardState::Warming | ShardState::Active | ShardState::Draining
        )
    }

    /// Whether the shard dispatches queued work (warming shards hold their
    /// queue until filled; dead shards hold nothing).
    pub(crate) fn dispatches(&self) -> bool {
        matches!(self, ShardState::Active | ShardState::Draining)
    }
}

/// What happened to the fleet at one instant of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleEventKind {
    /// The autoscaler spawned a shard (it enters warm-up).
    Up,
    /// A spawned shard finished its weight-fill warm-up and went active.
    Warm,
    /// A shard stopped accepting placements and began draining.
    Drain,
    /// A draining shard emptied its queue and left the fleet.
    Retire,
    /// The failure injector killed a shard.
    Fail,
}

impl ScaleEventKind {
    /// Event name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleEventKind::Up => "up",
            ScaleEventKind::Warm => "warm",
            ScaleEventKind::Drain => "drain",
            ScaleEventKind::Retire => "retire",
            ScaleEventKind::Fail => "fail",
        }
    }

    /// The trace-timeline mirror of this kind: every scale event the
    /// report logs is also emitted as an instant on the trace, so
    /// autoscale decisions line up visually with the latency series they
    /// caused.
    pub(crate) fn fleet_kind(self) -> fcad_obs::FleetEventKind {
        match self {
            ScaleEventKind::Up => fcad_obs::FleetEventKind::Up,
            ScaleEventKind::Warm => fcad_obs::FleetEventKind::Warm,
            ScaleEventKind::Drain => fcad_obs::FleetEventKind::Drain,
            ScaleEventKind::Retire => fcad_obs::FleetEventKind::Retire,
            ScaleEventKind::Fail => fcad_obs::FleetEventKind::Fail,
        }
    }
}

/// One entry of the report's fleet-lifecycle log: together the entries give
/// the shard count over time (every `up` adds an alive shard, every
/// `retire`/`fail` removes one, `warm` moves one from warming to active).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// When the event happened, seconds since simulation start.
    pub at_sec: f64,
    /// What happened.
    pub kind: ScaleEventKind,
    /// The shard the event concerns (its index in the report's shard
    /// list, which covers every shard that ever existed, in spawn order).
    pub shard: usize,
    /// Number of [`ShardState::Active`] shards right after the event.
    pub active_after: usize,
}

/// The autoscaling policy: when to spawn a shard, how long a spawned shard
/// warms up, and when to drain an idle shard back out of the fleet.
///
/// All triggers are evaluated at deterministic points of the event loop
/// (scale-up after each admission and each dispatch completion, idle
/// retirement through scheduled idle checks), so an autoscaled run is as
/// reproducible as a fixed-fleet one. [`Autoscaler::none`] disables every
/// trigger and reproduces the fixed fleet bit for bit.
///
/// Composition with admission control: shed requests never enter a queue,
/// so a shedding [`AdmissionController`](crate::AdmissionController)
/// damps the queue-depth trigger — an admission policy that protects the
/// SLO by rejecting load and a scaling policy that protects it by buying
/// capacity are deliberately independent knobs of the same run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autoscaler {
    /// Fewest alive shards the policy tolerates: scale-down never drains
    /// below it, and a failure triggers replacement spawns back up to it.
    /// 0 (the no-op policy) disables replacement entirely.
    pub min_shards: usize,
    /// Most alive shards the policy ever runs; scale-up stops here.
    pub max_shards: usize,
    /// Spawn a shard when the mean queue depth across active shards
    /// reaches this many requests (0 disables the queue trigger).
    pub scale_up_queue_depth: usize,
    /// Spawn a shard when the rolling p99 over recent completions reaches
    /// this many milliseconds (0.0 disables the latency trigger).
    pub scale_up_p99_ms: f64,
    /// Warm-up a spawned shard pays before serving, µs: the time to stream
    /// identity weights into a cold accelerator.
    pub warmup_us: u64,
    /// Minimum spacing between trigger-driven spawns, µs (failure
    /// replacement ignores the cooldown — availability first).
    pub cooldown_us: u64,
    /// Drain an active shard once it has sat idle this long, µs
    /// (0 disables idle retirement).
    pub idle_retire_us: u64,
    /// Forced drains at scheduled instants `(at_us, shard)`, applied on
    /// top of the idle trigger; refused if they would leave fewer than
    /// `max(min_shards, 1)` active shards.
    pub drains: Vec<(u64, usize)>,
}

impl Autoscaler {
    /// The no-op policy: no triggers, no drains, no replacement — the
    /// fleet stays exactly as configured. [`crate::simulate_fleet`] is this
    /// policy plus [`FailurePlan::none`], bit for bit.
    pub fn none() -> Self {
        Self {
            min_shards: 0,
            max_shards: usize::MAX,
            scale_up_queue_depth: 0,
            scale_up_p99_ms: 0.0,
            warmup_us: 0,
            cooldown_us: 0,
            idle_retire_us: 0,
            drains: Vec::new(),
        }
    }

    /// A reactive policy between `min_shards` and `max_shards` alive
    /// shards: spawn on queue pressure (mean depth ≥ 6 per active shard,
    /// 100 ms cooldown, 25 ms warm-up fill), retire after 400 ms idle, and
    /// respawn to `min_shards` after a failure.
    pub fn reactive(min_shards: usize, max_shards: usize) -> Self {
        assert!(
            min_shards >= 1 && min_shards <= max_shards,
            "reactive policy needs 1 <= min_shards <= max_shards"
        );
        Self {
            min_shards,
            max_shards,
            scale_up_queue_depth: 6,
            scale_up_p99_ms: 0.0,
            warmup_us: 25_000,
            cooldown_us: 100_000,
            idle_retire_us: 400_000,
            drains: Vec::new(),
        }
    }

    /// Replaces the queue-pressure trigger depth (0 disables it).
    pub fn with_scale_up_queue_depth(mut self, depth: usize) -> Self {
        self.scale_up_queue_depth = depth;
        self
    }

    /// Replaces the rolling-p99 trigger threshold (0.0 disables it).
    pub fn with_scale_up_p99_ms(mut self, p99_ms: f64) -> Self {
        self.scale_up_p99_ms = p99_ms;
        self
    }

    /// Replaces the warm-up weight-fill penalty.
    pub fn with_warmup_us(mut self, warmup_us: u64) -> Self {
        self.warmup_us = warmup_us;
        self
    }

    /// Replaces the spawn cooldown.
    pub fn with_cooldown_us(mut self, cooldown_us: u64) -> Self {
        self.cooldown_us = cooldown_us;
        self
    }

    /// Replaces the idle-retirement threshold (0 disables it).
    pub fn with_idle_retire_us(mut self, idle_retire_us: u64) -> Self {
        self.idle_retire_us = idle_retire_us;
        self
    }

    /// Schedules a forced drain of `shard` at `at_us`.
    pub fn with_scheduled_drain(mut self, at_us: u64, shard: usize) -> Self {
        self.drains.push((at_us, shard));
        self
    }
}

/// Which shard a kill hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum KillTarget {
    /// An explicit shard index; the kill is skipped if that shard does not
    /// exist or is already dead at fire time.
    Shard(usize),
    /// A seeded pseudo-random pick among the shards active at fire time
    /// (skipped if none is active).
    Seeded(u64),
}

/// One scheduled kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Kill {
    /// When the shard dies, µs since simulation start.
    pub at_us: u64,
    /// Which shard dies.
    pub target: KillTarget,
}

/// The failure injection plan: which shards die when, and whether their
/// re-placed requests re-pay the identity weight fill on arrival at their
/// new shard (the migrated session's decoder weights must be re-streamed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailurePlan {
    kills: Vec<Kill>,
    repay_fill: bool,
}

impl FailurePlan {
    /// No failures: every shard survives the whole run.
    pub fn none() -> Self {
        Self {
            kills: Vec::new(),
            repay_fill: true,
        }
    }

    /// Kills the listed shards at the listed instants (µs since simulation
    /// start). A kill whose shard is already dead — or never existed — is
    /// skipped at fire time.
    pub fn scheduled(kills: &[(u64, usize)]) -> Self {
        let mut kills: Vec<Kill> = kills
            .iter()
            .map(|&(at_us, shard)| Kill {
                at_us,
                target: KillTarget::Shard(shard),
            })
            .collect();
        kills.sort_by_key(|k| k.at_us);
        Self {
            kills,
            repay_fill: true,
        }
    }

    /// `count` seeded kills spread deterministically over the middle of
    /// the `horizon_us` window (between 20 % and 80 % of it, so failures
    /// land while traffic is live); each kill picks pseudo-randomly among
    /// the shards active when it fires. The same seed always produces the
    /// same failure trace.
    pub fn seeded(seed: u64, count: usize, horizon_us: u64) -> Self {
        let lo = horizon_us / 5;
        let span = (horizon_us - lo).saturating_sub(lo).max(1);
        let mut kills: Vec<Kill> = (0..count)
            .map(|k| Kill {
                at_us: lo + mix(seed, 2 * usize_to_u64(k)) % span,
                target: KillTarget::Seeded(mix(seed, 2 * usize_to_u64(k) + 1)),
            })
            .collect();
        kills.sort_by_key(|k| k.at_us);
        Self {
            kills,
            repay_fill: true,
        }
    }

    /// Sets whether re-placed requests charge their branch's weight-fill
    /// time to the destination shard's fabric (the migrated identity's
    /// weights must be re-streamed). Defaults to `true`.
    pub fn with_repay_fill(mut self, repay_fill: bool) -> Self {
        self.repay_fill = repay_fill;
        self
    }

    /// Whether the plan injects no failure at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// The first scheduled kill instant, µs — the split point between the
    /// report's pre-failure and post-failure latency summaries.
    pub fn first_kill_us(&self) -> Option<u64> {
        self.kills.first().map(|k| k.at_us)
    }

    pub(crate) fn kills(&self) -> &[Kill] {
        &self.kills
    }

    pub(crate) fn repay_fill(&self) -> bool {
        self.repay_fill
    }
}

/// SplitMix64-style finalizer over `(seed, stream)`: the crate's one
/// derivation of independent deterministic streams from a single seed —
/// the scenario generators use it for per-session RNG seeds and QoS
/// class draws, the failure injector for kill times and victim picks. A
/// plain `seed ^ stream × GOLDEN` would collide with the stub RNG's own
/// per-draw increment.
pub(crate) fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ (stream + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_noop_policy_disables_every_trigger() {
        let policy = Autoscaler::none();
        assert_eq!(policy.min_shards, 0);
        assert_eq!(policy.scale_up_queue_depth, 0);
        assert_eq!(policy.scale_up_p99_ms, 0.0);
        assert_eq!(policy.idle_retire_us, 0);
        assert!(policy.drains.is_empty());
    }

    #[test]
    fn reactive_policy_builders_replace_their_knobs() {
        let policy = Autoscaler::reactive(2, 6)
            .with_scale_up_queue_depth(3)
            .with_scale_up_p99_ms(120.0)
            .with_warmup_us(10_000)
            .with_cooldown_us(5_000)
            .with_idle_retire_us(0)
            .with_scheduled_drain(400_000, 1);
        assert_eq!(policy.min_shards, 2);
        assert_eq!(policy.max_shards, 6);
        assert_eq!(policy.scale_up_queue_depth, 3);
        assert_eq!(policy.scale_up_p99_ms, 120.0);
        assert_eq!(policy.warmup_us, 10_000);
        assert_eq!(policy.cooldown_us, 5_000);
        assert_eq!(policy.idle_retire_us, 0);
        assert_eq!(policy.drains, vec![(400_000, 1)]);
    }

    #[test]
    #[should_panic(expected = "min_shards <= max_shards")]
    fn reactive_policy_rejects_inverted_bounds() {
        Autoscaler::reactive(4, 2);
    }

    #[test]
    fn scheduled_plans_sort_kills_by_time() {
        let plan = FailurePlan::scheduled(&[(900_000, 1), (200_000, 0)]);
        assert_eq!(plan.first_kill_us(), Some(200_000));
        assert!(!plan.is_empty());
        assert_eq!(plan.kills().len(), 2);
        assert!(plan.kills().windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_mid_window() {
        let a = FailurePlan::seeded(7, 3, 2_000_000);
        let b = FailurePlan::seeded(7, 3, 2_000_000);
        assert_eq!(a, b);
        for kill in a.kills() {
            assert!(
                kill.at_us >= 400_000 && kill.at_us < 1_600_000,
                "kill at {} µs outside the 20–80 % window",
                kill.at_us
            );
        }
        let c = FailurePlan::seeded(8, 3, 2_000_000);
        assert_ne!(a, c, "different seeds must shift the failure trace");
    }

    #[test]
    fn empty_plan_has_no_split_point() {
        assert!(FailurePlan::none().is_empty());
        assert_eq!(FailurePlan::none().first_kill_us(), None);
        assert!(FailurePlan::none().repay_fill());
        assert!(!FailurePlan::none().with_repay_fill(false).repay_fill());
    }

    #[test]
    fn state_and_event_names_are_stable() {
        assert_eq!(ShardState::Warming.name(), "warming");
        assert_eq!(ShardState::Active.name(), "active");
        assert_eq!(ShardState::Draining.name(), "draining");
        assert_eq!(ShardState::Retired.name(), "retired");
        assert_eq!(ShardState::Failed.name(), "failed");
        assert_eq!(ScaleEventKind::Up.name(), "up");
        assert_eq!(ScaleEventKind::Warm.name(), "warm");
        assert_eq!(ScaleEventKind::Drain.name(), "drain");
        assert_eq!(ScaleEventKind::Retire.name(), "retire");
        assert_eq!(ScaleEventKind::Fail.name(), "fail");
    }

    #[test]
    fn alive_and_dispatching_track_the_lifecycle() {
        assert!(ShardState::Warming.is_alive());
        assert!(!ShardState::Warming.dispatches());
        assert!(ShardState::Active.dispatches());
        assert!(ShardState::Draining.dispatches());
        assert!(ShardState::Draining.is_alive());
        assert!(!ShardState::Retired.is_alive());
        assert!(!ShardState::Failed.dispatches());
    }
}
