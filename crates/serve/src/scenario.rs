//! Serving scenarios: who connects, when requests arrive, and how much
//! queueing the front-end tolerates.
//!
//! Arrival generation is fully deterministic: every stochastic pattern draws
//! from a [`rand::rngs::StdRng`] seeded from the scenario seed and the
//! session index, so the same scenario always produces the same request
//! trace (the reproducibility idiom of the WIND bench harness).

use crate::cast::{f64_to_u64, u64_to_f64, usize_to_f64, usize_to_u64};
use crate::qos::{ClassMix, QosClass};
use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How session frame requests arrive over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Fixed inter-arrival time `1/rate`, sessions phase-staggered so N
    /// steady sessions do not all hit the accelerator in the same instant.
    Steady,
    /// Memoryless arrivals: exponential inter-arrival times at the session
    /// frame rate.
    Poisson,
    /// On/off bursts: Poisson arrivals at `factor ×` the base rate during
    /// the first `duty` fraction of every `period_sec` window, silence for
    /// the rest.
    Burst {
        /// Length of one on/off cycle, seconds.
        period_sec: f64,
        /// Fraction of the period that is "on" (0, 1].
        duty: f64,
        /// Rate multiplier while "on".
        factor: f64,
    },
    /// Deterministic diurnal ramp: the instantaneous rate climbs linearly
    /// from `start_factor ×` to `end_factor ×` the base rate across the
    /// scenario duration (a compressed day of traffic).
    DiurnalRamp {
        /// Rate multiplier at t = 0.
        start_factor: f64,
        /// Rate multiplier at t = duration.
        end_factor: f64,
    },
}

/// One serving scenario: N concurrent avatar sessions generating
/// branch-decode requests against a single shared accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports and logs).
    pub name: String,
    /// RNG seed; identical seeds reproduce identical request traces and
    /// therefore identical reports.
    pub seed: u64,
    /// Number of concurrent avatar sessions.
    pub sessions: usize,
    /// Per-session avatar frame rate, Hz (each frame issues one request per
    /// branch).
    pub frame_rate_hz: f64,
    /// Arrival-generation window, seconds. The simulation itself runs until
    /// the queue drains.
    pub duration_sec: f64,
    /// Arrival pattern.
    pub arrival: ArrivalPattern,
    /// Front-end queue capacity; arrivals that find the queue full are
    /// dropped.
    pub queue_capacity: usize,
    /// Optional per-branch priority override (higher = more important).
    /// `None` keeps the service model's priorities.
    pub priorities: Option<Vec<f64>>,
    /// QoS class mix: each session draws its class from these fractions,
    /// seeded by the scenario seed. [`ClassMix::standard_only`] (the
    /// default of every legacy scenario) reproduces the classless engine
    /// bit for bit.
    pub class_mix: ClassMix,
}

impl Scenario {
    /// `a1` — baseline: a single steady 10 Hz session, ample queue (the
    /// time-multiplexed fabric re-streams per-identity weights on every
    /// dispatch, so a single accelerator sustains roughly 12 avatar frames
    /// per second on the paper's decoder designs).
    pub fn a1() -> Self {
        Self {
            name: "a1_baseline".to_owned(),
            seed: 0xF_CAD,
            sessions: 1,
            frame_rate_hz: 10.0,
            duration_sec: 2.0,
            arrival: ArrivalPattern::Steady,
            queue_capacity: 256,
            priorities: None,
            class_mix: ClassMix::standard_only(),
        }
    }

    /// `a2` — fan-out: `sessions` steady 10 Hz sessions share the
    /// accelerator (the Table V multi-avatar scaling axis); five sessions
    /// deliberately oversubscribe the fabric, so the bounded queue sheds
    /// load.
    pub fn a2(sessions: usize) -> Self {
        Self {
            name: format!("a2_fanout_{sessions}"),
            sessions,
            queue_capacity: 120,
            ..Self::a1()
        }
    }

    /// `b1` — Poisson burst: two sessions with memoryless 15 Hz arrivals
    /// (about 1.5× the fabric's steady capacity in expectation).
    pub fn b1() -> Self {
        Self {
            name: "b1_poisson_burst".to_owned(),
            sessions: 2,
            frame_rate_hz: 15.0,
            arrival: ArrivalPattern::Poisson,
            ..Self::a1()
        }
    }

    /// `b2` — mixed-priority chaos: five bursty 10 Hz sessions on a tight
    /// queue, where the visual branches outrank the low-priority
    /// (audio-like) last branch, mirroring the paper's branch priorities.
    pub fn b2() -> Self {
        Self {
            name: "b2_mixed_priority_chaos".to_owned(),
            sessions: 5,
            duration_sec: 2.5,
            arrival: ArrivalPattern::Burst {
                period_sec: 0.5,
                duty: 0.5,
                factor: 1.5,
            },
            queue_capacity: 96,
            priorities: Some(vec![1.0, 1.0, 0.15]),
            ..Self::a1()
        }
    }

    /// `b2_qos` — the QoS burst: the `b2` on/off burst pattern with eight
    /// sessions drawing from the telepresence class mix (half
    /// interactive) on uniform branch priorities, so the class weight is
    /// the only thing separating tiers. The interactive demand alone
    /// oversubscribes one accelerator during the on-windows — the
    /// workload where admission policy, not scheduling, decides who
    /// meets the SLO.
    pub fn b2_qos() -> Self {
        Self {
            name: "b2_qos_burst".to_owned(),
            sessions: 8,
            priorities: None,
            class_mix: ClassMix::telepresence(),
            ..Self::b2()
        }
    }

    /// Diurnal ramp: four sessions whose rate climbs from 30 % to 160 % of
    /// the base rate over three seconds (a compressed day of traffic).
    pub fn diurnal() -> Self {
        Self {
            name: "diurnal_ramp".to_owned(),
            sessions: 4,
            duration_sec: 3.0,
            arrival: ArrivalPattern::DiurnalRamp {
                start_factor: 0.3,
                end_factor: 1.6,
            },
            queue_capacity: 384,
            ..Self::a1()
        }
    }

    /// `metropolis` — the million-session scale scenario: 1.05 M steady
    /// 1 Hz sessions, phase-staggered across a one-second window so each
    /// session contributes exactly one frame (3.15 M requests on a
    /// three-branch model), drawing from the telepresence class mix.
    /// Steady generation draws no RNG samples, so building the trace is
    /// pure arithmetic — the workload that exercises the indexed event
    /// calendar and the parallel shard engine at fleet scale.
    pub fn metropolis() -> Self {
        Self {
            name: "metropolis".to_owned(),
            seed: 0xF_CAD,
            sessions: 1_050_000,
            frame_rate_hz: 1.0,
            duration_sec: 1.0,
            arrival: ArrivalPattern::Steady,
            queue_capacity: 512,
            priorities: None,
            class_mix: ClassMix::telepresence(),
        }
    }

    /// The standard four-scenario suite (`a1`, `a2` with 5 sessions, `b1`,
    /// `b2`) run by the example and the serving bench.
    pub fn suite() -> Vec<Scenario> {
        vec![Self::a1(), Self::a2(5), Self::b1(), Self::b2()]
    }

    /// `a1` scaled to a fleet: one steady 10 Hz session per shard, so an
    /// evenly balanced fleet stays as unloaded as the single-device `a1`.
    pub fn a1_fleet(shards: usize) -> Self {
        Self::a1().scaled_for_fleet(shards)
    }

    /// `a2` scaled to a fleet: five steady sessions per shard (the
    /// single-device overload point times the fleet size).
    pub fn a2_fleet(shards: usize) -> Self {
        Self::a2(5).scaled_for_fleet(shards)
    }

    /// `b1` scaled to a fleet: two 15 Hz Poisson sessions per shard.
    pub fn b1_fleet(shards: usize) -> Self {
        Self::b1().scaled_for_fleet(shards)
    }

    /// `b2` scaled to a fleet: five bursty mixed-priority sessions per
    /// shard on the same tight per-shard queue.
    pub fn b2_fleet(shards: usize) -> Self {
        Self::b2().scaled_for_fleet(shards)
    }

    /// The fleet counterpart of [`Scenario::suite`]: the four scenarios
    /// with their session counts scaled so each shard of an
    /// evenly balanced `shards`-device fleet sees the single-device load.
    pub fn fleet_suite(shards: usize) -> Vec<Scenario> {
        vec![
            Self::a1_fleet(shards),
            Self::a2_fleet(shards),
            Self::b1_fleet(shards),
            Self::b2_fleet(shards),
        ]
    }

    /// The diurnal ramp scaled to a fleet: four ramping sessions per
    /// shard, the canonical autoscaling workload — a fleet sized for the
    /// 160 % peak idles through the 30 % trough, so an elastic policy
    /// should retire shards early and spawn them back as the ramp climbs.
    pub fn diurnal_fleet(shards: usize) -> Self {
        Self::diurnal().scaled_for_fleet(shards)
    }

    /// `b2` stretched for failure injection: the same five bursty
    /// mixed-priority sessions per shard, but generated for 4 s so a
    /// mid-run shard kill leaves enough post-failure traffic to observe
    /// the re-placed sessions' tail recovering.
    pub fn b2_failover(shards: usize) -> Self {
        let mut scenario = Self::b2().scaled_for_fleet(shards);
        scenario.duration_sec = 4.0;
        scenario.name = format!("b2_failover_fleet{}", shards.max(1));
        scenario
    }

    /// Scales a base scenario to `shards` devices: the base session count
    /// per shard, with the fleet size recorded in the name. The queue
    /// capacity stays per-shard (each device fronts its own bounded
    /// queue), so total queue space scales with the fleet automatically.
    fn scaled_for_fleet(mut self, shards: usize) -> Self {
        let shards = shards.max(1);
        self.sessions *= shards;
        self.name = format!("{}_fleet{shards}", self.name);
        self
    }

    /// Returns this scenario with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns this scenario with a different session count.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Returns this scenario with a different QoS class mix.
    pub fn with_class_mix(mut self, class_mix: ClassMix) -> Self {
        self.class_mix = class_mix;
        self
    }

    /// The QoS class of one session: a deterministic draw from the
    /// scenario's class mix, independent of the session's arrival stream.
    pub fn session_class(&self, session: usize) -> QosClass {
        self.class_mix.class_for_session(self.seed, session)
    }

    /// The interned per-session class table: entry `s` is exactly
    /// [`Scenario::session_class`]`(s)`. One arena resolved up front so
    /// million-session generation (and anything else that walks sessions)
    /// indexes instead of re-mixing the seed per request.
    pub fn session_classes(&self) -> Vec<QosClass> {
        self.class_mix.classes_for(self.seed, self.sessions)
    }

    /// Generates the full request trace for `branches` branches, sorted by
    /// arrival time (ties broken by session then branch) with ids assigned
    /// in that order.
    pub fn generate(&self, branches: usize) -> Vec<Request> {
        let classes = self.session_classes();
        let mut requests: Vec<Request> = Vec::new();
        for (session, &class) in classes.iter().enumerate() {
            for tick_us in self.session_ticks(session) {
                for branch in 0..branches {
                    requests.push(Request {
                        id: 0,
                        session,
                        branch,
                        issued_at_us: tick_us,
                        class,
                    });
                }
            }
        }
        requests.sort_by_key(|r| (r.issued_at_us, r.session, r.branch));
        for (id, request) in requests.iter_mut().enumerate() {
            request.id = usize_to_u64(id);
        }
        requests
    }

    /// Frame-arrival times of one session, µs, strictly within the
    /// generation window.
    fn session_ticks(&self, session: usize) -> Vec<u64> {
        let horizon_us = f64_to_u64(self.duration_sec * 1e6);
        let rate = self.frame_rate_hz;
        if rate <= 0.0 || horizon_us == 0 {
            return Vec::new();
        }
        // One independent deterministic stream per session. The session
        // index is mixed through a SplitMix64-style finalizer: a plain
        // `seed ^ session * GOLDEN` would collide with the RNG's own
        // per-draw increment and turn sessions into shifted copies of one
        // stream.
        let mut rng = StdRng::seed_from_u64(session_seed(self.seed, session));
        let mut ticks = Vec::new();
        // Steady sessions start phase-staggered; stochastic ones at zero.
        let mut t = match self.arrival {
            ArrivalPattern::Steady => {
                f64_to_u64(usize_to_f64(session) / usize_to_f64(self.sessions.max(1)) / rate * 1e6)
            }
            _ => 0,
        };
        while t < horizon_us {
            let dt_us = match self.arrival {
                ArrivalPattern::Steady => secs_to_us(1.0 / rate),
                ArrivalPattern::Poisson => exponential_us(&mut rng, rate),
                ArrivalPattern::Burst {
                    period_sec,
                    duty,
                    factor,
                } => {
                    let period_us = secs_to_us(period_sec);
                    let on_us = f64_to_u64(u64_to_f64(period_us) * duty.clamp(0.0, 1.0));
                    let phase = t % period_us;
                    if phase < on_us.max(1) {
                        exponential_us(&mut rng, rate * factor.max(f64::MIN_POSITIVE))
                    } else {
                        // Silent until the next window opens; no request at
                        // this tick.
                        t += period_us - phase;
                        continue;
                    }
                }
                ArrivalPattern::DiurnalRamp {
                    start_factor,
                    end_factor,
                } => {
                    let progress = u64_to_f64(t) / u64_to_f64(horizon_us);
                    let factor = start_factor + (end_factor - start_factor) * progress;
                    secs_to_us(1.0 / (rate * factor.max(1e-3)))
                }
            };
            if t < horizon_us {
                ticks.push(t);
            }
            t = t.saturating_add(dt_us.max(1));
        }
        ticks
    }
}

/// Derives an independent per-session RNG seed (the crate's shared
/// SplitMix64 finalizer).
fn session_seed(seed: u64, session: usize) -> u64 {
    crate::autoscale::mix(seed, usize_to_u64(session))
}

/// Exponential inter-arrival sample at `rate` events/second, µs, ≥ 1.
fn exponential_us(rng: &mut StdRng, rate: f64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    secs_to_us(-(1.0 - u).ln() / rate)
}

fn secs_to_us(seconds: f64) -> u64 {
    f64_to_u64((seconds * 1e6).round().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        for scenario in Scenario::suite() {
            assert_eq!(scenario.generate(3), scenario.generate(3));
        }
        let a = Scenario::b1().with_seed(1).generate(3);
        let b = Scenario::b1().with_seed(2).generate(3);
        assert_ne!(a, b, "different seeds must shift Poisson arrivals");
    }

    #[test]
    fn every_frame_issues_one_request_per_branch() {
        let requests = Scenario::a1().generate(3);
        assert_eq!(requests.len() % 3, 0);
        // Steady 10 Hz for 2 s: ticks at 0, 0.1, …, all < 2 s = 20 frames.
        assert_eq!(requests.len(), 20 * 3);
    }

    #[test]
    fn ids_are_sequential_and_times_sorted() {
        let requests = Scenario::b2().generate(3);
        assert!(!requests.is_empty());
        for (i, pair) in requests.windows(2).enumerate() {
            assert_eq!(pair[0].id, i as u64);
            assert!(pair[0].issued_at_us <= pair[1].issued_at_us);
        }
    }

    #[test]
    fn burst_pattern_leaves_silent_windows() {
        let scenario = Scenario::b2();
        let (period_us, on_us) = match scenario.arrival {
            ArrivalPattern::Burst {
                period_sec, duty, ..
            } => {
                let period = (period_sec * 1e6) as u64;
                ((period), (period as f64 * duty) as u64)
            }
            _ => unreachable!(),
        };
        for request in scenario.generate(1) {
            assert!(
                request.issued_at_us % period_us <= on_us,
                "arrival at {} µs falls in an off window",
                request.issued_at_us
            );
        }
    }

    #[test]
    fn diurnal_ramp_accelerates_over_time() {
        let requests = Scenario::diurnal().with_sessions(1).generate(1);
        let horizon_us = (Scenario::diurnal().duration_sec * 1e6) as u64;
        let first_half = requests
            .iter()
            .filter(|r| r.issued_at_us < horizon_us / 2)
            .count();
        let second_half = requests.len() - first_half;
        assert!(
            second_half > first_half,
            "ramp-up must put more arrivals in the second half ({first_half} vs {second_half})"
        );
    }

    #[test]
    fn all_arrivals_respect_the_horizon() {
        for scenario in Scenario::suite() {
            let horizon_us = (scenario.duration_sec * 1e6) as u64;
            for request in scenario.generate(3) {
                assert!(request.issued_at_us < horizon_us);
            }
        }
    }

    #[test]
    fn fleet_variants_scale_sessions_with_the_shard_count() {
        for shards in [1usize, 2, 4, 8] {
            let suite = Scenario::fleet_suite(shards);
            assert_eq!(suite.len(), 4);
            assert_eq!(suite[0].sessions, shards); // a1: one per shard
            assert_eq!(suite[1].sessions, 5 * shards); // a2
            assert_eq!(suite[2].sessions, 2 * shards); // b1
            assert_eq!(suite[3].sessions, 5 * shards); // b2
            for (base, fleet) in Scenario::suite().iter().zip(&suite) {
                assert_eq!(fleet.name, format!("{}_fleet{shards}", base.name));
                assert_eq!(fleet.queue_capacity, base.queue_capacity);
                assert_eq!(fleet.arrival, base.arrival);
                assert_eq!(fleet.priorities, base.priorities);
                assert_eq!(fleet.class_mix, base.class_mix);
            }
        }
        // Degenerate shard counts clamp to one device.
        assert_eq!(Scenario::b2_fleet(0).sessions, 5);
    }

    #[test]
    fn legacy_scenarios_stay_classless_and_the_qos_burst_mixes() {
        for scenario in Scenario::suite() {
            assert!(scenario.class_mix.is_standard_only());
            for request in scenario.generate(2) {
                assert_eq!(request.class, QosClass::Standard);
            }
        }
        let qos = Scenario::b2_qos();
        assert_eq!(qos.sessions, 8);
        assert_eq!(qos.priorities, None);
        assert_eq!(qos.arrival, Scenario::b2().arrival);
        assert!(!qos.class_mix.is_standard_only());
        // Class assignment is per session: every request of a session
        // carries the session's class, and the mix actually lands more
        // than one class across the eight sessions.
        let requests = qos.generate(3);
        for request in &requests {
            assert_eq!(request.class, qos.session_class(request.session));
        }
        let distinct: std::collections::BTreeSet<usize> =
            requests.iter().map(|r| r.class.index()).collect();
        assert!(distinct.len() >= 2, "the mix must produce mixed classes");
        // The class draw rides the scenario seed, not the arrival RNG:
        // reseeding shifts Poisson arrivals *and* may reshuffle classes,
        // but the same seed is always bit-identical.
        assert_eq!(qos.generate(3), qos.generate(3));
    }

    #[test]
    fn metropolis_sessions_issue_exactly_one_staggered_frame() {
        // Downscaled session count; the stagger math is identical. Every
        // steady 1 Hz session phase-staggered across the 1 s window lands
        // exactly one frame, and the interned class table matches the
        // per-session draw bit for bit.
        let scenario = Scenario::metropolis().with_sessions(2_000);
        let requests = scenario.generate(3);
        assert_eq!(requests.len(), 2_000 * 3);
        let classes = scenario.session_classes();
        assert_eq!(classes.len(), 2_000);
        for request in &requests {
            assert_eq!(request.class, classes[request.session]);
            assert_eq!(request.class, scenario.session_class(request.session));
        }
        assert!(!scenario.class_mix.is_standard_only());
        let full = Scenario::metropolis();
        assert_eq!(full.sessions, 1_050_000);
        assert_eq!(full.name, "metropolis");
    }

    #[test]
    fn availability_scenarios_scale_and_stretch_their_bases() {
        let diurnal = Scenario::diurnal_fleet(3);
        assert_eq!(diurnal.sessions, 12);
        assert_eq!(diurnal.name, "diurnal_ramp_fleet3");
        assert_eq!(diurnal.arrival, Scenario::diurnal().arrival);
        let failover = Scenario::b2_failover(2);
        assert_eq!(failover.sessions, 10);
        assert_eq!(failover.name, "b2_failover_fleet2");
        assert_eq!(failover.duration_sec, 4.0);
        assert_eq!(failover.priorities, Scenario::b2().priorities);
        assert_eq!(Scenario::b2_failover(0).name, "b2_failover_fleet1");
    }
}
