//! Parallel shard execution: the same deterministic simulation, spread
//! across worker threads.
//!
//! A static fleet under a *load-oblivious* balancer (round-robin or
//! branch-sharded) with a *stateless* admission controller decomposes
//! exactly: placement is pure arithmetic over the arrival index or
//! branch, nothing a shard does ever influences where the next request
//! lands, and the report is an exact-merge reduction over per-shard
//! accumulators ([`Tally::absorb`]). So each shard's discrete-event loop
//! can run on its own thread against its own pre-partitioned arrival
//! slice, and folding the per-shard tallies and summaries in shard-id
//! order reproduces the sequential engine's [`ServeReport`] **byte for
//! byte** — the equivalence battery pins `simulate_fleet_parallel` against
//! [`crate::engine::simulate_fleet`] (and the frozen [`crate::reference`])
//! at every worker count.
//!
//! Trace streams merge deterministically too: the sequential loop
//! processes, at each instant, arrivals before dispatches (in arrival
//! order) and dispatches in shard-id order, so each worker tags every
//! emitted event with its *step key* `(instant, lane, arrival-id | shard,
//! within-step index)` and the merged stream is a plain sort — identical
//! to the sequential [`crate::engine::simulate_traced`] recording.
//!
//! Anything outside the decomposable regime — a load-aware balancer
//! (least-loaded, affinity-first), one shard, or `workers <= 1` — falls
//! back to the sequential engine, which is bit-identical by definition.

use fcad_obs::{Off, TraceEvent, TraceSink};

use crate::admission::{AdmissionController, AdmissionKind};
use crate::autoscale::{Autoscaler, FailurePlan, ShardState};
use crate::calendar::LANE_ARRIVAL;
use crate::deadline::DeadlinePolicy;
use crate::engine::{finalize, run as run_sequential, simulate_traced, Shard, ShardSummary, Tally};
use crate::fleet::{FleetConfig, LoadBalancerKind};
use crate::model::ServiceModel;
use crate::report::ServeReport;
use crate::request::Request;
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

/// [`crate::engine::simulate_fleet`] executed across `workers` threads.
///
/// Identical `(config, scenario, kind)` inputs produce a report
/// byte-identical to the sequential engine at **every** worker count;
/// `workers <= 1`, a single shard, or a load-aware balancer run the
/// sequential loop directly.
pub fn simulate_fleet_parallel(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    workers: usize,
) -> ServeReport {
    simulate_fleet_qos_parallel(config, scenario, kind, AdmissionKind::AdmitAll, workers)
}

/// [`crate::engine::simulate_fleet_qos`] executed across `workers`
/// threads. [`AdmissionKind::AdmitAll`] reproduces
/// [`simulate_fleet_parallel`] bit for bit; every admission controller is
/// stateless, so per-shard instances decide exactly as the sequential
/// loop's shared instance does.
pub fn simulate_fleet_qos_parallel(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
    workers: usize,
) -> ServeReport {
    simulate_fleet_traced_parallel(config, scenario, kind, admission, &mut Off, workers)
}

/// The traced parallel entry point: [`simulate_fleet_qos_parallel`] with
/// every engine event delivered to `sink`, in the exact order the
/// sequential [`crate::engine::simulate_traced`] would record them (the
/// per-worker streams carry deterministic step keys and merge by sort).
pub fn simulate_fleet_traced_parallel(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
    sink: &mut dyn TraceSink,
    workers: usize,
) -> ServeReport {
    run_parallel(
        config,
        scenario,
        kind,
        admission,
        DeadlinePolicy::Off,
        sink,
        workers,
    )
}

/// [`crate::engine::simulate_fleet_deadline`] executed across `workers`
/// threads. Expiry culling inspects only the owning shard's clock and
/// queue, so the decomposition (and the exact-merge reduction) holds
/// unchanged: identical inputs produce a report byte-identical to the
/// sequential deadline engine at every worker count, and
/// [`DeadlinePolicy::Off`] reproduces [`simulate_fleet_qos_parallel`] bit
/// for bit.
pub fn simulate_fleet_deadline_parallel(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
    workers: usize,
) -> ServeReport {
    run_parallel(
        config, scenario, kind, admission, deadline, &mut Off, workers,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_parallel(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
    sink: &mut dyn TraceSink,
    workers: usize,
) -> ServeReport {
    let decomposable = matches!(
        config.balancer,
        LoadBalancerKind::RoundRobin | LoadBalancerKind::BranchSharded
    );
    if workers <= 1 || config.shard_count() <= 1 || !decomposable {
        if !deadline.culls() {
            return simulate_traced(
                config,
                scenario,
                kind,
                &Autoscaler::none(),
                &FailurePlan::none(),
                admission,
                sink,
            );
        }
        let schedulers: Vec<Box<dyn Scheduler>> =
            (0..config.shard_count()).map(|_| kind.build()).collect();
        let mut controller = admission.build();
        return run_sequential(
            config,
            scenario,
            schedulers,
            Some(kind),
            &Autoscaler::none(),
            &FailurePlan::none(),
            controller.as_mut(),
            deadline,
            sink,
        );
    }
    config.assert_valid();
    let branch_count = config.branch_count();
    let shard_count = config.shard_count();
    let arrivals = scenario.generate(branch_count);
    let capacity = scenario.queue_capacity;
    let tracing = sink.enabled();

    // Replay the load-oblivious placement law: round-robin is the global
    // arrival index modulo the fleet (the balancer cursor advances once
    // per arrival in an all-active fleet), branch-sharded is the branch
    // modulo the fleet. Load-aware kinds took the sequential path above.
    let mut per_shard: Vec<Vec<Request>> = (0..shard_count).map(|_| Vec::new()).collect();
    for (index, request) in arrivals.iter().enumerate() {
        let dst = match config.balancer {
            LoadBalancerKind::BranchSharded => request.branch % shard_count,
            _ => index % shard_count,
        };
        per_shard[dst].push(*request);
    }

    let mut tally = Tally::new(branch_count);
    tally.count_arrivals(&arrivals);

    let priority_model = |shard: usize| -> ServiceModel {
        match &scenario.priorities {
            Some(priorities) => config.shards[shard].clone().with_priorities(priorities),
            None => config.shards[shard].clone(),
        }
    };
    let model0 = priority_model(0);

    // Strided shard → worker assignment, joined and folded in shard-id
    // order so the exact-merge reduction is deterministic.
    let worker_count = workers.min(shard_count);
    let mut assignments: Vec<Vec<(usize, Vec<Request>, ServiceModel)>> =
        (0..worker_count).map(|_| Vec::new()).collect();
    for (shard, slice) in per_shard.into_iter().enumerate() {
        assignments[shard % worker_count].push((shard, slice, priority_model(shard)));
    }
    let mut slots: Vec<Option<ShardSummary>> = (0..shard_count).map(|_| None).collect();
    let mut trace: Vec<(StepKey, TraceEvent)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .into_iter()
            .map(|mine| {
                scope.spawn(move || {
                    // One tally per *worker*, not per shard: every tally
                    // merge is a commutative, associative integer add (or
                    // fixed-bucket histogram add), so accumulating each
                    // worker's shards into one tally and folding the
                    // worker tallies afterwards is exact regardless of
                    // order — and avoids allocating a histogram set per
                    // shard.
                    let mut worker_tally = Tally::new(branch_count);
                    let shards: Vec<(usize, ShardOutcome)> = mine
                        .into_iter()
                        .map(|(shard, slice, model)| {
                            let mut controller = admission.build();
                            (
                                shard,
                                simulate_shard(
                                    shard,
                                    model,
                                    kind,
                                    controller.as_mut(),
                                    &slice,
                                    capacity,
                                    deadline,
                                    &mut worker_tally,
                                    tracing,
                                ),
                            )
                        })
                        .collect();
                    (worker_tally, shards)
                })
            })
            .collect();
        for handle in handles {
            let (worker_tally, shards) = handle.join().expect("worker thread panicked");
            tally.absorb(&worker_tally);
            for (shard, outcome) in shards {
                slots[shard] = Some(outcome.summary);
                trace.extend(outcome.trace);
            }
        }
    });

    let summaries: Vec<ShardSummary> = slots
        .into_iter()
        .map(|slot| slot.expect("every shard was assigned to a worker"))
        .collect();
    if tracing {
        // Step keys are globally unique — (instant, arrival id) for
        // arrival steps, (instant, shard) for dispatch steps, plus the
        // within-step index — so the sort *is* the sequential order.
        trace.sort_unstable_by_key(|(key, _)| *key);
        for (_, event) in trace {
            sink.record(event);
        }
    }

    let name_holder = admission.build();
    finalize(
        scenario,
        config.balancer.name(),
        name_holder.name(),
        &model0,
        tally,
        &summaries,
    )
}

/// The processing-step key ordering merged trace events: the instant, the
/// lane (arrivals before dispatches, exactly the engine's tie rule), the
/// in-lane tiebreak (arrival id — global arrival order within an instant —
/// or dispatching shard id), and the event's index within its step.
pub(crate) type StepKey = (u64, u8, u64, u64);

/// A shard-tagging trace sink: every recorded event is stamped with the
/// current processing-step key so per-worker streams merge into the
/// sequential recording order by a plain sort.
pub(crate) struct StepSink {
    on: bool,
    at_us: u64,
    lane: u8,
    tie: u64,
    seq: u64,
    pub(crate) events: Vec<(StepKey, TraceEvent)>,
}

impl StepSink {
    pub(crate) fn new(on: bool) -> Self {
        Self {
            on,
            at_us: 0,
            lane: LANE_ARRIVAL,
            tie: 0,
            seq: 0,
            events: Vec::new(),
        }
    }

    pub(crate) fn begin_step(&mut self, at_us: u64, lane: u8, tie: u64) {
        self.at_us = at_us;
        self.lane = lane;
        self.tie = tie;
        self.seq = 0;
    }
}

impl TraceSink for StepSink {
    fn enabled(&self) -> bool {
        self.on
    }

    fn record(&mut self, event: TraceEvent) {
        self.events
            .push(((self.at_us, self.lane, self.tie, self.seq), event));
        self.seq += 1;
    }
}

/// One shard's worker result: its report summary and its step-keyed
/// trace events (fleet-wide counters accumulate straight into the
/// worker's tally; arrival `issued` counts are tallied once by the
/// caller).
struct ShardOutcome {
    summary: ShardSummary,
    trace: Vec<(StepKey, TraceEvent)>,
}

/// Runs one shard's discrete-event loop over its pre-partitioned arrival
/// slice — the static-fleet restriction of the engine's loop: only
/// arrival and dispatch events exist, the shard never leaves
/// [`ShardState::Active`], and arrivals win same-instant ties against
/// dispatches exactly as the calendar's lane order dictates.
#[allow(clippy::too_many_arguments)]
fn simulate_shard(
    shard_id: usize,
    model: ServiceModel,
    kind: SchedulerKind,
    admission: &mut dyn AdmissionController,
    arrivals: &[Request],
    capacity: usize,
    deadline: DeadlinePolicy,
    tally: &mut Tally,
    tracing: bool,
) -> ShardOutcome {
    let mut sink = StepSink::new(tracing);
    let mut shard = Shard::new(model, kind.build(), ShardState::Active);
    // The static decomposition is the unbounded-horizon special case of
    // the windowed engine's per-shard loop: the whole arrival stream in
    // one "window" that never ends, over a fresh all-Active shard with no
    // failure split.
    crate::window::advance_shard(
        shard_id,
        &mut shard,
        admission,
        arrivals,
        capacity,
        deadline,
        u64::MAX,
        None,
        tally,
        &mut sink,
    );
    let summary = ShardSummary {
        scheduler_name: shard.scheduler.name(),
        phase: shard.phase,
        free_at_us: shard.free_at_us,
        busy_us: shard.busy_us,
        issued: shard.issued,
        completed: shard.completed,
        dropped: shard.dropped,
        shed: shard.shed,
        expired: shard.expired,
        histogram: shard.histogram,
    };
    ShardOutcome {
        summary,
        trace: sink.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_fleet, simulate_fleet_qos};
    use crate::model::test_model;

    fn fleet(shards: usize, balancer: LoadBalancerKind) -> FleetConfig {
        let mut config = FleetConfig::uniform(test_model(), shards);
        config.balancer = balancer;
        config
    }

    #[test]
    fn parallel_matches_sequential_for_every_worker_count() {
        let config = fleet(4, LoadBalancerKind::RoundRobin);
        let scenario = Scenario::a2_fleet(4);
        let sequential = simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating);
        for workers in [1, 2, 3, 4, 8] {
            let parallel = simulate_fleet_parallel(
                &config,
                &scenario,
                SchedulerKind::BatchAggregating,
                workers,
            );
            assert_eq!(
                sequential.to_json_line(),
                parallel.to_json_line(),
                "worker count {workers} diverged"
            );
        }
    }

    #[test]
    fn branch_sharded_and_qos_admission_decompose_too() {
        let config = fleet(3, LoadBalancerKind::BranchSharded);
        let scenario = Scenario::b2_qos().with_sessions(12);
        for admission in [
            AdmissionKind::AdmitAll,
            AdmissionKind::QueueThreshold,
            AdmissionKind::BudgetAware,
        ] {
            let sequential = simulate_fleet_qos(
                &config,
                &scenario,
                SchedulerKind::PriorityByBranch,
                admission,
            );
            let parallel = simulate_fleet_qos_parallel(
                &config,
                &scenario,
                SchedulerKind::PriorityByBranch,
                admission,
                4,
            );
            assert_eq!(sequential.to_json_line(), parallel.to_json_line());
        }
    }

    #[test]
    fn load_aware_balancers_fall_back_to_the_sequential_engine() {
        let config = fleet(3, LoadBalancerKind::LeastLoaded);
        let scenario = Scenario::b1_fleet(3);
        let sequential = simulate_fleet(&config, &scenario, SchedulerKind::Fifo);
        let parallel = simulate_fleet_parallel(&config, &scenario, SchedulerKind::Fifo, 4);
        assert_eq!(sequential.to_json_line(), parallel.to_json_line());
    }

    #[test]
    fn traced_parallel_replays_the_sequential_event_stream() {
        let config = fleet(3, LoadBalancerKind::RoundRobin);
        let scenario = Scenario::b2_fleet(3);
        let mut sequential_rec = fcad_obs::Recorder::new();
        let sequential = simulate_traced(
            &config,
            &scenario,
            SchedulerKind::PriorityByBranch,
            &Autoscaler::none(),
            &FailurePlan::none(),
            AdmissionKind::QueueThreshold,
            &mut sequential_rec,
        );
        let mut parallel_rec = fcad_obs::Recorder::new();
        let parallel = simulate_fleet_traced_parallel(
            &config,
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::QueueThreshold,
            &mut parallel_rec,
            4,
        );
        assert_eq!(sequential.to_json_line(), parallel.to_json_line());
        assert_eq!(sequential_rec.events(), parallel_rec.events());
    }
}
