//! The service model: how long the accelerator takes to decode requests.
//!
//! The serving simulator never re-derives hardware behaviour; it consumes
//! the per-branch frame times that the analytical model
//! ([`fcad_accel::AcceleratorReport`]) or the cycle-level simulator
//! ([`fcad_cyclesim::AcceleratorSim`]) already computed for the
//! DSE-optimized design. The serving front end time-multiplexes the whole
//! accelerator across sessions (the paper's Table V scales one decoder
//! accelerator to 1/3/5 concurrent avatars); because every codec-avatar
//! session decodes with its own identity-specific weights, a dispatched
//! batch first pays the branch's fill time (weight streaming plus
//! pipeline refill) and then computes, occupying the fabric for
//! `fill + k · frame_time` microseconds. The fill is paid once per batch
//! and amortized as the scheduler aggregates same-branch requests up to
//! the DSE-chosen batch size.

use crate::cast::{f64_to_u64, u64_to_f64, usize_to_u64};
use fcad_accel::AcceleratorReport;
use fcad_cyclesim::AcceleratorSim;
use serde::{Deserialize, Serialize};

/// Service parameters of one branch pipeline of the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchService {
    /// Branch name (matches the network / report branch name).
    pub name: String,
    /// Steady-state time to produce one frame of this branch, µs.
    pub frame_time_us: u64,
    /// Pipeline-fill overhead paid once per dispatched batch, µs.
    pub fill_time_us: u64,
    /// Largest batch one dispatch may aggregate (the DSE-chosen batch
    /// size for this branch).
    pub max_batch: usize,
    /// Priority weight; higher is more important. Mirrors the per-branch
    /// priorities of the paper's customization vector.
    pub priority: f64,
}

/// Service parameters for every branch of the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Per-branch service parameters, in branch order.
    pub branches: Vec<BranchService>,
}

impl ServiceModel {
    /// Builds the analytical service model from an accelerator report:
    /// frame time from the branch throughput (Eq. 5), fill overhead from
    /// the critical stage latency at the accelerator clock.
    pub fn from_report(report: &AcceleratorReport, frequency_hz: f64) -> Self {
        let branches = report
            .branches
            .iter()
            .map(|b| BranchService {
                name: b.name.clone(),
                frame_time_us: seconds_to_us(1.0 / b.fps.max(f64::MIN_POSITIVE)),
                fill_time_us: cycles_to_us(b.critical_latency_cycles, frequency_hz),
                max_batch: b.batch_size.max(1),
                priority: 1.0,
            })
            .collect();
        Self { branches }
    }

    /// Builds the cycle-level-calibrated service model from a simulation:
    /// frame time from the measured throughput, fill overhead from the
    /// measured first-frame latency (which includes weight-fetch stalls the
    /// analytical model ignores).
    pub fn from_simulation(sim: &AcceleratorSim, frequency_hz: f64) -> Self {
        let branches = sim
            .branches
            .iter()
            .map(|b| BranchService {
                name: b.name.clone(),
                frame_time_us: seconds_to_us(1.0 / b.fps.max(f64::MIN_POSITIVE)),
                fill_time_us: cycles_to_us(b.first_frame_latency_cycles, frequency_hz),
                max_batch: b.batch_size.max(1),
                priority: 1.0,
            })
            .collect();
        Self { branches }
    }

    /// Replaces the per-branch priorities (missing entries keep 1.0).
    pub fn with_priorities(mut self, priorities: &[f64]) -> Self {
        for (index, branch) in self.branches.iter_mut().enumerate() {
            branch.priority = priorities.get(index).copied().unwrap_or(1.0);
        }
        self
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Service time of one dispatched batch of `batch_len` same-branch
    /// requests, µs. Always at least 1 µs so the event clock advances.
    pub fn batch_service_us(&self, branch: usize, batch_len: usize) -> u64 {
        let b = &self.branches[branch];
        (b.fill_time_us + usize_to_u64(batch_len) * b.frame_time_us).max(1)
    }

    /// Per-branch single-request service cost
    /// (`batch_service_us(branch, 1)`), resolved once so the engine's
    /// per-arrival admission view and per-completion backlog accounting
    /// are table lookups on the hot path.
    pub fn single_costs(&self) -> Vec<u64> {
        (0..self.branch_count())
            .map(|branch| self.batch_service_us(branch, 1))
            .collect()
    }

    /// Priority weight of `branch` (1.0 when out of range).
    pub fn priority(&self, branch: usize) -> f64 {
        self.branches.get(branch).map_or(1.0, |b| b.priority)
    }

    /// DSE-chosen maximum batch size of `branch` (1 when out of range).
    pub fn max_batch(&self, branch: usize) -> usize {
        self.branches.get(branch).map_or(1, |b| b.max_batch)
    }
}

fn seconds_to_us(seconds: f64) -> u64 {
    f64_to_u64((seconds * 1e6).ceil().max(1.0))
}

fn cycles_to_us(cycles: u64, frequency_hz: f64) -> u64 {
    f64_to_u64((u64_to_f64(cycles) / frequency_hz.max(1.0) * 1e6).ceil())
}

/// A small hand-built model used across the crate's unit tests: two
/// visual branches plus a cheap low-priority audio-like branch.
#[cfg(test)]
pub(crate) fn test_model() -> ServiceModel {
    ServiceModel {
        branches: vec![
            BranchService {
                name: "geometry".into(),
                frame_time_us: 4_000,
                fill_time_us: 1_000,
                max_batch: 1,
                priority: 1.0,
            },
            BranchService {
                name: "texture".into(),
                frame_time_us: 3_000,
                fill_time_us: 1_500,
                max_batch: 2,
                priority: 1.0,
            },
            BranchService {
                name: "audio".into(),
                frame_time_us: 1_000,
                fill_time_us: 500,
                max_batch: 2,
                priority: 0.2,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_service_amortizes_fill_over_the_batch() {
        let model = test_model();
        let one = model.batch_service_us(1, 1);
        let two = model.batch_service_us(1, 2);
        assert_eq!(one, 4_500);
        assert_eq!(two, 7_500);
        // Two singles pay the fill twice; one batch of two pays it once.
        assert!(two < 2 * one);
    }

    #[test]
    fn priorities_replace_only_listed_branches() {
        let model = test_model().with_priorities(&[2.0]);
        assert_eq!(model.priority(0), 2.0);
        assert_eq!(model.priority(1), 1.0);
        assert_eq!(model.priority(9), 1.0);
        assert_eq!(model.max_batch(9), 1);
    }

    #[test]
    fn unit_conversions_round_up_and_stay_positive() {
        assert_eq!(seconds_to_us(0.0005), 500);
        assert_eq!(seconds_to_us(0.0), 1);
        // 200 cycles at 200 MHz = 1 µs.
        assert_eq!(cycles_to_us(200, 200e6), 1);
        assert_eq!(cycles_to_us(0, 200e6), 0);
    }
}
