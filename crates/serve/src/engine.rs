//! The deterministic discrete-event serving loop, from one accelerator to
//! a lifecycle-driven fleet of them.
//!
//! Each shard is one accelerator serving its admitted sessions
//! time-multiplexed (Table V of the paper scales a single decoder
//! accelerator to 1/3/5 concurrent avatars). Each codec-avatar session
//! decodes with its own identity-specific weights, so a dispatch pays the
//! branch's fill time (weight streaming plus pipeline refill) before its
//! batch computes: `service = fill + batch × frame_time`. That fill term is
//! exactly where the disciplines differ — FIFO pays it on every request,
//! priority-by-branch spends it on the visual branches first, and batch
//! aggregation amortizes it over the DSE-chosen batch size.
//!
//! The fleet loop needs no event heap: arrivals are pre-generated in time
//! order, the only compute events are shard dispatch completions (one
//! pending per shard), and the dynamic-fleet layer adds a small set of
//! *lifecycle* events — scheduled failures, forced drains, warm-up
//! completions and idle checks. Every step processes the earliest event:
//! lifecycle events win ties (a shard that dies at `t` cannot admit the
//! arrival at `t`), arrivals win ties against dispatches, and dispatches
//! tie-break on the lowest shard index — so the whole simulation is a
//! deterministic function of its inputs. Admission happens in arrival
//! order against the chosen shard's live state: the balancer picks among
//! the *placeable* shards, the admission controller accepts or sheds the
//! request at that shard's front door, and the shard's bounded queue takes
//! the drop — exactly what a heap-based simulator would produce, without
//! any nondeterminism.
//!
//! The fixed fleet is the no-op special case: [`simulate_fleet`] runs the
//! same loop under [`Autoscaler::none`] and [`FailurePlan::none`], where no
//! lifecycle event ever fires and every shard stays
//! [`ShardState::Active`](crate::ShardState::Active) — bit-identical to a
//! dedicated static loop. The single-device [`simulate`]/[`simulate_with`]
//! path in turn *is* the one-shard special case of [`simulate_fleet_with`]:
//! same loop, same admission order, same arithmetic, bit-identical reports.

use std::collections::VecDeque;

use fcad_obs::{BatchEvent, FleetEvent, Off, RequestEventKind, TraceEvent, TraceSink};

use crate::admission::{admit_traced, AdmissionController, AdmissionKind, AdmissionView};
use crate::autoscale::{
    Autoscaler, FailurePlan, KillTarget, ScaleEvent, ScaleEventKind, ShardState,
};
use crate::cast::{f64_to_usize, u64_to_f64, u64_to_usize, usize_to_f64, usize_to_u64};
use crate::fleet::{Balancer, FleetConfig, ShardLoad};
use crate::histogram::LatencyHistogram;
use crate::model::ServiceModel;
use crate::qos::{QosClass, CLASS_COUNT};
use crate::report::{BranchServeStats, ClassServeStats, LatencySummary, ServeReport, ShardStats};
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

/// Rolling window of recent completion latencies feeding the autoscaler's
/// p99 trigger, and the minimum fill before the trigger may fire.
const P99_WINDOW: usize = 64;
const P99_MIN_SAMPLES: usize = 16;

/// Runs `scenario` against a single accelerator `model` under the given
/// discipline and returns the aggregated report.
///
/// Scenario priority overrides (if any) replace the model's per-branch
/// priorities for the run. Identical `(model, scenario, kind)` inputs
/// produce identical reports. This is exactly the one-shard fleet.
pub fn simulate(model: &ServiceModel, scenario: &Scenario, kind: SchedulerKind) -> ServeReport {
    simulate_fleet(&FleetConfig::uniform(model.clone(), 1), scenario, kind)
}

/// [`simulate`] under an explicit admission policy — the single-device QoS
/// entry point. [`AdmissionKind::AdmitAll`] reproduces [`simulate`] bit
/// for bit.
pub fn simulate_qos(
    model: &ServiceModel,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
) -> ServeReport {
    simulate_fleet_qos(
        &FleetConfig::uniform(model.clone(), 1),
        scenario,
        kind,
        admission,
    )
}

/// [`simulate`] with a caller-provided scheduler (for custom disciplines or
/// tuned aging rates).
pub fn simulate_with(
    model: &ServiceModel,
    scenario: &Scenario,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let config = FleetConfig::uniform(model.clone(), 1);
    let mut one: [Box<dyn Scheduler + '_>; 1] = [Box::new(scheduler)];
    simulate_fleet_with(&config, scenario, &mut one)
}

/// Runs `scenario` against a fixed fleet of accelerator shards, each
/// scheduled by a fresh instance of `kind`, with `config.balancer` placing
/// arrivals.
///
/// Identical `(config, scenario, kind)` inputs produce identical reports,
/// and a one-shard config reproduces [`simulate`] bit for bit (modulo the
/// report's balancer name). This is [`simulate_autoscaled`] under the
/// no-op policy and the empty failure plan.
pub fn simulate_fleet(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
) -> ServeReport {
    simulate_fleet_qos(config, scenario, kind, AdmissionKind::AdmitAll)
}

/// [`simulate_fleet`] under an explicit admission policy: the controller
/// is consulted once per arrival (after the balancer picks the shard,
/// before the capacity check) and rejected requests are counted `shed`.
/// [`AdmissionKind::AdmitAll`] reproduces [`simulate_fleet`] bit for bit.
pub fn simulate_fleet_qos(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        None,
        &Autoscaler::none(),
        &FailurePlan::none(),
        controller.as_mut(),
        &mut Off,
    )
}

/// [`simulate_fleet`] with caller-provided per-shard schedulers (one per
/// shard, in shard order). Borrowed schedulers box in via the
/// `&mut dyn Scheduler` forwarding impl.
pub fn simulate_fleet_with<'a>(
    config: &FleetConfig,
    scenario: &Scenario,
    schedulers: &mut [Box<dyn Scheduler + 'a>],
) -> ServeReport {
    let reboxed: Vec<Box<dyn Scheduler + '_>> = schedulers
        .iter_mut()
        .map(|s| Box::new(&mut **s) as Box<dyn Scheduler + '_>)
        .collect();
    let mut controller = AdmissionKind::AdmitAll.build();
    run(
        config,
        scenario,
        reboxed,
        None,
        &Autoscaler::none(),
        &FailurePlan::none(),
        controller.as_mut(),
        &mut Off,
    )
}

/// Runs `scenario` against a *dynamic* fleet: `config` describes the
/// initial shards, `policy` scales the fleet up and down at runtime
/// (spawned shards clone shard 0's service model and pay the warm-up fill
/// before serving), and `failures` kills shards mid-run — their queued
/// requests lose affinity and re-place through the live balancer, or are
/// counted `lost` when no surviving queue can take them.
///
/// Under [`Autoscaler::none`] and [`FailurePlan::none`] this is
/// [`simulate_fleet`], bit for bit.
pub fn simulate_autoscaled(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
) -> ServeReport {
    simulate_autoscaled_qos(
        config,
        scenario,
        kind,
        policy,
        failures,
        AdmissionKind::AdmitAll,
    )
}

/// [`simulate_autoscaled`] under an explicit admission policy — the full
/// stack: QoS classes, admission shedding, autoscaling and failure
/// injection in one run. [`AdmissionKind::AdmitAll`] reproduces
/// [`simulate_autoscaled`] bit for bit. Shed requests never enter a
/// queue, so a shedding policy also damps the autoscaler's queue-depth
/// trigger — admission and scaling are deliberately composable knobs.
pub fn simulate_autoscaled_qos(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        &mut Off,
    )
}

/// The fully observable entry point: the full serving stack —
/// QoS classes, admission shedding, autoscaling and failure injection —
/// with every engine event delivered to `sink`.
///
/// Instrumentation is observation-only: any sink (including the
/// always-recording [`fcad_obs::Recorder`]) produces a report
/// byte-identical to [`simulate_autoscaled_qos`] with the same inputs,
/// and under [`Autoscaler::none`] plus [`FailurePlan::none`] to
/// [`simulate_fleet_qos`], bit for bit. With the default
/// [`fcad_obs::Off`] sink the run *is* [`simulate_autoscaled_qos`].
pub fn simulate_traced(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
    sink: &mut dyn TraceSink,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        sink,
    )
}

/// One pending lifecycle event. Events order by `(at_us, rank, seq)`:
/// failures before drains before warm-ups before idle checks at the same
/// instant, insertion order as the final tie-break — all deterministic.
struct Lifecycle {
    at_us: u64,
    rank: u8,
    seq: u64,
    shard: usize,
    action: Action,
}

enum Action {
    Fail(KillTarget),
    Drain,
    Warm,
    IdleCheck,
}

impl Action {
    fn rank(&self) -> u8 {
        match self {
            Action::Fail(_) => 0,
            Action::Drain => 1,
            Action::Warm => 2,
            Action::IdleCheck => 3,
        }
    }
}

/// One shard's full runtime state: its service model, scheduler, lifecycle
/// phase, fabric timing and serving statistics. `free_at_us` is the
/// instant the shard's fabric frees — its last dispatch completion or
/// weight-refill end, which is why the makespan reads straight off it;
/// `pending_since_us` is the arrival instant that made its queue non-empty
/// (a shard with queued work dispatches at `max(free_at, pending_since)`).
struct Shard<'a> {
    model: ServiceModel,
    scheduler: Box<dyn Scheduler + 'a>,
    phase: ShardState,
    free_at_us: u64,
    pending_since_us: u64,
    busy_us: u64,
    backlog_us: u64,
    /// The queued backlog split by QoS class (each request at its
    /// unbatched single-request cost) — the admission controller's view
    /// of how much work that can outrank a new arrival it waits behind.
    class_backlog_us: [u64; CLASS_COUNT],
    /// Highest branch priority of this shard's model (fixed for the
    /// run), feeding the admission projection's worst-case score.
    max_priority: f64,
    issued: u64,
    completed: u64,
    dropped: u64,
    shed: u64,
    histogram: LatencyHistogram,
    /// Whether an idle check for this shard is already queued — one
    /// pending check per shard keeps the lifecycle event list from
    /// accumulating a duplicate per queue-emptying dispatch.
    idle_check_pending: bool,
}

impl<'a> Shard<'a> {
    fn new(model: ServiceModel, scheduler: Box<dyn Scheduler + 'a>, phase: ShardState) -> Self {
        let max_priority = model
            .branches
            .iter()
            .map(|b| b.priority)
            .fold(0.0, f64::max);
        Self {
            model,
            scheduler,
            phase,
            free_at_us: 0,
            pending_since_us: 0,
            busy_us: 0,
            backlog_us: 0,
            class_backlog_us: [0; CLASS_COUNT],
            max_priority,
            issued: 0,
            completed: 0,
            dropped: 0,
            shed: 0,
            histogram: LatencyHistogram::new(),
            idle_check_pending: false,
        }
    }

    /// The admission controller's view of this shard for one arriving
    /// request on `branch`, whose single-request service estimate is
    /// `service_us`.
    fn admission_view(&self, capacity: usize, service_us: u64, branch: usize) -> AdmissionView {
        AdmissionView {
            queued: self.scheduler.queued(),
            capacity,
            free_at_us: self.free_at_us,
            class_backlog_us: self.class_backlog_us,
            service_us,
            priority: self.model.priority(branch),
            max_priority: self.max_priority,
        }
    }

    /// The balancer's view of this shard at placement time.
    fn load(&self) -> ShardLoad {
        ShardLoad {
            queued: self.scheduler.queued(),
            free_at_us: self.free_at_us,
            backlog_us: self.backlog_us,
        }
    }

    /// The instant this shard's next dispatch fires (meaningful only while
    /// it has queued work and is in a dispatching phase).
    fn dispatch_at(&self) -> u64 {
        self.free_at_us.max(self.pending_since_us)
    }
}

fn active_count(shards: &[Shard]) -> usize {
    shards
        .iter()
        .filter(|s| s.phase == ShardState::Active)
        .count()
}

fn alive_count(shards: &[Shard]) -> usize {
    shards.iter().filter(|s| s.phase.is_alive()).count()
}

/// The lifecycle-driven event loop shared by every entry point. `spawn`
/// is the discipline new shards are built with; `None` (the fixed-fleet
/// paths) makes scale-up impossible, which the no-op policy guarantees
/// never to request. `sink` observes the run: with a disabled sink every
/// emission site reduces to one untaken branch, so an untraced run is
/// bit-identical to a pre-observability one.
#[allow(clippy::too_many_arguments)]
fn run<'a>(
    config: &FleetConfig,
    scenario: &Scenario,
    schedulers: Vec<Box<dyn Scheduler + 'a>>,
    spawn: Option<SchedulerKind>,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: &mut dyn AdmissionController,
    sink: &mut dyn TraceSink,
) -> ServeReport {
    // Hand-built or deserialized configs can reach this point without ever
    // passing through `uniform`/`heterogeneous`; re-check their invariants.
    config.assert_valid();
    assert_eq!(
        schedulers.len(),
        config.shard_count(),
        "one scheduler per shard ({} shards, {} schedulers)",
        config.shard_count(),
        schedulers.len()
    );
    let branch_count = config.branch_count();
    let arrivals = scenario.generate(branch_count);
    let mut balancer = Balancer::new(config.balancer);
    let capacity = scenario.queue_capacity;
    // Checked once: every emission below is guarded, so the Off sink costs
    // one predictable branch per site and zero allocations.
    let tracing = sink.enabled();

    // Per-shard runtime state, indexed by global shard id (spawn order;
    // the initial shards keep their config order). Scenario priority
    // overrides apply fleet-wide: every shard serves the same branch
    // structure under the same priorities.
    let mut shards: Vec<Shard<'a>> = config
        .shards
        .iter()
        .zip(schedulers)
        .map(|(model, scheduler)| {
            let model = match &scenario.priorities {
                Some(priorities) => model.clone().with_priorities(priorities),
                None => model.clone(),
            };
            Shard::new(model, scheduler, ShardState::Active)
        })
        .collect();

    // Per-branch accounting, merged across shards.
    let mut issued = vec![0u64; branch_count];
    let mut completed = vec![0u64; branch_count];
    let mut dropped = vec![0u64; branch_count];
    let mut lost = vec![0u64; branch_count];
    let mut shed = vec![0u64; branch_count];
    let mut branch_histograms: Vec<LatencyHistogram> =
        (0..branch_count).map(|_| LatencyHistogram::new()).collect();
    // Per-QoS-class accounting, indexed by `QosClass::index`, merged
    // across branches and shards; `within_budget` counts completions
    // inside their class budget (the SLO-attainment numerator).
    let mut class_issued = [0u64; CLASS_COUNT];
    let mut class_completed = [0u64; CLASS_COUNT];
    let mut class_dropped = [0u64; CLASS_COUNT];
    let mut class_lost = [0u64; CLASS_COUNT];
    let mut class_shed = [0u64; CLASS_COUNT];
    let mut within_budget = [0u64; CLASS_COUNT];
    let mut class_histograms: [LatencyHistogram; CLASS_COUNT] =
        std::array::from_fn(|_| LatencyHistogram::new());
    for request in &arrivals {
        issued[request.branch] += 1;
        class_issued[request.class.index()] += 1;
    }

    // Lifecycle bookkeeping. The pre/post-failure split point is the first
    // *scheduled* kill instant, fixed before the run starts.
    let mut lifecycle: Vec<Lifecycle> = Vec::new();
    let mut seq = 0u64;
    let mut push_event = |queue: &mut Vec<Lifecycle>, at_us: u64, shard: usize, action: Action| {
        queue.push(Lifecycle {
            at_us,
            rank: action.rank(),
            seq,
            shard,
            action,
        });
        seq += 1;
    };
    for kill in failures.kills() {
        let shard = match kill.target {
            KillTarget::Shard(s) => s,
            KillTarget::Seeded(_) => usize::MAX, // resolved at fire time
        };
        push_event(&mut lifecycle, kill.at_us, shard, Action::Fail(kill.target));
    }
    for &(at_us, shard) in &policy.drains {
        push_event(&mut lifecycle, at_us, shard, Action::Drain);
    }
    if policy.idle_retire_us > 0 {
        for (index, shard) in shards.iter_mut().enumerate() {
            shard.idle_check_pending = true;
            push_event(
                &mut lifecycle,
                policy.idle_retire_us,
                index,
                Action::IdleCheck,
            );
        }
    }
    let split_us = failures.first_kill_us();
    let mut pre_failure = LatencyHistogram::new();
    let mut post_failure = LatencyHistogram::new();
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut replaced = 0u64;
    let mut last_scale_up: Option<u64> = None;
    let mut recent_latencies: VecDeque<u64> = VecDeque::with_capacity(P99_WINDOW);

    let mut next_arrival = 0; // index into `arrivals`

    // Scratch buffer for the balancer's view of the placeable shards,
    // refilled per placement (hoisted out of the loop).
    let mut loads: Vec<(usize, ShardLoad)> = Vec::with_capacity(shards.len());

    loop {
        let due_arrival = arrivals.get(next_arrival).copied();
        // Termination: nothing left to arrive, nothing queued anywhere.
        // Lifecycle events past the last completion are deliberately
        // discarded — they could no longer affect any request.
        if due_arrival.is_none() && shards.iter().all(|s| s.scheduler.queued() == 0) {
            break;
        }
        // The earliest pending dispatch across the fleet: an active or
        // draining shard with queued work fires at
        // `max(free_at, pending_since)`; ties go to the lowest shard index
        // (the `(time, index)` min). Warming shards hold their queue.
        let next_dispatch = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.phase.dispatches() && s.scheduler.queued() > 0)
            .map(|(index, s)| (s.dispatch_at(), index))
            .min();
        let next_life = lifecycle
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.at_us, e.rank, e.seq))
            .map(|(index, _)| index);
        let arrival_at = due_arrival.map_or(u64::MAX, |r| r.issued_at_us);
        let dispatch_at = next_dispatch.map_or(u64::MAX, |(t, _)| t);
        let life_at = next_life.map_or(u64::MAX, |i| lifecycle[i].at_us);
        if arrival_at == u64::MAX && dispatch_at == u64::MAX && life_at == u64::MAX {
            // Queued work stranded with no event to release it would hang
            // the loop; structurally impossible (warming shards always
            // have a warm-up pending), but never spin.
            debug_assert!(false, "stranded queued work with no pending event");
            break;
        }

        if life_at <= arrival_at.min(dispatch_at) {
            // --- Lifecycle event ---
            let event = lifecycle.swap_remove(next_life.expect("life_at is finite"));
            let now_us = event.at_us;
            match event.action {
                Action::Fail(target) => {
                    let victim = match target {
                        KillTarget::Shard(s) if s < shards.len() && shards[s].phase.is_alive() => {
                            Some(s)
                        }
                        KillTarget::Shard(_) => None,
                        KillTarget::Seeded(hash) => {
                            let actives: Vec<usize> = (0..shards.len())
                                .filter(|&s| shards[s].phase == ShardState::Active)
                                .collect();
                            if actives.is_empty() {
                                None
                            } else {
                                Some(actives[u64_to_usize(hash % usize_to_u64(actives.len()))])
                            }
                        }
                    };
                    let Some(victim) = victim else { continue };
                    shards[victim].phase = ShardState::Failed;
                    record(
                        &mut scale_events,
                        &shards,
                        now_us,
                        ScaleEventKind::Fail,
                        victim,
                        sink,
                        tracing,
                    );
                    // Orphan the dead shard's queue in its scheduler's own
                    // dispatch order. Re-placed requests keep their
                    // original arrival instant — migration time is queueing
                    // time the user experiences.
                    let mut orphans: Vec<crate::Request> = Vec::new();
                    {
                        let dead = &mut shards[victim];
                        while dead.scheduler.queued() > 0 {
                            let batch = dead.scheduler.next_batch(&dead.model, now_us, &[]);
                            debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
                            orphans.extend(batch);
                        }
                        dead.backlog_us = 0;
                        dead.class_backlog_us = [0; CLASS_COUNT];
                        dead.pending_since_us = 0;
                        dead.issued -= usize_to_u64(orphans.len());
                    }
                    // Replacement spawns back to the policy floor *before*
                    // re-placement, ignoring the cooldown: availability
                    // first — if the whole fleet died, the orphans land on
                    // the warming replacement and wait out its weight fill
                    // instead of being lost. The no-op policy's floor of 0
                    // requests nothing.
                    if let Some(kind) = spawn {
                        while alive_count(&shards) < policy.min_shards
                            && alive_count(&shards) < policy.max_shards
                        {
                            do_spawn(
                                now_us,
                                kind,
                                policy,
                                &mut shards,
                                &mut lifecycle,
                                &mut push_event,
                                &mut scale_events,
                                sink,
                                tracing,
                            );
                            last_scale_up = Some(now_us);
                        }
                    }
                    // Re-place each orphan through the live balancer. A
                    // request is lost when the balancer's pick has no
                    // queue space — the load-aware policies steer to free
                    // queues, so their losses mean real exhaustion, while
                    // round-robin/branch-sharded can lose with capacity
                    // elsewhere (placement policy is part of the
                    // availability story).
                    for request in orphans {
                        collect_placeable(&mut loads, &shards);
                        if loads.is_empty() {
                            lost[request.branch] += 1;
                            class_lost[request.class.index()] += 1;
                            if tracing {
                                sink.record(request.trace(
                                    now_us,
                                    None,
                                    RequestEventKind::Lost { orphaned: true },
                                ));
                            }
                            continue;
                        }
                        let dst = balancer.place(&request, &loads, now_us, capacity);
                        if shards[dst].scheduler.queued() >= capacity {
                            lost[request.branch] += 1;
                            class_lost[request.class.index()] += 1;
                            if tracing {
                                sink.record(request.trace(
                                    now_us,
                                    None,
                                    RequestEventKind::Lost { orphaned: true },
                                ));
                            }
                            continue;
                        }
                        let target = &mut shards[dst];
                        if target.scheduler.queued() == 0 {
                            target.pending_since_us = now_us;
                        }
                        if failures.repay_fill() && target.phase != ShardState::Warming {
                            // The migrated identity's weights are not
                            // resident on the new shard: its fabric spends
                            // the branch fill re-streaming them. A warming
                            // destination skips the charge — its warm-up
                            // streaming already covers the fill, and the
                            // Warm handler would subsume the window anyway.
                            let fill = target.model.branches[request.branch].fill_time_us;
                            target.free_at_us = target.free_at_us.max(now_us) + fill;
                            target.busy_us += fill;
                        }
                        let single_us = target.model.batch_service_us(request.branch, 1);
                        target.backlog_us += single_us;
                        target.class_backlog_us[request.class.index()] += single_us;
                        target.scheduler.enqueue(request, now_us);
                        balancer.note_admitted(request.session, dst);
                        target.issued += 1;
                        replaced += 1;
                        if tracing {
                            sink.record(request.trace(
                                now_us,
                                Some(dst),
                                RequestEventKind::Replace { from_shard: victim },
                            ));
                        }
                    }
                }
                Action::Drain => {
                    let shard = event.shard;
                    if shard >= shards.len() || shards[shard].phase != ShardState::Active {
                        continue;
                    }
                    let floor = policy.min_shards.max(1);
                    if active_count(&shards) <= floor {
                        continue;
                    }
                    shards[shard].phase = ShardState::Draining;
                    record(
                        &mut scale_events,
                        &shards,
                        now_us,
                        ScaleEventKind::Drain,
                        shard,
                        sink,
                        tracing,
                    );
                    if shards[shard].scheduler.queued() == 0 {
                        retire(&mut shards, &mut scale_events, now_us, shard, sink, tracing);
                    }
                }
                Action::Warm => {
                    let shard = event.shard;
                    if shards[shard].phase == ShardState::Warming {
                        shards[shard].phase = ShardState::Active;
                        // The fabric spent the warm-up streaming identity
                        // weights: nothing can have dispatched before this
                        // instant, even for work queued while warming.
                        shards[shard].free_at_us = shards[shard].free_at_us.max(now_us);
                        record(
                            &mut scale_events,
                            &shards,
                            now_us,
                            ScaleEventKind::Warm,
                            shard,
                            sink,
                            tracing,
                        );
                    }
                }
                Action::IdleCheck => {
                    let shard = event.shard;
                    if shard >= shards.len() {
                        continue;
                    }
                    shards[shard].idle_check_pending = false;
                    if shards[shard].phase != ShardState::Active
                        || shards[shard].scheduler.queued() > 0
                    {
                        continue; // a fresh check is scheduled when it idles again
                    }
                    if shards[shard].free_at_us + policy.idle_retire_us > now_us {
                        // Busy since the check was scheduled; look again
                        // once the full idle window has elapsed.
                        shards[shard].idle_check_pending = true;
                        push_event(
                            &mut lifecycle,
                            shards[shard].free_at_us + policy.idle_retire_us,
                            shard,
                            Action::IdleCheck,
                        );
                        continue;
                    }
                    let floor = policy.min_shards.max(1);
                    if active_count(&shards) <= floor {
                        continue;
                    }
                    // Idle retirement skips the Draining phase outright:
                    // the queue is empty, so the shard leaves in one step.
                    retire(&mut shards, &mut scale_events, now_us, shard, sink, tracing);
                }
            }
        } else if arrival_at <= dispatch_at {
            // --- Admission ---
            // Route one arrival at its issue instant, against the live
            // placeable shards; the admission controller then accepts it
            // onto the chosen shard's queue, sheds it, or the bounded
            // queue drops it. With no placeable shard left (every
            // survivor dead or draining), the request is lost outright.
            let request = due_arrival.expect("arrival_at is finite");
            next_arrival += 1;
            let now_us = request.issued_at_us;
            collect_placeable(&mut loads, &shards);
            if loads.is_empty() {
                lost[request.branch] += 1;
                class_lost[request.class.index()] += 1;
                if tracing {
                    sink.record(request.trace(now_us, None, RequestEventKind::Arrival));
                    sink.record(request.trace(
                        now_us,
                        None,
                        RequestEventKind::Lost { orphaned: false },
                    ));
                }
                continue;
            }
            let shard = balancer.place_traced(&request, &loads, now_us, capacity, sink, tracing);
            let target = &mut shards[shard];
            target.issued += 1;
            let single_us = target.model.batch_service_us(request.branch, 1);
            let view = target.admission_view(capacity, single_us, request.branch);
            if !admit_traced(admission, &request, &view, now_us, shard, sink, tracing) {
                shed[request.branch] += 1;
                class_shed[request.class.index()] += 1;
                target.shed += 1;
            } else if target.scheduler.queued() >= capacity {
                dropped[request.branch] += 1;
                class_dropped[request.class.index()] += 1;
                target.dropped += 1;
                if tracing {
                    sink.record(request.trace(now_us, Some(shard), RequestEventKind::Drop));
                }
            } else {
                if target.scheduler.queued() == 0 {
                    target.pending_since_us = now_us;
                }
                target.backlog_us += single_us;
                target.class_backlog_us[request.class.index()] += single_us;
                target.scheduler.enqueue(request, now_us);
                balancer.note_admitted(request.session, shard);
                if tracing {
                    sink.record(request.trace(now_us, Some(shard), RequestEventKind::Enqueue));
                }
            }
            // Queue-pressure scale-up: mean depth across active shards.
            if let Some(kind) = spawn.filter(|_| policy.scale_up_queue_depth > 0) {
                let actives = active_count(&shards);
                let queued: usize = shards
                    .iter()
                    .filter(|s| s.phase == ShardState::Active)
                    .map(|s| s.scheduler.queued())
                    .sum();
                if actives > 0
                    && queued >= policy.scale_up_queue_depth * actives
                    && alive_count(&shards) < policy.max_shards
                    && last_scale_up.is_none_or(|t| now_us >= t.saturating_add(policy.cooldown_us))
                {
                    do_spawn(
                        now_us,
                        kind,
                        policy,
                        &mut shards,
                        &mut lifecycle,
                        &mut push_event,
                        &mut scale_events,
                        sink,
                        tracing,
                    );
                    last_scale_up = Some(now_us);
                }
            }
        } else {
            // --- Dispatch ---
            // Dispatch one batch on the shard that fires earliest; its
            // fabric is busy (weight streaming, then compute) until the
            // whole batch completes. The empty slice tells the scheduler
            // the shard is fully time-multiplexed: every branch is
            // dispatchable the moment the fabric frees.
            let (now_us, shard) = next_dispatch.expect("dispatch_at is finite");
            let (batch, service_us, done_us) = {
                let s = &mut shards[shard];
                let batch = s.scheduler.next_batch(&s.model, now_us, &[]);
                debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
                let branch = batch[0].branch;
                debug_assert!(batch.iter().all(|r| r.branch == branch));
                let service_us = s.model.batch_service_us(branch, batch.len());
                (batch, service_us, now_us + service_us)
            };
            shards[shard].busy_us += service_us;
            if tracing {
                sink.record(TraceEvent::Batch(BatchEvent {
                    at_us: now_us,
                    shard,
                    branch: batch[0].branch,
                    len: batch.len(),
                    service_us,
                }));
            }
            for request in &batch {
                let latency_us = request.latency_us(done_us);
                if tracing {
                    sink.record(request.trace(now_us, Some(shard), RequestEventKind::ServiceStart));
                    sink.record(request.trace(
                        done_us,
                        Some(shard),
                        RequestEventKind::Complete { latency_us },
                    ));
                }
                branch_histograms[request.branch].record(latency_us);
                completed[request.branch] += 1;
                let class = request.class.index();
                class_histograms[class].record(latency_us);
                class_completed[class] += 1;
                if request.meets_slo(done_us) {
                    within_budget[class] += 1;
                }
                let s = &mut shards[shard];
                s.histogram.record(latency_us);
                s.completed += 1;
                let single_us = s.model.batch_service_us(request.branch, 1);
                s.backlog_us = s.backlog_us.saturating_sub(single_us);
                s.class_backlog_us[class] = s.class_backlog_us[class].saturating_sub(single_us);
                if let Some(split) = split_us {
                    if done_us < split {
                        pre_failure.record(latency_us);
                    } else {
                        post_failure.record(latency_us);
                    }
                }
                if spawn.is_some() && policy.scale_up_p99_ms > 0.0 {
                    if recent_latencies.len() == P99_WINDOW {
                        recent_latencies.pop_front();
                    }
                    recent_latencies.push_back(latency_us);
                }
            }
            shards[shard].free_at_us = done_us;
            shards[shard].pending_since_us = 0;
            if shards[shard].phase == ShardState::Draining && shards[shard].scheduler.queued() == 0
            {
                retire(
                    &mut shards,
                    &mut scale_events,
                    done_us,
                    shard,
                    sink,
                    tracing,
                );
            } else if shards[shard].phase == ShardState::Active
                && shards[shard].scheduler.queued() == 0
                && policy.idle_retire_us > 0
                && !shards[shard].idle_check_pending
            {
                shards[shard].idle_check_pending = true;
                push_event(
                    &mut lifecycle,
                    done_us + policy.idle_retire_us,
                    shard,
                    Action::IdleCheck,
                );
            }
            // Rolling-p99 scale-up trigger.
            if let Some(kind) = spawn.filter(|_| {
                policy.scale_up_p99_ms > 0.0
                    && recent_latencies.len() >= P99_MIN_SAMPLES
                    && alive_count(&shards) < policy.max_shards
                    && last_scale_up.is_none_or(|t| done_us >= t.saturating_add(policy.cooldown_us))
            }) {
                let mut window: Vec<u64> = recent_latencies.iter().copied().collect();
                window.sort_unstable();
                let rank =
                    f64_to_usize((usize_to_f64(window.len()) * 0.99).ceil()).clamp(1, window.len());
                let p99_ms = u64_to_f64(window[rank - 1]) / 1_000.0;
                if p99_ms >= policy.scale_up_p99_ms {
                    do_spawn(
                        done_us,
                        kind,
                        policy,
                        &mut shards,
                        &mut lifecycle,
                        &mut push_event,
                        &mut scale_events,
                        sink,
                        tracing,
                    );
                    last_scale_up = Some(done_us);
                }
            }
        }
    }

    // Events carry true timestamps but can be appended slightly out of
    // order (a retirement is stamped at its final batch's completion,
    // which the loop processes at the batch's start time); a stable sort
    // restores the promised time order while keeping the causal
    // fail → up → warm sequence at equal instants.
    scale_events.sort_by(|a, b| a.at_sec.total_cmp(&b.at_sec));

    let shard_count = shards.len();
    let total_issued: u64 = issued.iter().sum();
    let total_completed: u64 = completed.iter().sum();
    let total_dropped: u64 = dropped.iter().sum();
    let total_lost: u64 = lost.iter().sum();
    let total_shed: u64 = shed.iter().sum();
    let total_within: u64 = within_budget.iter().sum();
    let total_busy_us: u64 = shards.iter().map(|s| s.busy_us).sum();
    // Conservation: every issued request retires through exactly one of
    // completed / dropped / lost / shed. Checked at report assembly, per
    // branch and per class, and fleet-wide; debug builds only, so every
    // test run audits the books at zero release cost.
    debug_assert_eq!(
        total_completed + total_dropped + total_lost + total_shed,
        total_issued,
        "fleet-wide request conservation violated"
    );
    for index in 0..issued.len() {
        debug_assert_eq!(
            completed[index] + dropped[index] + lost[index] + shed[index],
            issued[index],
            "branch {index} request conservation violated"
        );
    }
    for index in 0..class_issued.len() {
        debug_assert_eq!(
            class_completed[index] + class_dropped[index] + class_lost[index] + class_shed[index],
            class_issued[index],
            "class {index} request conservation violated"
        );
    }
    // Per shard the `lost` term vanishes: a lost request was orphaned off
    // its dead shard's books (and never reached a live one), so it belongs
    // to no shard at all.
    for (index, s) in shards.iter().enumerate() {
        debug_assert_eq!(
            s.completed + s.dropped + s.shed,
            s.issued,
            "shard {index} request conservation violated"
        );
    }
    let makespan_us = shards.iter().map(|s| s.free_at_us).max().unwrap_or(0);
    let makespan_sec = u64_to_f64(makespan_us) / 1e6;
    // The fleet-wide latency distribution is the exact merge of the
    // per-shard histograms (fixed buckets make the merge lossless).
    let mut overall = LatencyHistogram::new();
    for shard in &shards {
        overall.merge(&shard.histogram);
    }
    let branches = shards[0]
        .model
        .branches
        .iter()
        .enumerate()
        .map(|(index, service)| BranchServeStats {
            name: service.name.clone(),
            priority: service.priority,
            issued: issued[index],
            completed: completed[index],
            dropped: dropped[index],
            lost: lost[index],
            shed: shed[index],
            latency: LatencySummary::of(&branch_histograms[index]),
        })
        .collect();
    let classes: Vec<ClassServeStats> = QosClass::all()
        .iter()
        .map(|class| {
            let index = class.index();
            ClassServeStats {
                class: *class,
                budget_ms: class.budget_ms(),
                weight: class.weight(),
                issued: class_issued[index],
                completed: class_completed[index],
                dropped: class_dropped[index],
                lost: class_lost[index],
                shed: class_shed[index],
                slo_attainment: attainment(within_budget[index], class_completed[index]),
                latency: LatencySummary::of(&class_histograms[index]),
            }
        })
        .collect();
    let shard_stats: Vec<ShardStats> = shards
        .iter()
        .map(|s| ShardStats {
            issued: s.issued,
            completed: s.completed,
            dropped: s.dropped,
            shed: s.shed,
            state: s.phase,
            utilization: if makespan_us > 0 {
                u64_to_f64(s.busy_us) / u64_to_f64(makespan_us)
            } else {
                0.0
            },
            latency: LatencySummary::of(&s.histogram),
        })
        .collect();
    let imbalance = {
        let max = shards.iter().map(|s| s.busy_us).max().unwrap_or(0);
        let min = shards.iter().map(|s| s.busy_us).min().unwrap_or(0);
        let mean = u64_to_f64(total_busy_us) / usize_to_f64(shard_count);
        if mean > 0.0 {
            u64_to_f64(max - min) / mean
        } else {
            0.0
        }
    };
    // A fleet built by `simulate_fleet` runs one discipline everywhere;
    // caller-provided shard schedulers may mix disciplines, and the report
    // says so rather than quoting shard 0 for the whole fleet.
    let scheduler_name = if shards
        .iter()
        .all(|s| s.scheduler.name() == shards[0].scheduler.name())
    {
        shards[0].scheduler.name()
    } else {
        "mixed"
    };
    ServeReport {
        scenario: scenario.name.clone(),
        scheduler: scheduler_name.to_owned(),
        balancer: config.balancer.name().to_owned(),
        seed: scenario.seed,
        sessions: scenario.sessions,
        issued: total_issued,
        completed: total_completed,
        dropped: total_dropped,
        drop_rate: if total_issued == 0 {
            0.0
        } else {
            u64_to_f64(total_dropped) / u64_to_f64(total_issued)
        },
        makespan_sec,
        throughput_rps: if makespan_sec > 0.0 {
            u64_to_f64(total_completed) / makespan_sec
        } else {
            0.0
        },
        utilization: if makespan_us > 0 {
            u64_to_f64(total_busy_us) / u64_to_f64(usize_to_u64(shard_count) * makespan_us)
        } else {
            0.0
        },
        imbalance,
        latency: LatencySummary::of(&overall),
        branches,
        shards: shard_stats,
        replaced,
        lost: total_lost,
        availability: if total_issued == 0 {
            1.0
        } else {
            u64_to_f64(total_completed) / u64_to_f64(total_issued)
        },
        latency_pre_failure: LatencySummary::of(&pre_failure),
        latency_post_failure: LatencySummary::of(&post_failure),
        scale_events,
        shed: total_shed,
        admission: admission.name().to_owned(),
        slo_attainment: attainment(total_within, total_completed),
        classes,
        trace_summary: None,
    }
}

/// SLO attainment: completions within budget over completions, 1.0 when
/// nothing completed (vacuously met).
fn attainment(within: u64, completed: u64) -> f64 {
    if completed == 0 {
        1.0
    } else {
        u64_to_f64(within) / u64_to_f64(completed)
    }
}

/// Fills `loads` with the placeable shards' `(global id, load)` pairs:
/// the active shards, or — only when none is active — the warming ones
/// (their queues hold until warmed, but the work is not lost).
fn collect_placeable(loads: &mut Vec<(usize, ShardLoad)>, shards: &[Shard]) {
    for wanted in [ShardState::Active, ShardState::Warming] {
        loads.clear();
        loads.extend(
            shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.phase == wanted)
                .map(|(index, s)| (index, s.load())),
        );
        if !loads.is_empty() {
            return;
        }
    }
}

/// Decommissions a shard (from Draining, or straight from Active on idle
/// retirement — its queue is already empty) and logs the retirement.
fn retire(
    shards: &mut [Shard],
    events: &mut Vec<ScaleEvent>,
    at_us: u64,
    shard: usize,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    shards[shard].phase = ShardState::Retired;
    record(
        events,
        shards,
        at_us,
        ScaleEventKind::Retire,
        shard,
        sink,
        tracing,
    );
}

/// Appends a scale event with the post-event active-shard count, mirrored
/// as an instant on the trace timeline so fleet transitions line up with
/// the request spans they explain.
#[allow(clippy::too_many_arguments)]
fn record(
    events: &mut Vec<ScaleEvent>,
    shards: &[Shard],
    at_us: u64,
    kind: ScaleEventKind,
    shard: usize,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    let active_after = active_count(shards);
    events.push(ScaleEvent {
        at_sec: u64_to_f64(at_us) / 1e6,
        kind,
        shard,
        active_after,
    });
    if tracing {
        sink.record(TraceEvent::Fleet(FleetEvent {
            at_us,
            shard,
            kind: kind.fleet_kind(),
            active_after,
        }));
    }
}

/// Spawns one warming shard cloned from shard 0's service model and
/// schedules its warm-up completion (plus its first idle check). The
/// shard dispatches nothing until the `Warm` event fires — the warm-up
/// handler raises `free_at_us` to the warm instant, so even work queued
/// while warming cannot complete before the weight fill ends.
#[allow(clippy::too_many_arguments)]
fn do_spawn<'a>(
    now_us: u64,
    kind: SchedulerKind,
    policy: &Autoscaler,
    shards: &mut Vec<Shard<'a>>,
    lifecycle: &mut Vec<Lifecycle>,
    push_event: &mut impl FnMut(&mut Vec<Lifecycle>, u64, usize, Action),
    scale_events: &mut Vec<ScaleEvent>,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    let shard = shards.len();
    let template = shards[0].model.clone();
    shards.push(Shard::new(template, kind.build(), ShardState::Warming));
    push_event(lifecycle, now_us + policy.warmup_us, shard, Action::Warm);
    if policy.idle_retire_us > 0 {
        shards[shard].idle_check_pending = true;
        push_event(
            lifecycle,
            now_us + policy.warmup_us + policy.idle_retire_us,
            shard,
            Action::IdleCheck,
        );
    }
    record(
        scale_events,
        shards,
        now_us,
        ScaleEventKind::Up,
        shard,
        sink,
        tracing,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::LoadBalancerKind;
    use crate::model::test_model;

    #[test]
    fn every_scheduler_conserves_requests_on_the_whole_suite() {
        let model = test_model();
        for scenario in Scenario::suite() {
            for &kind in SchedulerKind::all() {
                let report = simulate(&model, &scenario, kind);
                assert!(
                    report.conserves_requests(),
                    "{} / {}: {} completed + {} dropped != {} issued",
                    report.scenario,
                    report.scheduler,
                    report.completed,
                    report.dropped,
                    report.issued
                );
                assert!(report.utilization <= 1.0 + 1e-9);
                assert!(report.latency.p99_ms >= report.latency.p50_ms);
                assert_eq!(report.shard_count(), 1);
                assert_eq!(report.imbalance, 0.0);
            }
        }
    }

    #[test]
    fn identical_inputs_give_identical_reports() {
        let model = test_model();
        let scenario = Scenario::b2();
        let a = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        let b = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        assert_eq!(a, b);
    }

    #[test]
    fn an_unloaded_single_session_sees_no_queueing() {
        // One 30 Hz session, service well under the 33 ms frame budget:
        // every request completes in its own service time.
        let model = test_model();
        let report = simulate(&model, &Scenario::a1(), SchedulerKind::Fifo);
        assert_eq!(report.dropped, 0);
        // Worst single-request service time in the model is 5 ms + fill.
        assert!(
            report.latency.max_ms <= 20.0,
            "unloaded max latency {} ms",
            report.latency.max_ms
        );
        assert!(report.utilization < 0.5);
    }

    #[test]
    fn batching_beats_fifo_on_throughput_under_fanout_load() {
        let model = test_model();
        let scenario = Scenario::a2(8);
        let fifo = simulate(&model, &scenario, SchedulerKind::Fifo);
        let batch = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        // Amortized fill means the batch scheduler finishes the same work
        // no later (and strictly earlier whenever any batch formed).
        assert!(batch.makespan_sec <= fifo.makespan_sec);
        assert!(batch.latency.p99_ms <= fifo.latency.p99_ms);
    }

    #[test]
    fn scenario_priority_override_reaches_the_report() {
        let model = test_model();
        let report = simulate(&model, &Scenario::b2(), SchedulerKind::PriorityByBranch);
        assert_eq!(report.branches[0].priority, 1.0);
        assert_eq!(report.branches[2].priority, 0.15);
    }

    #[test]
    fn empty_scenario_produces_an_empty_report() {
        let model = test_model();
        let scenario = Scenario::a1().with_sessions(0);
        let report = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        assert_eq!(report.issued, 0);
        assert_eq!(report.completed, 0);
        assert!(report.conserves_requests());
        assert_eq!(report.throughput_rps, 0.0);
        assert_eq!(report.availability, 1.0);
    }

    #[test]
    fn fleet_reports_conserve_and_split_work_across_shards() {
        let model = test_model();
        let scenario = Scenario::b2();
        for &balancer in LoadBalancerKind::all() {
            let config = FleetConfig::uniform(model.clone(), 3).with_balancer(balancer);
            let report = simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating);
            assert!(report.conserves_requests(), "{}", balancer.name());
            assert_eq!(report.shard_count(), 3);
            assert_eq!(report.balancer, balancer.name());
            // Under b2's five bursty sessions every policy must spread
            // work over more than one shard.
            let active = report.shards.iter().filter(|s| s.completed > 0).count();
            assert!(active >= 2, "{}: all work on one shard", balancer.name());
        }
    }

    #[test]
    fn adding_shards_cannot_hurt_the_burst_tail() {
        let model = test_model();
        let scenario = Scenario::b2();
        let one = simulate_fleet(
            &FleetConfig::uniform(model.clone(), 1).with_balancer(LoadBalancerKind::LeastLoaded),
            &scenario,
            SchedulerKind::BatchAggregating,
        );
        let four = simulate_fleet(
            &FleetConfig::uniform(model, 4).with_balancer(LoadBalancerKind::LeastLoaded),
            &scenario,
            SchedulerKind::BatchAggregating,
        );
        assert!(
            four.latency.p99_ms < one.latency.p99_ms,
            "4 shards p99 {} !< 1 shard p99 {}",
            four.latency.p99_ms,
            one.latency.p99_ms
        );
        assert!(four.dropped <= one.dropped);
    }

    #[test]
    fn mixed_shard_schedulers_are_reported_as_mixed() {
        use crate::scheduler::{FifoScheduler, PriorityScheduler};
        let config = FleetConfig::uniform(test_model(), 2);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(PriorityScheduler::new()),
        ];
        let report = simulate_fleet_with(&config, &Scenario::b2(), &mut schedulers);
        assert_eq!(report.scheduler, "mixed");
        assert!(report.conserves_requests());
    }

    #[test]
    fn heterogeneous_fleets_load_the_faster_shard_harder() {
        let fast = test_model();
        let mut slow = test_model();
        for branch in &mut slow.branches {
            branch.frame_time_us *= 4;
            branch.fill_time_us *= 4;
        }
        let config = FleetConfig::heterogeneous(vec![fast, slow])
            .with_balancer(LoadBalancerKind::LeastLoaded);
        let report = simulate_fleet(&config, &Scenario::b2(), SchedulerKind::BatchAggregating);
        assert!(report.conserves_requests());
        assert!(
            report.shards[0].completed > report.shards[1].completed,
            "fast shard completed {} !> slow shard {}",
            report.shards[0].completed,
            report.shards[1].completed
        );
    }

    #[test]
    fn a_fixed_fleet_reports_every_shard_active_and_no_events() {
        let report = simulate_fleet(
            &FleetConfig::uniform(test_model(), 2),
            &Scenario::b2(),
            SchedulerKind::BatchAggregating,
        );
        assert!(report.scale_events.is_empty());
        assert_eq!(report.replaced, 0);
        assert_eq!(report.lost, 0);
        assert!(report
            .shards
            .iter()
            .all(|s| s.state == crate::ShardState::Active));
        assert_eq!(report.latency_pre_failure, LatencySummary::default());
        assert_eq!(report.latency_post_failure, LatencySummary::default());
    }

    #[test]
    fn a_mid_run_failure_re_places_or_loses_the_orphaned_queue() {
        let config =
            FleetConfig::uniform(test_model(), 2).with_balancer(LoadBalancerKind::LeastLoaded);
        let scenario = Scenario::b2();
        let plan = FailurePlan::scheduled(&[(1_000_000, 1)]);
        let report = simulate_autoscaled(
            &config,
            &scenario,
            SchedulerKind::BatchAggregating,
            &Autoscaler::none(),
            &plan,
        );
        assert!(report.conserves_requests());
        assert_eq!(report.shards[1].state, crate::ShardState::Failed);
        assert_eq!(report.shards[0].state, crate::ShardState::Active);
        assert!(
            report
                .scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Fail && e.shard == 1),
            "missing fail event: {:?}",
            report.scale_events
        );
        // The surviving shard carries strictly more than half the work.
        assert!(report.shards[0].completed > report.completed / 2);
    }

    #[test]
    fn killing_a_nonexistent_shard_changes_nothing() {
        let config = FleetConfig::uniform(test_model(), 2);
        let scenario = Scenario::b2();
        let baseline = simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating);
        let with_noop_kill = simulate_autoscaled(
            &config,
            &scenario,
            SchedulerKind::BatchAggregating,
            &Autoscaler::none(),
            &FailurePlan::scheduled(&[(1_000_000, 9)]),
        );
        // The phantom kill fires on no shard; only the pre/post-failure
        // split (anchored at the scheduled instant) may differ.
        assert_eq!(baseline.completed, with_noop_kill.completed);
        assert_eq!(baseline.latency, with_noop_kill.latency);
        assert!(with_noop_kill.scale_events.is_empty());
        assert_eq!(with_noop_kill.lost, 0);
    }

    #[test]
    fn admit_all_is_the_legacy_engine_bit_for_bit() {
        let model = test_model();
        for scenario in [Scenario::b2(), Scenario::b2_qos()] {
            for &kind in SchedulerKind::all() {
                let legacy = simulate(&model, &scenario, kind);
                let qos = simulate_qos(&model, &scenario, kind, AdmissionKind::AdmitAll);
                assert_eq!(legacy, qos, "{} / {:?}", scenario.name, kind);
                assert_eq!(legacy.shed, 0);
                assert_eq!(legacy.admission, "admit_all");
            }
        }
    }

    #[test]
    fn classless_runs_put_everything_in_the_standard_row() {
        let model = test_model();
        let report = simulate(&model, &Scenario::b2(), SchedulerKind::PriorityByBranch);
        assert!(report.conserves_requests());
        let standard = report.class(QosClass::Standard).expect("standard row");
        assert_eq!(standard.issued, report.issued);
        assert_eq!(standard.completed, report.completed);
        assert_eq!(standard.latency, report.latency);
        for class in [QosClass::Interactive, QosClass::BestEffort] {
            let row = report.class(class).expect("class row");
            assert_eq!(row.issued, 0);
            assert_eq!(row.slo_attainment, 1.0, "vacuous SLO on an empty row");
        }
    }

    /// `test_model` slowed 4× so the b2_qos burst genuinely oversubscribes
    /// one device and the shedding policies have something to shed.
    fn slow_model() -> ServiceModel {
        let mut model = test_model();
        for branch in &mut model.branches {
            branch.frame_time_us *= 4;
            branch.fill_time_us *= 4;
        }
        model
    }

    #[test]
    fn shedding_policies_conserve_with_the_fourth_outcome() {
        let model = slow_model();
        let scenario = Scenario::b2_qos();
        for &admission in AdmissionKind::all() {
            for &kind in SchedulerKind::all() {
                let report = simulate_qos(&model, &scenario, kind, admission);
                assert!(
                    report.conserves_requests(),
                    "{} / {:?}: {} + {} + {} + {} != {}",
                    admission.name(),
                    kind,
                    report.completed,
                    report.dropped,
                    report.lost,
                    report.shed,
                    report.issued
                );
                assert_eq!(report.admission, admission.name());
            }
        }
        // The b2_qos burst oversubscribes one device, so both shedding
        // policies must actually shed.
        for admission in [AdmissionKind::QueueThreshold, AdmissionKind::BudgetAware] {
            let report = simulate_qos(
                &model,
                &scenario,
                SchedulerKind::PriorityByBranch,
                admission,
            );
            assert!(report.shed > 0, "{} never shed", admission.name());
        }
    }

    #[test]
    fn queue_thresholds_protect_the_interactive_tier() {
        let model = slow_model();
        let scenario = Scenario::b2_qos();
        let report = simulate_qos(
            &model,
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::QueueThreshold,
        );
        let interactive = report.class(QosClass::Interactive).expect("row");
        let best_effort = report.class(QosClass::BestEffort).expect("row");
        assert!(best_effort.shed > 0, "lower tiers shed first");
        // Interactive is only turned away at a literally full queue, so
        // its shed rate stays below the best-effort tier's.
        let rate = |c: &crate::ClassServeStats| c.shed as f64 / c.issued.max(1) as f64;
        assert!(rate(interactive) < rate(best_effort));
    }

    #[test]
    fn queue_pressure_spawns_within_policy_bounds() {
        // One shard under five bursty sessions trips the depth trigger.
        let config = FleetConfig::uniform(test_model(), 1);
        let policy = Autoscaler::reactive(1, 3)
            .with_scale_up_queue_depth(4)
            .with_warmup_us(10_000)
            .with_cooldown_us(50_000)
            .with_idle_retire_us(0);
        let report = simulate_autoscaled(
            &config,
            &Scenario::b2(),
            SchedulerKind::BatchAggregating,
            &policy,
            &FailurePlan::none(),
        );
        assert!(report.conserves_requests());
        let ups = report
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Up)
            .count();
        assert!(
            ups >= 1,
            "pressure never tripped: {:?}",
            report.scale_events
        );
        assert!(report.shard_count() <= 3);
        // Every spawned shard eventually warmed and served.
        for shard in &report.shards[1..] {
            assert!(shard.completed > 0, "spawned shard never served");
        }
    }
}
