//! The deterministic discrete-event serving loop.
//!
//! One accelerator serves every avatar session, time-multiplexed (Table V
//! of the paper scales a single decoder accelerator to 1/3/5 concurrent
//! avatars). Each codec-avatar session decodes with its own
//! identity-specific weights, so a dispatch pays the branch's fill time
//! (weight streaming plus pipeline refill) before its batch computes:
//! `service = fill + batch × frame_time`. That fill term is exactly where
//! the disciplines differ — FIFO pays it on every request, priority-by-
//! branch spends it on the visual branches first, and batch aggregation
//! amortizes it over the DSE-chosen batch size.
//!
//! Because dispatches serialize on the shared fabric, the event loop needs
//! no event heap: arrivals are pre-generated in time order and admitted as
//! the clock advances past them, and the clock only ever moves to the next
//! dispatch completion. Admission happens in arrival order against the
//! live queue occupancy, so drops are exactly what a heap-based simulator
//! would produce — just without any nondeterminism.

use crate::histogram::LatencyHistogram;
use crate::model::ServiceModel;
use crate::report::{BranchServeStats, LatencySummary, ServeReport};
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

/// Runs `scenario` against `model` under the given discipline and returns
/// the aggregated report.
///
/// Scenario priority overrides (if any) replace the model's per-branch
/// priorities for the run. Identical `(model, scenario, kind)` inputs
/// produce identical reports.
pub fn simulate(model: &ServiceModel, scenario: &Scenario, kind: SchedulerKind) -> ServeReport {
    let mut scheduler = kind.build();
    simulate_with(model, scenario, scheduler.as_mut())
}

/// [`simulate`] with a caller-provided scheduler (for custom disciplines or
/// tuned aging rates).
pub fn simulate_with(
    model: &ServiceModel,
    scenario: &Scenario,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let model = match &scenario.priorities {
        Some(priorities) => model.clone().with_priorities(priorities),
        None => model.clone(),
    };
    let branch_count = model.branch_count();
    let arrivals = scenario.generate(branch_count);

    let mut issued = vec![0u64; branch_count];
    let mut completed = vec![0u64; branch_count];
    let mut dropped = vec![0u64; branch_count];
    let mut histograms: Vec<LatencyHistogram> =
        (0..branch_count).map(|_| LatencyHistogram::new()).collect();
    let mut overall = LatencyHistogram::new();
    for request in &arrivals {
        issued[request.branch] += 1;
    }

    let mut next_arrival = 0; // index into `arrivals`
    let mut now_us = 0u64; // the instant the shared fabric is free
    let mut busy_us = 0u64;
    let mut last_completion_us = 0u64;

    while next_arrival < arrivals.len() || scheduler.queued() > 0 {
        // Idle front end with an empty queue: jump to the next arrival.
        if scheduler.queued() == 0 {
            now_us = now_us.max(arrivals[next_arrival].issued_at_us);
        }
        // Admit everything that has arrived by `now`, in arrival order,
        // against the live queue occupancy.
        while next_arrival < arrivals.len() && arrivals[next_arrival].issued_at_us <= now_us {
            let request = arrivals[next_arrival];
            next_arrival += 1;
            if scheduler.queued() >= scenario.queue_capacity {
                dropped[request.branch] += 1;
            } else {
                scheduler.enqueue(request, now_us);
            }
        }
        if scheduler.queued() == 0 {
            continue;
        }
        // Dispatch one batch; the fabric is busy (weight streaming, then
        // compute) until the whole batch completes. The empty slice tells
        // the scheduler the fabric is fully time-multiplexed: every branch
        // is dispatchable the moment the fabric frees.
        let batch = scheduler.next_batch(&model, now_us, &[]);
        debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
        let branch = batch[0].branch;
        debug_assert!(batch.iter().all(|r| r.branch == branch));
        let service_us = model.batch_service_us(branch, batch.len());
        let done_us = now_us + service_us;
        busy_us += service_us;
        for request in &batch {
            let latency_us = request.latency_us(done_us);
            histograms[request.branch].record(latency_us);
            overall.record(latency_us);
            completed[request.branch] += 1;
        }
        now_us = done_us;
        last_completion_us = done_us;
    }

    let total_issued: u64 = issued.iter().sum();
    let total_completed: u64 = completed.iter().sum();
    let total_dropped: u64 = dropped.iter().sum();
    let makespan_sec = last_completion_us as f64 / 1e6;
    let branches = model
        .branches
        .iter()
        .enumerate()
        .map(|(index, service)| BranchServeStats {
            name: service.name.clone(),
            priority: service.priority,
            issued: issued[index],
            completed: completed[index],
            dropped: dropped[index],
            latency: LatencySummary::of(&histograms[index]),
        })
        .collect();
    ServeReport {
        scenario: scenario.name.clone(),
        scheduler: scheduler.name().to_owned(),
        seed: scenario.seed,
        sessions: scenario.sessions,
        issued: total_issued,
        completed: total_completed,
        dropped: total_dropped,
        drop_rate: if total_issued == 0 {
            0.0
        } else {
            total_dropped as f64 / total_issued as f64
        },
        makespan_sec,
        throughput_rps: if makespan_sec > 0.0 {
            total_completed as f64 / makespan_sec
        } else {
            0.0
        },
        utilization: if last_completion_us > 0 {
            busy_us as f64 / last_completion_us as f64
        } else {
            0.0
        },
        latency: LatencySummary::of(&overall),
        branches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model;

    #[test]
    fn every_scheduler_conserves_requests_on_the_whole_suite() {
        let model = test_model();
        for scenario in Scenario::suite() {
            for kind in SchedulerKind::all() {
                let report = simulate(&model, &scenario, kind);
                assert!(
                    report.conserves_requests(),
                    "{} / {}: {} completed + {} dropped != {} issued",
                    report.scenario,
                    report.scheduler,
                    report.completed,
                    report.dropped,
                    report.issued
                );
                assert!(report.utilization <= 1.0 + 1e-9);
                assert!(report.latency.p99_ms >= report.latency.p50_ms);
            }
        }
    }

    #[test]
    fn identical_inputs_give_identical_reports() {
        let model = test_model();
        let scenario = Scenario::b2();
        let a = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        let b = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        assert_eq!(a, b);
    }

    #[test]
    fn an_unloaded_single_session_sees_no_queueing() {
        // One 30 Hz session, service well under the 33 ms frame budget:
        // every request completes in its own service time.
        let model = test_model();
        let report = simulate(&model, &Scenario::a1(), SchedulerKind::Fifo);
        assert_eq!(report.dropped, 0);
        // Worst single-request service time in the model is 5 ms + fill.
        assert!(
            report.latency.max_ms <= 20.0,
            "unloaded max latency {} ms",
            report.latency.max_ms
        );
        assert!(report.utilization < 0.5);
    }

    #[test]
    fn batching_beats_fifo_on_throughput_under_fanout_load() {
        let model = test_model();
        let scenario = Scenario::a2(8);
        let fifo = simulate(&model, &scenario, SchedulerKind::Fifo);
        let batch = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        // Amortized fill means the batch scheduler finishes the same work
        // no later (and strictly earlier whenever any batch formed).
        assert!(batch.makespan_sec <= fifo.makespan_sec);
        assert!(batch.latency.p99_ms <= fifo.latency.p99_ms);
    }

    #[test]
    fn scenario_priority_override_reaches_the_report() {
        let model = test_model();
        let report = simulate(&model, &Scenario::b2(), SchedulerKind::PriorityByBranch);
        assert_eq!(report.branches[0].priority, 1.0);
        assert_eq!(report.branches[2].priority, 0.15);
    }

    #[test]
    fn empty_scenario_produces_an_empty_report() {
        let model = test_model();
        let scenario = Scenario::a1().with_sessions(0);
        let report = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        assert_eq!(report.issued, 0);
        assert_eq!(report.completed, 0);
        assert!(report.conserves_requests());
        assert_eq!(report.throughput_rps, 0.0);
    }
}
