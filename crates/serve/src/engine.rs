//! The deterministic discrete-event serving loop, from one accelerator to
//! a fleet of them.
//!
//! Each shard is one accelerator serving its admitted sessions
//! time-multiplexed (Table V of the paper scales a single decoder
//! accelerator to 1/3/5 concurrent avatars). Each codec-avatar session
//! decodes with its own identity-specific weights, so a dispatch pays the
//! branch's fill time (weight streaming plus pipeline refill) before its
//! batch computes: `service = fill + batch × frame_time`. That fill term is
//! exactly where the disciplines differ — FIFO pays it on every request,
//! priority-by-branch spends it on the visual branches first, and batch
//! aggregation amortizes it over the DSE-chosen batch size.
//!
//! The fleet loop needs no event heap: arrivals are pre-generated in time
//! order, and the only other events are shard dispatch completions, one
//! pending per shard. Every step processes the earliest event — arrivals
//! win ties, and dispatches tie-break on the lowest shard index — so the
//! whole simulation is a deterministic function of its inputs. Admission
//! happens in arrival order against the chosen shard's live queue
//! occupancy (the balancer picks the shard, the shard's bounded queue
//! takes the drop), which is exactly what a heap-based simulator would
//! produce, without any nondeterminism.
//!
//! The single-device [`simulate`]/[`simulate_with`] path *is* the
//! one-shard special case of [`simulate_fleet_with`]: same loop, same
//! admission order, same arithmetic, bit-identical reports.

use crate::fleet::{Balancer, FleetConfig, ShardLoad};
use crate::histogram::LatencyHistogram;
use crate::model::ServiceModel;
use crate::report::{BranchServeStats, LatencySummary, ServeReport, ShardStats};
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

/// Runs `scenario` against a single accelerator `model` under the given
/// discipline and returns the aggregated report.
///
/// Scenario priority overrides (if any) replace the model's per-branch
/// priorities for the run. Identical `(model, scenario, kind)` inputs
/// produce identical reports. This is exactly the one-shard fleet.
pub fn simulate(model: &ServiceModel, scenario: &Scenario, kind: SchedulerKind) -> ServeReport {
    simulate_fleet(&FleetConfig::uniform(model.clone(), 1), scenario, kind)
}

/// [`simulate`] with a caller-provided scheduler (for custom disciplines or
/// tuned aging rates).
pub fn simulate_with(
    model: &ServiceModel,
    scenario: &Scenario,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let config = FleetConfig::uniform(model.clone(), 1);
    let mut one: [Box<dyn Scheduler + '_>; 1] = [Box::new(scheduler)];
    simulate_fleet_with(&config, scenario, &mut one)
}

/// Runs `scenario` against a fleet of accelerator shards, each scheduled by
/// a fresh instance of `kind`, with `config.balancer` placing arrivals.
///
/// Identical `(config, scenario, kind)` inputs produce identical reports,
/// and a one-shard config reproduces [`simulate`] bit for bit (modulo the
/// report's balancer name).
pub fn simulate_fleet(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
) -> ServeReport {
    let mut schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    simulate_fleet_with(config, scenario, &mut schedulers)
}

/// [`simulate_fleet`] with caller-provided per-shard schedulers (one per
/// shard, in shard order). Borrowed schedulers box in via the
/// `&mut dyn Scheduler` forwarding impl.
pub fn simulate_fleet_with(
    config: &FleetConfig,
    scenario: &Scenario,
    schedulers: &mut [Box<dyn Scheduler + '_>],
) -> ServeReport {
    let shard_count = config.shard_count();
    // Hand-built or deserialized configs can reach this point without ever
    // passing through `uniform`/`heterogeneous`; re-check their invariants.
    config.assert_valid();
    assert_eq!(
        schedulers.len(),
        shard_count,
        "one scheduler per shard ({} shards, {} schedulers)",
        shard_count,
        schedulers.len()
    );
    // Scenario priority overrides apply fleet-wide: every shard serves the
    // same branch structure under the same priorities.
    let models: Vec<ServiceModel> = config
        .shards
        .iter()
        .map(|model| match &scenario.priorities {
            Some(priorities) => model.clone().with_priorities(priorities),
            None => model.clone(),
        })
        .collect();
    let branch_count = config.branch_count();
    let arrivals = scenario.generate(branch_count);
    let mut balancer = Balancer::new(config.balancer);

    // Per-branch accounting, merged across shards.
    let mut issued = vec![0u64; branch_count];
    let mut completed = vec![0u64; branch_count];
    let mut dropped = vec![0u64; branch_count];
    let mut branch_histograms: Vec<LatencyHistogram> =
        (0..branch_count).map(|_| LatencyHistogram::new()).collect();
    for request in &arrivals {
        issued[request.branch] += 1;
    }

    // Per-shard state. `free_at_us` is the instant the shard's fabric
    // frees — equivalently its last dispatch completion, which is why the
    // makespan reads straight off it below; `pending_since_us` is the
    // arrival instant that made its queue non-empty (a shard with queued
    // work dispatches at `max(free_at, pending_since)`).
    let mut free_at_us = vec![0u64; shard_count];
    let mut pending_since_us = vec![0u64; shard_count];
    let mut busy_us = vec![0u64; shard_count];
    let mut backlog_us = vec![0u64; shard_count];
    let mut shard_issued = vec![0u64; shard_count];
    let mut shard_completed = vec![0u64; shard_count];
    let mut shard_dropped = vec![0u64; shard_count];
    let mut shard_histograms: Vec<LatencyHistogram> =
        (0..shard_count).map(|_| LatencyHistogram::new()).collect();

    let mut next_arrival = 0; // index into `arrivals`

    // Scratch buffer for the balancer's view of the fleet, refilled per
    // admission (hoisted out of the loop: admission runs once per request).
    let mut loads: Vec<ShardLoad> = Vec::with_capacity(shard_count);
    loop {
        // The earliest pending dispatch across the fleet: a shard with
        // queued work fires at `max(free_at, pending_since)`; ties go to
        // the lowest shard index (the `(time, index)` min).
        let next_dispatch = (0..shard_count)
            .filter(|&shard| schedulers[shard].queued() > 0)
            .map(|shard| (free_at_us[shard].max(pending_since_us[shard]), shard))
            .min();
        let due_arrival = arrivals.get(next_arrival).copied();
        let admit = match (due_arrival, next_dispatch) {
            (None, None) => break,
            (Some(request), Some((dispatch_at, _))) => request.issued_at_us <= dispatch_at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if admit {
            // Route one arrival at its issue instant, against the live
            // shard loads, then admit or drop on the chosen shard's queue.
            let request = due_arrival.expect("admit implies a due arrival");
            next_arrival += 1;
            let now_us = request.issued_at_us;
            loads.clear();
            loads.extend((0..shard_count).map(|shard| ShardLoad {
                queued: schedulers[shard].queued(),
                free_at_us: free_at_us[shard],
                backlog_us: backlog_us[shard],
            }));
            let shard = balancer.place(&request, &loads, now_us, scenario.queue_capacity);
            shard_issued[shard] += 1;
            if schedulers[shard].queued() >= scenario.queue_capacity {
                dropped[request.branch] += 1;
                shard_dropped[shard] += 1;
            } else {
                if schedulers[shard].queued() == 0 {
                    pending_since_us[shard] = now_us;
                }
                backlog_us[shard] += models[shard].batch_service_us(request.branch, 1);
                schedulers[shard].enqueue(request, now_us);
                balancer.note_admitted(request.session, shard);
            }
        } else {
            // Dispatch one batch on the shard that fires earliest; its
            // fabric is busy (weight streaming, then compute) until the
            // whole batch completes. The empty slice tells the scheduler
            // the shard is fully time-multiplexed: every branch is
            // dispatchable the moment the fabric frees.
            let (now_us, shard) = next_dispatch.expect("no arrival due implies a pending dispatch");
            let batch = schedulers[shard].next_batch(&models[shard], now_us, &[]);
            debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
            let branch = batch[0].branch;
            debug_assert!(batch.iter().all(|r| r.branch == branch));
            let service_us = models[shard].batch_service_us(branch, batch.len());
            let done_us = now_us + service_us;
            busy_us[shard] += service_us;
            for request in &batch {
                let latency_us = request.latency_us(done_us);
                branch_histograms[request.branch].record(latency_us);
                shard_histograms[shard].record(latency_us);
                completed[request.branch] += 1;
                shard_completed[shard] += 1;
                backlog_us[shard] = backlog_us[shard]
                    .saturating_sub(models[shard].batch_service_us(request.branch, 1));
            }
            free_at_us[shard] = done_us;
            pending_since_us[shard] = 0;
        }
    }

    let total_issued: u64 = issued.iter().sum();
    let total_completed: u64 = completed.iter().sum();
    let total_dropped: u64 = dropped.iter().sum();
    let total_busy_us: u64 = busy_us.iter().sum();
    let makespan_us = free_at_us.iter().copied().max().unwrap_or(0);
    let makespan_sec = makespan_us as f64 / 1e6;
    // The fleet-wide latency distribution is the exact merge of the
    // per-shard histograms (fixed buckets make the merge lossless).
    let mut overall = LatencyHistogram::new();
    for histogram in &shard_histograms {
        overall.merge(histogram);
    }
    let branches = models[0]
        .branches
        .iter()
        .enumerate()
        .map(|(index, service)| BranchServeStats {
            name: service.name.clone(),
            priority: service.priority,
            issued: issued[index],
            completed: completed[index],
            dropped: dropped[index],
            latency: LatencySummary::of(&branch_histograms[index]),
        })
        .collect();
    let shards: Vec<ShardStats> = (0..shard_count)
        .map(|shard| ShardStats {
            issued: shard_issued[shard],
            completed: shard_completed[shard],
            dropped: shard_dropped[shard],
            utilization: if makespan_us > 0 {
                busy_us[shard] as f64 / makespan_us as f64
            } else {
                0.0
            },
            latency: LatencySummary::of(&shard_histograms[shard]),
        })
        .collect();
    let imbalance = {
        let max = busy_us.iter().copied().max().unwrap_or(0);
        let min = busy_us.iter().copied().min().unwrap_or(0);
        let mean = total_busy_us as f64 / shard_count as f64;
        if mean > 0.0 {
            (max - min) as f64 / mean
        } else {
            0.0
        }
    };
    // A fleet built by `simulate_fleet` runs one discipline everywhere;
    // caller-provided shard schedulers may mix disciplines, and the report
    // says so rather than quoting shard 0 for the whole fleet.
    let scheduler_name = if schedulers.iter().all(|s| s.name() == schedulers[0].name()) {
        schedulers[0].name()
    } else {
        "mixed"
    };
    ServeReport {
        scenario: scenario.name.clone(),
        scheduler: scheduler_name.to_owned(),
        balancer: config.balancer.name().to_owned(),
        seed: scenario.seed,
        sessions: scenario.sessions,
        issued: total_issued,
        completed: total_completed,
        dropped: total_dropped,
        drop_rate: if total_issued == 0 {
            0.0
        } else {
            total_dropped as f64 / total_issued as f64
        },
        makespan_sec,
        throughput_rps: if makespan_sec > 0.0 {
            total_completed as f64 / makespan_sec
        } else {
            0.0
        },
        utilization: if makespan_us > 0 {
            total_busy_us as f64 / (shard_count as u64 * makespan_us) as f64
        } else {
            0.0
        },
        imbalance,
        latency: LatencySummary::of(&overall),
        branches,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::LoadBalancerKind;
    use crate::model::test_model;

    #[test]
    fn every_scheduler_conserves_requests_on_the_whole_suite() {
        let model = test_model();
        for scenario in Scenario::suite() {
            for kind in SchedulerKind::all() {
                let report = simulate(&model, &scenario, kind);
                assert!(
                    report.conserves_requests(),
                    "{} / {}: {} completed + {} dropped != {} issued",
                    report.scenario,
                    report.scheduler,
                    report.completed,
                    report.dropped,
                    report.issued
                );
                assert!(report.utilization <= 1.0 + 1e-9);
                assert!(report.latency.p99_ms >= report.latency.p50_ms);
                assert_eq!(report.shard_count(), 1);
                assert_eq!(report.imbalance, 0.0);
            }
        }
    }

    #[test]
    fn identical_inputs_give_identical_reports() {
        let model = test_model();
        let scenario = Scenario::b2();
        let a = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        let b = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        assert_eq!(a, b);
    }

    #[test]
    fn an_unloaded_single_session_sees_no_queueing() {
        // One 30 Hz session, service well under the 33 ms frame budget:
        // every request completes in its own service time.
        let model = test_model();
        let report = simulate(&model, &Scenario::a1(), SchedulerKind::Fifo);
        assert_eq!(report.dropped, 0);
        // Worst single-request service time in the model is 5 ms + fill.
        assert!(
            report.latency.max_ms <= 20.0,
            "unloaded max latency {} ms",
            report.latency.max_ms
        );
        assert!(report.utilization < 0.5);
    }

    #[test]
    fn batching_beats_fifo_on_throughput_under_fanout_load() {
        let model = test_model();
        let scenario = Scenario::a2(8);
        let fifo = simulate(&model, &scenario, SchedulerKind::Fifo);
        let batch = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        // Amortized fill means the batch scheduler finishes the same work
        // no later (and strictly earlier whenever any batch formed).
        assert!(batch.makespan_sec <= fifo.makespan_sec);
        assert!(batch.latency.p99_ms <= fifo.latency.p99_ms);
    }

    #[test]
    fn scenario_priority_override_reaches_the_report() {
        let model = test_model();
        let report = simulate(&model, &Scenario::b2(), SchedulerKind::PriorityByBranch);
        assert_eq!(report.branches[0].priority, 1.0);
        assert_eq!(report.branches[2].priority, 0.15);
    }

    #[test]
    fn empty_scenario_produces_an_empty_report() {
        let model = test_model();
        let scenario = Scenario::a1().with_sessions(0);
        let report = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        assert_eq!(report.issued, 0);
        assert_eq!(report.completed, 0);
        assert!(report.conserves_requests());
        assert_eq!(report.throughput_rps, 0.0);
    }

    #[test]
    fn fleet_reports_conserve_and_split_work_across_shards() {
        let model = test_model();
        let scenario = Scenario::b2();
        for balancer in LoadBalancerKind::all() {
            let config = FleetConfig::uniform(model.clone(), 3).with_balancer(balancer);
            let report = simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating);
            assert!(report.conserves_requests(), "{}", balancer.name());
            assert_eq!(report.shard_count(), 3);
            assert_eq!(report.balancer, balancer.name());
            // Under b2's five bursty sessions every policy must spread
            // work over more than one shard.
            let active = report.shards.iter().filter(|s| s.completed > 0).count();
            assert!(active >= 2, "{}: all work on one shard", balancer.name());
        }
    }

    #[test]
    fn adding_shards_cannot_hurt_the_burst_tail() {
        let model = test_model();
        let scenario = Scenario::b2();
        let one = simulate_fleet(
            &FleetConfig::uniform(model.clone(), 1).with_balancer(LoadBalancerKind::LeastLoaded),
            &scenario,
            SchedulerKind::BatchAggregating,
        );
        let four = simulate_fleet(
            &FleetConfig::uniform(model, 4).with_balancer(LoadBalancerKind::LeastLoaded),
            &scenario,
            SchedulerKind::BatchAggregating,
        );
        assert!(
            four.latency.p99_ms < one.latency.p99_ms,
            "4 shards p99 {} !< 1 shard p99 {}",
            four.latency.p99_ms,
            one.latency.p99_ms
        );
        assert!(four.dropped <= one.dropped);
    }

    #[test]
    fn mixed_shard_schedulers_are_reported_as_mixed() {
        use crate::scheduler::{FifoScheduler, PriorityScheduler};
        let config = FleetConfig::uniform(test_model(), 2);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(PriorityScheduler::new()),
        ];
        let report = simulate_fleet_with(&config, &Scenario::b2(), &mut schedulers);
        assert_eq!(report.scheduler, "mixed");
        assert!(report.conserves_requests());
    }

    #[test]
    fn heterogeneous_fleets_load_the_faster_shard_harder() {
        let fast = test_model();
        let mut slow = test_model();
        for branch in &mut slow.branches {
            branch.frame_time_us *= 4;
            branch.fill_time_us *= 4;
        }
        let config = FleetConfig::heterogeneous(vec![fast, slow])
            .with_balancer(LoadBalancerKind::LeastLoaded);
        let report = simulate_fleet(&config, &Scenario::b2(), SchedulerKind::BatchAggregating);
        assert!(report.conserves_requests());
        assert!(
            report.shards[0].completed > report.shards[1].completed,
            "fast shard completed {} !> slow shard {}",
            report.shards[0].completed,
            report.shards[1].completed
        );
    }
}
