//! The deterministic discrete-event serving loop, from one accelerator to
//! a lifecycle-driven fleet of them.
//!
//! Each shard is one accelerator serving its admitted sessions
//! time-multiplexed (Table V of the paper scales a single decoder
//! accelerator to 1/3/5 concurrent avatars). Each codec-avatar session
//! decodes with its own identity-specific weights, so a dispatch pays the
//! branch's fill time (weight streaming plus pipeline refill) before its
//! batch computes: `service = fill + batch × frame_time`. That fill term is
//! exactly where the disciplines differ — FIFO pays it on every request,
//! priority-by-branch spends it on the visual branches first, and batch
//! aggregation amortizes it over the DSE-chosen batch size.
//!
//! The loop is driven by an indexed event calendar
//! ([`crate::calendar::Calendar`]): arrivals are pre-generated in time
//! order and consumed through a cursor, while dispatch completions and
//! fleet *lifecycle* events (scheduled failures, forced drains, warm-up
//! completions, idle checks) live in a binary min-heap keyed by
//! `(time, lane, tiebreaks, seq)`. Every step pops the earliest event:
//! lifecycle events win ties (a shard that dies at `t` cannot admit the
//! arrival at `t`), arrivals win ties against dispatches, and dispatches
//! tie-break on the lowest shard index — so the whole simulation is a
//! deterministic function of its inputs, and bit-identical to the frozen
//! linear-scan loop in [`crate::reference`] (the equivalence battery pins
//! this). Shard dispatch entries are *lazily invalidated*: each shard
//! carries an epoch that bumps whenever its dispatch instant could have
//! changed, and stale calendar entries are discarded at pop time.
//! Admission happens in arrival order against the chosen shard's live
//! state: the balancer picks among the *placeable* shards, the admission
//! controller accepts or sheds the request at that shard's front door, and
//! the shard's bounded queue takes the drop. Static fleets under a
//! load-oblivious balancer (round-robin, branch-sharded) additionally
//! skip the per-arrival placeable scan entirely — placement is O(1)
//! arithmetic until the first lifecycle event or spawn.
//!
//! The fixed fleet is the no-op special case: [`simulate_fleet`] runs the
//! same loop under [`Autoscaler::none`] and [`FailurePlan::none`], where no
//! lifecycle event ever fires and every shard stays
//! [`ShardState::Active`](crate::ShardState::Active) — bit-identical to a
//! dedicated static loop. The single-device [`simulate`]/[`simulate_with`]
//! path in turn *is* the one-shard special case of [`simulate_fleet_with`]:
//! same loop, same admission order, same arithmetic, bit-identical reports.

use std::collections::VecDeque;

use fcad_obs::{BatchEvent, FleetEvent, Off, RequestEventKind, TraceEvent, TraceSink};

use crate::admission::{admit_traced, AdmissionController, AdmissionKind, AdmissionView};
use crate::autoscale::{
    Autoscaler, FailurePlan, KillTarget, ScaleEvent, ScaleEventKind, ShardState,
};
use crate::calendar::{Calendar, LANE_ARRIVAL, LANE_DISPATCH, LANE_LIFECYCLE};
use crate::cast::{f64_to_usize, u64_to_f64, u64_to_usize, usize_to_f64, usize_to_u64};
use crate::deadline::DeadlinePolicy;
use crate::fleet::{Balancer, FleetConfig, LoadBalancerKind, ShardLoad};
use crate::histogram::LatencyHistogram;
use crate::model::ServiceModel;
use crate::qos::{QosClass, CLASS_COUNT};
use crate::report::{BranchServeStats, ClassServeStats, LatencySummary, ServeReport, ShardStats};
use crate::request::Request;
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

/// Rolling window of recent completion latencies feeding the autoscaler's
/// p99 trigger, and the minimum fill before the trigger may fire.
const P99_WINDOW: usize = 64;
const P99_MIN_SAMPLES: usize = 16;

/// Runs `scenario` against a single accelerator `model` under the given
/// discipline and returns the aggregated report.
///
/// Scenario priority overrides (if any) replace the model's per-branch
/// priorities for the run. Identical `(model, scenario, kind)` inputs
/// produce identical reports. This is exactly the one-shard fleet.
pub fn simulate(model: &ServiceModel, scenario: &Scenario, kind: SchedulerKind) -> ServeReport {
    simulate_fleet(&FleetConfig::uniform(model.clone(), 1), scenario, kind)
}

/// [`simulate`] under an explicit admission policy — the single-device QoS
/// entry point. [`AdmissionKind::AdmitAll`] reproduces [`simulate`] bit
/// for bit.
pub fn simulate_qos(
    model: &ServiceModel,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
) -> ServeReport {
    simulate_fleet_qos(
        &FleetConfig::uniform(model.clone(), 1),
        scenario,
        kind,
        admission,
    )
}

/// [`simulate`] with a caller-provided scheduler (for custom disciplines or
/// tuned aging rates).
pub fn simulate_with(
    model: &ServiceModel,
    scenario: &Scenario,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let config = FleetConfig::uniform(model.clone(), 1);
    let mut one: [Box<dyn Scheduler + '_>; 1] = [Box::new(scheduler)];
    simulate_fleet_with(&config, scenario, &mut one)
}

/// Runs `scenario` against a fixed fleet of accelerator shards, each
/// scheduled by a fresh instance of `kind`, with `config.balancer` placing
/// arrivals.
///
/// Identical `(config, scenario, kind)` inputs produce identical reports,
/// and a one-shard config reproduces [`simulate`] bit for bit (modulo the
/// report's balancer name). This is [`simulate_autoscaled`] under the
/// no-op policy and the empty failure plan.
pub fn simulate_fleet(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
) -> ServeReport {
    simulate_fleet_qos(config, scenario, kind, AdmissionKind::AdmitAll)
}

/// [`simulate_fleet`] under an explicit admission policy: the controller
/// is consulted once per arrival (after the balancer picks the shard,
/// before the capacity check) and rejected requests are counted `shed`.
/// [`AdmissionKind::AdmitAll`] reproduces [`simulate_fleet`] bit for bit.
pub fn simulate_fleet_qos(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
) -> ServeReport {
    simulate_fleet_deadline(config, scenario, kind, admission, DeadlinePolicy::Off)
}

/// [`simulate_qos`] under a deadline policy — the single-device
/// deadline-aware entry point. [`DeadlinePolicy::Off`] reproduces
/// [`simulate_qos`] bit for bit; [`DeadlinePolicy::CullExpired`] retires
/// requests whose latency budget ran out while they queued as the fifth
/// terminal outcome `expired` instead of spending fabric time on them.
pub fn simulate_deadline(
    model: &ServiceModel,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
) -> ServeReport {
    simulate_fleet_deadline(
        &FleetConfig::uniform(model.clone(), 1),
        scenario,
        kind,
        admission,
        deadline,
    )
}

/// [`simulate_fleet_qos`] under a deadline policy: at every dispatch
/// instant, [`DeadlinePolicy::CullExpired`] pops and retires the queued
/// requests whose deadline (`issued_at + class budget`) has already
/// passed — counted `expired`, never served, costing no fabric time.
/// [`DeadlinePolicy::Off`] reproduces [`simulate_fleet_qos`] bit for bit.
pub fn simulate_fleet_deadline(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        None,
        &Autoscaler::none(),
        &FailurePlan::none(),
        controller.as_mut(),
        deadline,
        &mut Off,
    )
}

/// [`simulate_fleet`] with caller-provided per-shard schedulers (one per
/// shard, in shard order). Borrowed schedulers box in via the
/// `&mut dyn Scheduler` forwarding impl.
pub fn simulate_fleet_with<'a>(
    config: &FleetConfig,
    scenario: &Scenario,
    schedulers: &mut [Box<dyn Scheduler + 'a>],
) -> ServeReport {
    let reboxed: Vec<Box<dyn Scheduler + '_>> = schedulers
        .iter_mut()
        .map(|s| Box::new(&mut **s) as Box<dyn Scheduler + '_>)
        .collect();
    let mut controller = AdmissionKind::AdmitAll.build();
    run(
        config,
        scenario,
        reboxed,
        None,
        &Autoscaler::none(),
        &FailurePlan::none(),
        controller.as_mut(),
        DeadlinePolicy::Off,
        &mut Off,
    )
}

/// Runs `scenario` against a *dynamic* fleet: `config` describes the
/// initial shards, `policy` scales the fleet up and down at runtime
/// (spawned shards clone shard 0's service model and pay the warm-up fill
/// before serving), and `failures` kills shards mid-run — their queued
/// requests lose affinity and re-place through the live balancer, or are
/// counted `lost` when no surviving queue can take them.
///
/// Under [`Autoscaler::none`] and [`FailurePlan::none`] this is
/// [`simulate_fleet`], bit for bit.
pub fn simulate_autoscaled(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
) -> ServeReport {
    simulate_autoscaled_qos(
        config,
        scenario,
        kind,
        policy,
        failures,
        AdmissionKind::AdmitAll,
    )
}

/// [`simulate_autoscaled`] under an explicit admission policy — the full
/// stack: QoS classes, admission shedding, autoscaling and failure
/// injection in one run. [`AdmissionKind::AdmitAll`] reproduces
/// [`simulate_autoscaled`] bit for bit. Shed requests never enter a
/// queue, so a shedding policy also damps the autoscaler's queue-depth
/// trigger — admission and scaling are deliberately composable knobs.
pub fn simulate_autoscaled_qos(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
) -> ServeReport {
    simulate_autoscaled_deadline(
        config,
        scenario,
        kind,
        policy,
        failures,
        admission,
        DeadlinePolicy::Off,
    )
}

/// [`simulate_autoscaled_qos`] under a deadline policy — the full stack
/// with queue-time expiry culling on top: QoS classes, admission
/// shedding, autoscaling, failure injection and deadline-aware dispatch
/// in one run. [`DeadlinePolicy::Off`] reproduces
/// [`simulate_autoscaled_qos`] bit for bit.
pub fn simulate_autoscaled_deadline(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
    deadline: DeadlinePolicy,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        deadline,
        &mut Off,
    )
}

/// The fully observable entry point: the full serving stack —
/// QoS classes, admission shedding, autoscaling and failure injection —
/// with every engine event delivered to `sink`.
///
/// Instrumentation is observation-only: any sink (including the
/// always-recording [`fcad_obs::Recorder`]) produces a report
/// byte-identical to [`simulate_autoscaled_qos`] with the same inputs,
/// and under [`Autoscaler::none`] plus [`FailurePlan::none`] to
/// [`simulate_fleet_qos`], bit for bit. With the default
/// [`fcad_obs::Off`] sink the run *is* [`simulate_autoscaled_qos`].
pub fn simulate_traced(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
    sink: &mut dyn TraceSink,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| kind.build()).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        DeadlinePolicy::Off,
        &mut *sink,
    )
}

/// A fleet lifecycle action carried in the calendar payload. Ordering
/// lives in the calendar key — `(at_us, LANE_LIFECYCLE, rank, seq)`:
/// failures before drains before warm-ups before idle checks at the same
/// instant, insertion order as the final tie-break — all deterministic
/// and identical to the frozen loop's `(at_us, rank, seq)` linear scan.
pub(crate) enum Action {
    Fail(KillTarget),
    Drain,
    Warm,
    IdleCheck,
}

impl Action {
    fn rank(&self) -> u8 {
        match self {
            Action::Fail(_) => 0,
            Action::Drain => 1,
            Action::Warm => 2,
            Action::IdleCheck => 3,
        }
    }
}

/// A calendar payload: a lifecycle action against a shard, or a shard's
/// pending dispatch completion (validated against the shard's epoch at
/// pop time).
pub(crate) enum CalEvent {
    Life { shard: usize, action: Action },
    Dispatch { shard: usize },
}

/// Pushes a lifecycle event under `(at_us, LANE_LIFECYCLE, rank, seq)`,
/// advancing the shared lifecycle sequence counter that replicates the
/// frozen loop's insertion-order tie-break.
fn push_life(
    calendar: &mut Calendar<CalEvent>,
    life_seq: &mut u64,
    at_us: u64,
    shard: usize,
    action: Action,
) {
    let rank = u64::from(action.rank());
    calendar.push(
        at_us,
        LANE_LIFECYCLE,
        rank,
        *life_seq,
        CalEvent::Life { shard, action },
    );
    *life_seq += 1;
}

/// One shard's full runtime state: its service model, scheduler, lifecycle
/// phase, fabric timing and serving statistics. `free_at_us` is the
/// instant the shard's fabric frees — its last dispatch completion or
/// weight-refill end, which is why the makespan reads straight off it;
/// `pending_since_us` is the arrival instant that made its queue non-empty
/// (a shard with queued work dispatches at `max(free_at, pending_since)`).
pub(crate) struct Shard<'a> {
    pub(crate) model: ServiceModel,
    pub(crate) scheduler: Box<dyn Scheduler + 'a>,
    pub(crate) phase: ShardState,
    pub(crate) free_at_us: u64,
    pub(crate) pending_since_us: u64,
    pub(crate) busy_us: u64,
    pub(crate) backlog_us: u64,
    /// The queued backlog split by QoS class (each request at its
    /// unbatched single-request cost) — the admission controller's view
    /// of how much work that can outrank a new arrival it waits behind.
    pub(crate) class_backlog_us: [u64; CLASS_COUNT],
    /// Highest branch priority of this shard's model (fixed for the
    /// run), feeding the admission projection's worst-case score.
    pub(crate) max_priority: f64,
    /// Per-branch single-request service cost, resolved once at shard
    /// construction so the per-arrival admission view and the per-request
    /// backlog accounting are table lookups instead of recomputed
    /// `batch_service_us` calls.
    pub(crate) single_cost_us: Vec<u64>,
    /// Validity epoch for this shard's calendar dispatch entry: bumped by
    /// [`refresh_dispatch`] whenever the dispatch instant could have
    /// changed; calendar entries carrying an older epoch are stale and
    /// discarded at pop time.
    pub(crate) dispatch_epoch: u64,
    pub(crate) issued: u64,
    pub(crate) completed: u64,
    pub(crate) dropped: u64,
    pub(crate) shed: u64,
    pub(crate) expired: u64,
    pub(crate) histogram: LatencyHistogram,
    /// Whether an idle check for this shard is already queued — one
    /// pending check per shard keeps the lifecycle event list from
    /// accumulating a duplicate per queue-emptying dispatch.
    pub(crate) idle_check_pending: bool,
}

impl<'a> Shard<'a> {
    pub(crate) fn new(
        model: ServiceModel,
        scheduler: Box<dyn Scheduler + 'a>,
        phase: ShardState,
    ) -> Self {
        let max_priority = model
            .branches
            .iter()
            .map(|b| b.priority)
            .fold(0.0, f64::max);
        let single_cost_us = model.single_costs();
        Self {
            model,
            scheduler,
            phase,
            free_at_us: 0,
            pending_since_us: 0,
            busy_us: 0,
            backlog_us: 0,
            class_backlog_us: [0; CLASS_COUNT],
            max_priority,
            single_cost_us,
            dispatch_epoch: 0,
            issued: 0,
            completed: 0,
            dropped: 0,
            shed: 0,
            expired: 0,
            histogram: LatencyHistogram::new(),
            idle_check_pending: false,
        }
    }

    pub(crate) fn admission_view(
        &self,
        capacity: usize,
        service_us: u64,
        branch: usize,
    ) -> AdmissionView {
        AdmissionView {
            queued: self.scheduler.queued(),
            capacity,
            free_at_us: self.free_at_us,
            class_backlog_us: self.class_backlog_us,
            service_us,
            priority: self.model.priority(branch),
            max_priority: self.max_priority,
        }
    }

    fn load(&self) -> ShardLoad {
        ShardLoad {
            queued: self.scheduler.queued(),
            free_at_us: self.free_at_us,
            backlog_us: self.backlog_us,
        }
    }

    pub(crate) fn dispatch_at(&self) -> u64 {
        self.free_at_us.max(self.pending_since_us)
    }
}

/// Invalidates `shard`'s calendar dispatch entry (by bumping its epoch)
/// and re-schedules it if the shard still has dispatchable work. Called
/// after every mutation that can move a shard's dispatch instant:
/// dispatch completion, enqueue into an empty queue, orphan re-placement
/// (the repay fill moves `free_at_us` even with a non-empty queue),
/// failure drain, and warm-up completion.
pub(crate) fn refresh_dispatch(
    calendar: &mut Calendar<CalEvent>,
    shards: &mut [Shard],
    shard: usize,
) {
    let s = &mut shards[shard];
    s.dispatch_epoch += 1;
    if s.phase.dispatches() && s.scheduler.queued() > 0 {
        calendar.push(
            s.dispatch_at(),
            LANE_DISPATCH,
            usize_to_u64(shard),
            s.dispatch_epoch,
            CalEvent::Dispatch { shard },
        );
    }
}

fn active_count(shards: &[Shard]) -> usize {
    shards
        .iter()
        .filter(|s| s.phase == ShardState::Active)
        .count()
}

fn alive_count(shards: &[Shard]) -> usize {
    shards.iter().filter(|s| s.phase.is_alive()).count()
}

/// The steppable core of the sequential engine: every local of the old
/// monolithic `run()` loop, promoted to a field so the loop body can be
/// driven one event at a time.
///
/// [`run`] is `new` + `while step()` + `finish`, bit-identical to the old
/// single-function loop. The windowed parallel engine
/// ([`crate::window`]) drives the same core differently: sequential
/// `step()` calls through every *coupled* span (lifecycle events,
/// load-aware placements, armed autoscale triggers) and parallel window
/// fan-outs over the decoupled spans in between.
pub(crate) struct EngineCore<'a, 'b> {
    pub(crate) scenario: &'b Scenario,
    pub(crate) balancer_kind: LoadBalancerKind,
    pub(crate) spawn: Option<SchedulerKind>,
    pub(crate) policy: &'b Autoscaler,
    pub(crate) failures: &'b FailurePlan,
    pub(crate) admission: &'b mut dyn AdmissionController,
    pub(crate) deadline: DeadlinePolicy,
    pub(crate) sink: &'b mut dyn TraceSink,
    pub(crate) tracing: bool,
    pub(crate) arrivals: Vec<Request>,
    pub(crate) next_arrival: usize,
    pub(crate) shards: Vec<Shard<'a>>,
    pub(crate) balancer: Balancer,
    pub(crate) capacity: usize,
    pub(crate) calendar: Calendar<CalEvent>,
    pub(crate) life_seq: u64,
    pub(crate) split_us: Option<u64>,
    pub(crate) last_scale_up: Option<u64>,
    pub(crate) recent_latencies: VecDeque<u64>,
    /// Requests sitting in shard queues, fleet-wide: the O(1) termination
    /// check (the frozen loop re-summed every shard per iteration).
    pub(crate) queued_total: usize,
    pub(crate) loads: Vec<(usize, ShardLoad)>,
    /// Load-oblivious placement fast path: round-robin and branch-sharded
    /// placement are pure cursor arithmetic over the *placeable-id
    /// snapshot* — no per-arrival placeable scan. The snapshot is
    /// piecewise static: any lifecycle event or spawn marks it dirty and
    /// the next arrival rebuilds it, so placement stays O(1) through the
    /// static segments *between* scale actions, not just before the first
    /// one.
    pub(crate) dense: bool,
    pub(crate) placeable_ids: Vec<usize>,
    pub(crate) placeable_dirty: bool,
    pub(crate) tally: Tally,
}

impl<'a, 'b> EngineCore<'a, 'b> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: &'b FleetConfig,
        scenario: &'b Scenario,
        schedulers: Vec<Box<dyn Scheduler + 'a>>,
        spawn: Option<SchedulerKind>,
        policy: &'b Autoscaler,
        failures: &'b FailurePlan,
        admission: &'b mut dyn AdmissionController,
        deadline: DeadlinePolicy,
        sink: &'b mut dyn TraceSink,
    ) -> Self {
        config.assert_valid();
        assert_eq!(
            schedulers.len(),
            config.shard_count(),
            "one scheduler per shard ({} shards, {} schedulers)",
            config.shard_count(),
            schedulers.len()
        );
        let branch_count = config.branch_count();
        let arrivals = scenario.generate(branch_count);
        let mut balancer = Balancer::new(config.balancer);
        balancer.reserve_sessions(scenario.sessions);
        let capacity = scenario.queue_capacity;
        let tracing = sink.enabled();

        let mut shards: Vec<Shard<'a>> = config
            .shards
            .iter()
            .zip(schedulers)
            .map(|(model, scheduler)| {
                let model = match &scenario.priorities {
                    Some(priorities) => model.clone().with_priorities(priorities),
                    None => model.clone(),
                };
                Shard::new(model, scheduler, ShardState::Active)
            })
            .collect();

        let mut tally = Tally::new(branch_count);
        tally.count_arrivals(&arrivals);

        let mut calendar: Calendar<CalEvent> = Calendar::new();
        let mut life_seq = 0u64;
        for kill in failures.kills() {
            let shard = match kill.target {
                KillTarget::Shard(s) => s,
                KillTarget::Seeded(_) => usize::MAX, // resolved at fire time
            };
            push_life(
                &mut calendar,
                &mut life_seq,
                kill.at_us,
                shard,
                Action::Fail(kill.target),
            );
        }
        for &(at_us, shard) in &policy.drains {
            push_life(&mut calendar, &mut life_seq, at_us, shard, Action::Drain);
        }
        if policy.idle_retire_us > 0 {
            for (index, shard) in shards.iter_mut().enumerate() {
                shard.idle_check_pending = true;
                push_life(
                    &mut calendar,
                    &mut life_seq,
                    policy.idle_retire_us,
                    index,
                    Action::IdleCheck,
                );
            }
        }
        let split_us = failures.first_kill_us();
        let shard_count = shards.len();

        Self {
            scenario,
            balancer_kind: config.balancer,
            spawn,
            policy,
            failures,
            admission,
            deadline,
            sink,
            tracing,
            arrivals,
            next_arrival: 0,
            shards,
            balancer,
            capacity,
            calendar,
            life_seq,
            split_us,
            last_scale_up: None,
            recent_latencies: VecDeque::with_capacity(P99_WINDOW),
            queued_total: 0,
            loads: Vec::with_capacity(shard_count),
            dense: matches!(
                config.balancer,
                LoadBalancerKind::RoundRobin | LoadBalancerKind::BranchSharded
            ),
            placeable_ids: (0..shard_count).collect(),
            placeable_dirty: false,
            tally,
        }
    }

    /// Rebuilds the placeable-id snapshot after a lifecycle event: the
    /// active shards' global ids in ascending order, or — only when none
    /// is active — the warming ones, exactly the candidate set
    /// [`collect_placeable`] hands the general path.
    pub(crate) fn rebuild_placeable(&mut self) {
        for wanted in [ShardState::Active, ShardState::Warming] {
            self.placeable_ids.clear();
            self.placeable_ids.extend(
                self.shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.phase == wanted)
                    .map(|(index, _)| index),
            );
            if !self.placeable_ids.is_empty() {
                break;
            }
        }
        self.placeable_dirty = false;
    }

    /// Processes the single earliest pending event. Returns `false` when
    /// the run is complete (no arrival pending and no request queued) —
    /// the old loop's termination condition, verbatim.
    pub(crate) fn step(&mut self) -> bool {
        let due_arrival = self.arrivals.get(self.next_arrival).copied();
        if due_arrival.is_none() && self.queued_total == 0 {
            return false;
        }
        let arrival_at = due_arrival.map_or(u64::MAX, |r| r.issued_at_us);
        // Surface the earliest *live* calendar entry, discarding stale
        // dispatch entries (superseded epochs) lazily.
        let front = loop {
            match self.calendar.peek_key() {
                Some(key)
                    if key.lane == LANE_DISPATCH
                        && key.b != self.shards[u64_to_usize(key.a)].dispatch_epoch =>
                {
                    self.calendar.pop();
                }
                other => break other,
            }
        };
        let take_calendar =
            front.is_some_and(|key| (key.at_us, key.lane) < (arrival_at, LANE_ARRIVAL));
        if !take_calendar && due_arrival.is_none() {
            debug_assert!(false, "stranded queued work with no pending event");
            return false;
        }

        if take_calendar {
            let (key, event) = self.calendar.pop().expect("calendar front was just peeked");
            let now_us = key.at_us;
            match event {
                CalEvent::Life {
                    shard: life_shard,
                    action,
                } => self.life_event(now_us, life_shard, action),
                CalEvent::Dispatch { shard } => self.dispatch_event(now_us, shard),
            }
        } else {
            let request = due_arrival.expect("arrival_at is finite");
            self.next_arrival += 1;
            self.arrival_event(request);
        }
        true
    }

    fn life_event(&mut self, now_us: u64, life_shard: usize, action: Action) {
        self.placeable_dirty = true;
        match action {
            Action::Fail(target) => {
                let victim = match target {
                    KillTarget::Shard(s)
                        if s < self.shards.len() && self.shards[s].phase.is_alive() =>
                    {
                        Some(s)
                    }
                    KillTarget::Shard(_) => None,
                    KillTarget::Seeded(hash) => {
                        let actives: Vec<usize> = (0..self.shards.len())
                            .filter(|&s| self.shards[s].phase == ShardState::Active)
                            .collect();
                        if actives.is_empty() {
                            None
                        } else {
                            Some(actives[u64_to_usize(hash % usize_to_u64(actives.len()))])
                        }
                    }
                };
                let Some(victim) = victim else { return };
                self.shards[victim].phase = ShardState::Failed;
                record(
                    &mut self.tally.scale_events,
                    &self.shards,
                    now_us,
                    ScaleEventKind::Fail,
                    victim,
                    &mut *self.sink,
                    self.tracing,
                );
                let mut orphans: Vec<Request> = Vec::new();
                {
                    let dead = &mut self.shards[victim];
                    while dead.scheduler.queued() > 0 {
                        let batch = dead.scheduler.next_batch(&dead.model, now_us, &[]);
                        debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
                        orphans.extend(batch);
                    }
                    dead.backlog_us = 0;
                    dead.class_backlog_us = [0; CLASS_COUNT];
                    dead.pending_since_us = 0;
                    dead.issued -= usize_to_u64(orphans.len());
                }
                self.queued_total -= orphans.len();
                refresh_dispatch(&mut self.calendar, &mut self.shards, victim);
                if let Some(kind) = self.spawn {
                    while alive_count(&self.shards) < self.policy.min_shards
                        && alive_count(&self.shards) < self.policy.max_shards
                    {
                        do_spawn(
                            now_us,
                            kind,
                            self.policy,
                            &mut self.shards,
                            &mut self.calendar,
                            &mut self.life_seq,
                            &mut self.tally.scale_events,
                            &mut *self.sink,
                            self.tracing,
                        );
                        self.last_scale_up = Some(now_us);
                    }
                }
                for request in orphans {
                    collect_placeable(&mut self.loads, &self.shards);
                    if self.loads.is_empty() {
                        self.tally.lost[request.branch] += 1;
                        self.tally.class_lost[request.class.index()] += 1;
                        if self.tracing {
                            self.sink.record(request.trace(
                                now_us,
                                None,
                                RequestEventKind::Lost { orphaned: true },
                            ));
                        }
                        continue;
                    }
                    let dst = self
                        .balancer
                        .place(&request, &self.loads, now_us, self.capacity);
                    if self.shards[dst].scheduler.queued() >= self.capacity {
                        self.tally.lost[request.branch] += 1;
                        self.tally.class_lost[request.class.index()] += 1;
                        if self.tracing {
                            self.sink.record(request.trace(
                                now_us,
                                None,
                                RequestEventKind::Lost { orphaned: true },
                            ));
                        }
                        continue;
                    }
                    {
                        let target = &mut self.shards[dst];
                        if target.scheduler.queued() == 0 {
                            target.pending_since_us = now_us;
                        }
                        if self.failures.repay_fill() && target.phase != ShardState::Warming {
                            let fill = target.model.branches[request.branch].fill_time_us;
                            target.free_at_us = target.free_at_us.max(now_us) + fill;
                            target.busy_us += fill;
                        }
                        let single_us = target.single_cost_us[request.branch];
                        target.backlog_us += single_us;
                        target.class_backlog_us[request.class.index()] += single_us;
                        target.scheduler.enqueue(request, now_us);
                        target.issued += 1;
                    }
                    self.queued_total += 1;
                    // Unconditional: the repay fill can move
                    // `free_at_us` even when the queue was
                    // already non-empty.
                    refresh_dispatch(&mut self.calendar, &mut self.shards, dst);
                    self.balancer.note_admitted(request.session, dst);
                    self.tally.replaced += 1;
                    if self.tracing {
                        self.sink.record(request.trace(
                            now_us,
                            Some(dst),
                            RequestEventKind::Replace { from_shard: victim },
                        ));
                    }
                }
            }
            Action::Drain => {
                let shard = life_shard;
                if shard >= self.shards.len() || self.shards[shard].phase != ShardState::Active {
                    return;
                }
                let floor = self.policy.min_shards.max(1);
                if active_count(&self.shards) <= floor {
                    return;
                }
                self.shards[shard].phase = ShardState::Draining;
                record(
                    &mut self.tally.scale_events,
                    &self.shards,
                    now_us,
                    ScaleEventKind::Drain,
                    shard,
                    &mut *self.sink,
                    self.tracing,
                );
                if self.shards[shard].scheduler.queued() == 0 {
                    retire(
                        &mut self.shards,
                        &mut self.tally.scale_events,
                        now_us,
                        shard,
                        &mut *self.sink,
                        self.tracing,
                    );
                }
            }
            Action::Warm => {
                let shard = life_shard;
                if self.shards[shard].phase == ShardState::Warming {
                    self.shards[shard].phase = ShardState::Active;
                    self.shards[shard].free_at_us = self.shards[shard].free_at_us.max(now_us);
                    record(
                        &mut self.tally.scale_events,
                        &self.shards,
                        now_us,
                        ScaleEventKind::Warm,
                        shard,
                        &mut *self.sink,
                        self.tracing,
                    );
                    // The warm-up raised `free_at_us`, and the
                    // shard may have queued work placed while
                    // warming — it becomes dispatchable now.
                    refresh_dispatch(&mut self.calendar, &mut self.shards, shard);
                }
            }
            Action::IdleCheck => {
                let shard = life_shard;
                if shard >= self.shards.len() {
                    return;
                }
                self.shards[shard].idle_check_pending = false;
                if self.shards[shard].phase != ShardState::Active
                    || self.shards[shard].scheduler.queued() > 0
                {
                    return;
                }
                if self.shards[shard].free_at_us + self.policy.idle_retire_us > now_us {
                    self.shards[shard].idle_check_pending = true;
                    push_life(
                        &mut self.calendar,
                        &mut self.life_seq,
                        self.shards[shard].free_at_us + self.policy.idle_retire_us,
                        shard,
                        Action::IdleCheck,
                    );
                    return;
                }
                let floor = self.policy.min_shards.max(1);
                if active_count(&self.shards) <= floor {
                    return;
                }
                retire(
                    &mut self.shards,
                    &mut self.tally.scale_events,
                    now_us,
                    shard,
                    &mut *self.sink,
                    self.tracing,
                );
            }
        }
    }

    fn dispatch_event(&mut self, now_us: u64, shard: usize) {
        // Under `DeadlinePolicy::CullExpired`, requests whose
        // deadline already passed while they queued are
        // retired here instead of served — completing them
        // would spend fabric time on frames nobody can use.
        // Culling costs no fabric time (`free_at_us` is
        // untouched), so a fully-dead batch is followed by
        // another pop at the same instant.
        let culls = self.deadline.culls();
        let batch = loop {
            let s = &mut self.shards[shard];
            let popped = s.scheduler.next_batch(&s.model, now_us, &[]);
            debug_assert!(!popped.is_empty(), "scheduler returned an empty batch");
            self.queued_total -= popped.len();
            let live = if culls {
                let mut live = Vec::with_capacity(popped.len());
                for request in popped {
                    if now_us > request.deadline_us() {
                        let single_us = s.single_cost_us[request.branch];
                        let class = request.class.index();
                        s.backlog_us = s.backlog_us.saturating_sub(single_us);
                        s.class_backlog_us[class] =
                            s.class_backlog_us[class].saturating_sub(single_us);
                        s.expired += 1;
                        self.tally.expired[request.branch] += 1;
                        self.tally.class_expired[class] += 1;
                        if self.tracing {
                            self.sink.record(request.trace(
                                now_us,
                                Some(shard),
                                RequestEventKind::Expired,
                            ));
                        }
                    } else {
                        live.push(request);
                    }
                }
                live
            } else {
                popped
            };
            if !live.is_empty() || s.scheduler.queued() == 0 {
                break live;
            }
        };
        if batch.is_empty() {
            // Expiry drained the whole queue without touching
            // the fabric: no completion moves `free_at_us`,
            // but the now-idle shard still owes its drain /
            // idle-retirement housekeeping.
            self.shards[shard].pending_since_us = 0;
            refresh_dispatch(&mut self.calendar, &mut self.shards, shard);
            if self.shards[shard].phase == ShardState::Draining {
                retire(
                    &mut self.shards,
                    &mut self.tally.scale_events,
                    now_us,
                    shard,
                    &mut *self.sink,
                    self.tracing,
                );
            } else if self.shards[shard].phase == ShardState::Active
                && self.policy.idle_retire_us > 0
                && !self.shards[shard].idle_check_pending
            {
                self.shards[shard].idle_check_pending = true;
                push_life(
                    &mut self.calendar,
                    &mut self.life_seq,
                    now_us + self.policy.idle_retire_us,
                    shard,
                    Action::IdleCheck,
                );
            }
            return;
        }
        let (service_us, done_us) = {
            let s = &self.shards[shard];
            let branch = batch[0].branch;
            debug_assert!(batch.iter().all(|r| r.branch == branch));
            let service_us = s.model.batch_service_us(branch, batch.len());
            (service_us, now_us + service_us)
        };
        self.shards[shard].busy_us += service_us;
        if self.tracing {
            self.sink.record(TraceEvent::Batch(BatchEvent {
                at_us: now_us,
                shard,
                branch: batch[0].branch,
                len: batch.len(),
                service_us,
            }));
        }
        for request in &batch {
            let latency_us = request.latency_us(done_us);
            if self.tracing {
                self.sink.record(request.trace(
                    now_us,
                    Some(shard),
                    RequestEventKind::ServiceStart,
                ));
                self.sink.record(request.trace(
                    done_us,
                    Some(shard),
                    RequestEventKind::Complete { latency_us },
                ));
            }
            self.tally.branch_histograms[request.branch].record(latency_us);
            self.tally.completed[request.branch] += 1;
            let class = request.class.index();
            self.tally.class_histograms[class].record(latency_us);
            self.tally.class_completed[class] += 1;
            if request.meets_slo(done_us) {
                self.tally.within_budget[class] += 1;
            }
            let s = &mut self.shards[shard];
            s.histogram.record(latency_us);
            s.completed += 1;
            let single_us = s.single_cost_us[request.branch];
            s.backlog_us = s.backlog_us.saturating_sub(single_us);
            s.class_backlog_us[class] = s.class_backlog_us[class].saturating_sub(single_us);
            if let Some(split) = self.split_us {
                if done_us < split {
                    self.tally.pre_failure.record(latency_us);
                } else {
                    self.tally.post_failure.record(latency_us);
                }
            }
            if self.spawn.is_some() && self.policy.scale_up_p99_ms > 0.0 {
                if self.recent_latencies.len() == P99_WINDOW {
                    self.recent_latencies.pop_front();
                }
                self.recent_latencies.push_back(latency_us);
            }
        }
        self.shards[shard].free_at_us = done_us;
        self.shards[shard].pending_since_us = 0;
        refresh_dispatch(&mut self.calendar, &mut self.shards, shard);
        if self.shards[shard].phase == ShardState::Draining
            && self.shards[shard].scheduler.queued() == 0
        {
            retire(
                &mut self.shards,
                &mut self.tally.scale_events,
                done_us,
                shard,
                &mut *self.sink,
                self.tracing,
            );
        } else if self.shards[shard].phase == ShardState::Active
            && self.shards[shard].scheduler.queued() == 0
            && self.policy.idle_retire_us > 0
            && !self.shards[shard].idle_check_pending
        {
            self.shards[shard].idle_check_pending = true;
            push_life(
                &mut self.calendar,
                &mut self.life_seq,
                done_us + self.policy.idle_retire_us,
                shard,
                Action::IdleCheck,
            );
        }
        if let Some(kind) = self.spawn.filter(|_| {
            self.policy.scale_up_p99_ms > 0.0
                && self.recent_latencies.len() >= P99_MIN_SAMPLES
                && alive_count(&self.shards) < self.policy.max_shards
                && self
                    .last_scale_up
                    .is_none_or(|t| done_us >= t.saturating_add(self.policy.cooldown_us))
        }) {
            let mut window: Vec<u64> = self.recent_latencies.iter().copied().collect();
            window.sort_unstable();
            let rank =
                f64_to_usize((usize_to_f64(window.len()) * 0.99).ceil()).clamp(1, window.len());
            let p99_ms = u64_to_f64(window[rank - 1]) / 1_000.0;
            if p99_ms >= self.policy.scale_up_p99_ms {
                do_spawn(
                    done_us,
                    kind,
                    self.policy,
                    &mut self.shards,
                    &mut self.calendar,
                    &mut self.life_seq,
                    &mut self.tally.scale_events,
                    &mut *self.sink,
                    self.tracing,
                );
                self.placeable_dirty = true;
                self.last_scale_up = Some(done_us);
            }
        }
    }

    fn arrival_event(&mut self, request: Request) {
        let now_us = request.issued_at_us;
        let shard = if self.dense {
            if self.placeable_dirty {
                self.rebuild_placeable();
            }
            if self.placeable_ids.is_empty() {
                self.tally.lost[request.branch] += 1;
                self.tally.class_lost[request.class.index()] += 1;
                if self.tracing {
                    self.sink
                        .record(request.trace(now_us, None, RequestEventKind::Arrival));
                    self.sink.record(request.trace(
                        now_us,
                        None,
                        RequestEventKind::Lost { orphaned: false },
                    ));
                }
                return;
            }
            let dst = self
                .balancer
                .place_dense(&request, &self.placeable_ids)
                .expect("dense placement covers only load-oblivious balancers");
            if self.tracing {
                self.sink
                    .record(request.trace(now_us, Some(dst), RequestEventKind::Arrival));
            }
            dst
        } else {
            collect_placeable(&mut self.loads, &self.shards);
            if self.loads.is_empty() {
                self.tally.lost[request.branch] += 1;
                self.tally.class_lost[request.class.index()] += 1;
                if self.tracing {
                    self.sink
                        .record(request.trace(now_us, None, RequestEventKind::Arrival));
                    self.sink.record(request.trace(
                        now_us,
                        None,
                        RequestEventKind::Lost { orphaned: false },
                    ));
                }
                return;
            }
            self.balancer.place_traced(
                &request,
                &self.loads,
                now_us,
                self.capacity,
                &mut *self.sink,
                self.tracing,
            )
        };
        let enqueued_into_empty = {
            let target = &mut self.shards[shard];
            target.issued += 1;
            let single_us = target.single_cost_us[request.branch];
            let view = target.admission_view(self.capacity, single_us, request.branch);
            if !admit_traced(
                self.admission,
                &request,
                &view,
                now_us,
                shard,
                &mut *self.sink,
                self.tracing,
            ) {
                self.tally.shed[request.branch] += 1;
                self.tally.class_shed[request.class.index()] += 1;
                target.shed += 1;
                false
            } else if target.scheduler.queued() >= self.capacity {
                self.tally.dropped[request.branch] += 1;
                self.tally.class_dropped[request.class.index()] += 1;
                target.dropped += 1;
                if self.tracing {
                    self.sink
                        .record(request.trace(now_us, Some(shard), RequestEventKind::Drop));
                }
                false
            } else {
                let was_empty = target.scheduler.queued() == 0;
                if was_empty {
                    target.pending_since_us = now_us;
                }
                target.backlog_us += single_us;
                target.class_backlog_us[request.class.index()] += single_us;
                target.scheduler.enqueue(request, now_us);
                self.queued_total += 1;
                self.balancer.note_admitted(request.session, shard);
                if self.tracing {
                    self.sink
                        .record(request.trace(now_us, Some(shard), RequestEventKind::Enqueue));
                }
                was_empty
            }
        };
        if enqueued_into_empty {
            refresh_dispatch(&mut self.calendar, &mut self.shards, shard);
        }
        if let Some(kind) = self.spawn.filter(|_| self.policy.scale_up_queue_depth > 0) {
            let actives = active_count(&self.shards);
            let queued: usize = self
                .shards
                .iter()
                .filter(|s| s.phase == ShardState::Active)
                .map(|s| s.scheduler.queued())
                .sum();
            if actives > 0
                && queued >= self.policy.scale_up_queue_depth * actives
                && alive_count(&self.shards) < self.policy.max_shards
                && self
                    .last_scale_up
                    .is_none_or(|t| now_us >= t.saturating_add(self.policy.cooldown_us))
            {
                do_spawn(
                    now_us,
                    kind,
                    self.policy,
                    &mut self.shards,
                    &mut self.calendar,
                    &mut self.life_seq,
                    &mut self.tally.scale_events,
                    &mut *self.sink,
                    self.tracing,
                );
                self.placeable_dirty = true;
                self.last_scale_up = Some(now_us);
            }
        }
    }

    /// Consumes the core and folds the per-shard state into the final
    /// report — the old loop's epilogue, verbatim.
    pub(crate) fn finish(self) -> ServeReport {
        let model0 = self.shards[0].model.clone();
        let summaries: Vec<ShardSummary> = self
            .shards
            .into_iter()
            .map(|s| ShardSummary {
                scheduler_name: s.scheduler.name(),
                phase: s.phase,
                free_at_us: s.free_at_us,
                busy_us: s.busy_us,
                issued: s.issued,
                completed: s.completed,
                dropped: s.dropped,
                shed: s.shed,
                expired: s.expired,
                histogram: s.histogram,
            })
            .collect();
        finalize(
            self.scenario,
            self.balancer_kind.name(),
            self.admission.name(),
            &model0,
            self.tally,
            &summaries,
        )
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run<'a>(
    config: &FleetConfig,
    scenario: &Scenario,
    schedulers: Vec<Box<dyn Scheduler + 'a>>,
    spawn: Option<SchedulerKind>,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: &mut dyn AdmissionController,
    deadline: DeadlinePolicy,
    sink: &mut dyn TraceSink,
) -> ServeReport {
    let mut core = EngineCore::new(
        config, scenario, schedulers, spawn, policy, failures, admission, deadline, sink,
    );
    while core.step() {}
    core.finish()
}

/// Fleet-wide accumulators shared by the sequential and parallel engines:
/// every per-branch / per-class / availability counter and histogram that
/// is not per-shard. All fields are exact-merge (integer sums and
/// fixed-bucket histogram adds), which is what makes the parallel
/// engine's shard-order [`Tally::absorb`] reduction bit-identical to the
/// sequential run.
pub(crate) struct Tally {
    pub(crate) issued: Vec<u64>,
    pub(crate) completed: Vec<u64>,
    pub(crate) dropped: Vec<u64>,
    pub(crate) lost: Vec<u64>,
    pub(crate) shed: Vec<u64>,
    pub(crate) expired: Vec<u64>,
    pub(crate) branch_histograms: Vec<LatencyHistogram>,
    pub(crate) class_issued: [u64; CLASS_COUNT],
    pub(crate) class_completed: [u64; CLASS_COUNT],
    pub(crate) class_dropped: [u64; CLASS_COUNT],
    pub(crate) class_lost: [u64; CLASS_COUNT],
    pub(crate) class_shed: [u64; CLASS_COUNT],
    pub(crate) class_expired: [u64; CLASS_COUNT],
    pub(crate) within_budget: [u64; CLASS_COUNT],
    pub(crate) class_histograms: [LatencyHistogram; CLASS_COUNT],
    pub(crate) pre_failure: LatencyHistogram,
    pub(crate) post_failure: LatencyHistogram,
    pub(crate) scale_events: Vec<ScaleEvent>,
    pub(crate) replaced: u64,
}

impl Tally {
    pub(crate) fn new(branch_count: usize) -> Self {
        Self {
            issued: vec![0; branch_count],
            completed: vec![0; branch_count],
            dropped: vec![0; branch_count],
            lost: vec![0; branch_count],
            shed: vec![0; branch_count],
            expired: vec![0; branch_count],
            branch_histograms: (0..branch_count).map(|_| LatencyHistogram::new()).collect(),
            class_issued: [0; CLASS_COUNT],
            class_completed: [0; CLASS_COUNT],
            class_dropped: [0; CLASS_COUNT],
            class_lost: [0; CLASS_COUNT],
            class_shed: [0; CLASS_COUNT],
            class_expired: [0; CLASS_COUNT],
            within_budget: [0; CLASS_COUNT],
            class_histograms: std::array::from_fn(|_| LatencyHistogram::new()),
            pre_failure: LatencyHistogram::new(),
            post_failure: LatencyHistogram::new(),
            scale_events: Vec::new(),
            replaced: 0,
        }
    }

    /// Counts every arrival as issued against its branch and class (done
    /// once, up front, exactly as the frozen loop did).
    pub(crate) fn count_arrivals(&mut self, arrivals: &[Request]) {
        for request in arrivals {
            self.issued[request.branch] += 1;
            self.class_issued[request.class.index()] += 1;
        }
    }

    /// Folds another tally into this one. Every merge is exact (integer
    /// addition, fixed-bucket histogram merge), so folding per-shard
    /// tallies in shard-id order reproduces the sequential loop's
    /// accumulators bit for bit.
    pub(crate) fn absorb(&mut self, other: &Tally) {
        for (mine, theirs) in self.issued.iter_mut().zip(&other.issued) {
            *mine += theirs;
        }
        for (mine, theirs) in self.completed.iter_mut().zip(&other.completed) {
            *mine += theirs;
        }
        for (mine, theirs) in self.dropped.iter_mut().zip(&other.dropped) {
            *mine += theirs;
        }
        for (mine, theirs) in self.lost.iter_mut().zip(&other.lost) {
            *mine += theirs;
        }
        for (mine, theirs) in self.shed.iter_mut().zip(&other.shed) {
            *mine += theirs;
        }
        for (mine, theirs) in self.expired.iter_mut().zip(&other.expired) {
            *mine += theirs;
        }
        for (mine, theirs) in self
            .branch_histograms
            .iter_mut()
            .zip(&other.branch_histograms)
        {
            mine.merge(theirs);
        }
        for index in 0..CLASS_COUNT {
            self.class_issued[index] += other.class_issued[index];
            self.class_completed[index] += other.class_completed[index];
            self.class_dropped[index] += other.class_dropped[index];
            self.class_lost[index] += other.class_lost[index];
            self.class_shed[index] += other.class_shed[index];
            self.class_expired[index] += other.class_expired[index];
            self.within_budget[index] += other.within_budget[index];
            self.class_histograms[index].merge(&other.class_histograms[index]);
        }
        self.pre_failure.merge(&other.pre_failure);
        self.post_failure.merge(&other.post_failure);
        self.scale_events.extend(other.scale_events.iter().cloned());
        self.replaced += other.replaced;
    }
}

/// The per-shard facts the report needs, detached from the live shard so
/// [`finalize`] can be shared between the sequential loop and the
/// parallel engine's worker results.
pub(crate) struct ShardSummary {
    pub(crate) scheduler_name: &'static str,
    pub(crate) phase: ShardState,
    pub(crate) free_at_us: u64,
    pub(crate) busy_us: u64,
    pub(crate) issued: u64,
    pub(crate) completed: u64,
    pub(crate) dropped: u64,
    pub(crate) shed: u64,
    pub(crate) expired: u64,
    pub(crate) histogram: LatencyHistogram,
}

/// Assembles the [`ServeReport`] from the run's accumulators — the exact
/// arithmetic (and floating-point operation order) of the frozen loop's
/// report tail, extracted so the sequential and parallel engines share
/// one implementation. `model0` is shard 0's (priority-override-applied)
/// service model, which names the branches.
pub(crate) fn finalize(
    scenario: &Scenario,
    balancer_name: &str,
    admission_name: &str,
    model0: &ServiceModel,
    mut tally: Tally,
    summaries: &[ShardSummary],
) -> ServeReport {
    tally
        .scale_events
        .sort_by(|a, b| a.at_sec.total_cmp(&b.at_sec));

    let shard_count = summaries.len();
    let total_issued: u64 = tally.issued.iter().sum();
    let total_completed: u64 = tally.completed.iter().sum();
    let total_dropped: u64 = tally.dropped.iter().sum();
    let total_lost: u64 = tally.lost.iter().sum();
    let total_shed: u64 = tally.shed.iter().sum();
    let total_expired: u64 = tally.expired.iter().sum();
    let total_within: u64 = tally.within_budget.iter().sum();
    let total_busy_us: u64 = summaries.iter().map(|s| s.busy_us).sum();
    debug_assert_eq!(
        total_completed + total_dropped + total_lost + total_shed + total_expired,
        total_issued,
        "fleet-wide request conservation violated"
    );
    for index in 0..tally.issued.len() {
        debug_assert_eq!(
            tally.completed[index]
                + tally.dropped[index]
                + tally.lost[index]
                + tally.shed[index]
                + tally.expired[index],
            tally.issued[index],
            "branch {index} request conservation violated"
        );
    }
    for index in 0..tally.class_issued.len() {
        debug_assert_eq!(
            tally.class_completed[index]
                + tally.class_dropped[index]
                + tally.class_lost[index]
                + tally.class_shed[index]
                + tally.class_expired[index],
            tally.class_issued[index],
            "class {index} request conservation violated"
        );
    }
    for (index, s) in summaries.iter().enumerate() {
        debug_assert_eq!(
            s.completed + s.dropped + s.shed + s.expired,
            s.issued,
            "shard {index} request conservation violated"
        );
    }
    let makespan_us = summaries.iter().map(|s| s.free_at_us).max().unwrap_or(0);
    let makespan_sec = u64_to_f64(makespan_us) / 1e6;
    let mut overall = LatencyHistogram::new();
    for shard in summaries {
        overall.merge(&shard.histogram);
    }
    let branches = model0
        .branches
        .iter()
        .enumerate()
        .map(|(index, service)| BranchServeStats {
            name: service.name.clone(),
            priority: service.priority,
            issued: tally.issued[index],
            completed: tally.completed[index],
            dropped: tally.dropped[index],
            lost: tally.lost[index],
            shed: tally.shed[index],
            expired: tally.expired[index],
            latency: LatencySummary::of(&tally.branch_histograms[index]),
        })
        .collect();
    let classes: Vec<ClassServeStats> = QosClass::all()
        .iter()
        .map(|class| {
            let index = class.index();
            ClassServeStats {
                class: *class,
                budget_ms: class.budget_ms(),
                weight: class.weight(),
                issued: tally.class_issued[index],
                completed: tally.class_completed[index],
                dropped: tally.class_dropped[index],
                lost: tally.class_lost[index],
                shed: tally.class_shed[index],
                expired: tally.class_expired[index],
                slo_attainment: attainment(
                    tally.within_budget[index],
                    tally.class_completed[index],
                    tally.class_issued[index],
                ),
                latency: LatencySummary::of(&tally.class_histograms[index]),
            }
        })
        .collect();
    let shard_stats: Vec<ShardStats> = summaries
        .iter()
        .map(|s| ShardStats {
            issued: s.issued,
            completed: s.completed,
            dropped: s.dropped,
            shed: s.shed,
            expired: s.expired,
            state: s.phase,
            utilization: if makespan_us > 0 {
                u64_to_f64(s.busy_us) / u64_to_f64(makespan_us)
            } else {
                0.0
            },
            latency: LatencySummary::of(&s.histogram),
        })
        .collect();
    let imbalance = {
        let max = summaries.iter().map(|s| s.busy_us).max().unwrap_or(0);
        let min = summaries.iter().map(|s| s.busy_us).min().unwrap_or(0);
        let mean = u64_to_f64(total_busy_us) / usize_to_f64(shard_count);
        if mean > 0.0 {
            u64_to_f64(max - min) / mean
        } else {
            0.0
        }
    };
    let slo_attainment = attainment(total_within, total_completed, total_issued);
    let slo_per_busy_sec = if total_busy_us > 0 {
        slo_attainment / (u64_to_f64(total_busy_us) / 1e6)
    } else {
        0.0
    };
    let scheduler_name = if summaries
        .iter()
        .all(|s| s.scheduler_name == summaries[0].scheduler_name)
    {
        summaries[0].scheduler_name
    } else {
        "mixed"
    };
    ServeReport {
        scenario: scenario.name.clone(),
        scheduler: scheduler_name.to_owned(),
        balancer: balancer_name.to_owned(),
        seed: scenario.seed,
        sessions: scenario.sessions,
        issued: total_issued,
        completed: total_completed,
        dropped: total_dropped,
        drop_rate: if total_issued == 0 {
            0.0
        } else {
            u64_to_f64(total_dropped) / u64_to_f64(total_issued)
        },
        makespan_sec,
        throughput_rps: if makespan_sec > 0.0 {
            u64_to_f64(total_completed) / makespan_sec
        } else {
            0.0
        },
        utilization: if makespan_us > 0 {
            u64_to_f64(total_busy_us) / u64_to_f64(usize_to_u64(shard_count) * makespan_us)
        } else {
            0.0
        },
        imbalance,
        latency: LatencySummary::of(&overall),
        branches,
        shards: shard_stats,
        replaced: tally.replaced,
        lost: total_lost,
        availability: if total_issued == 0 {
            1.0
        } else {
            u64_to_f64(total_completed) / u64_to_f64(total_issued)
        },
        latency_pre_failure: LatencySummary::of(&tally.pre_failure),
        latency_post_failure: LatencySummary::of(&tally.post_failure),
        scale_events: tally.scale_events,
        shed: total_shed,
        admission: admission_name.to_owned(),
        slo_attainment,
        classes,
        expired: total_expired,
        fabric_busy_us: total_busy_us,
        slo_per_busy_sec,
        trace_summary: None,
    }
}

/// Attainment over completions, with issued traffic deciding the vacuous
/// case: a class (or run) that issued nothing scores 1.0 — there was no
/// SLO to miss — while one that issued traffic but completed nothing
/// scores 0.0 (every request missed its budget by never finishing).
fn attainment(within: u64, completed: u64, issued: u64) -> f64 {
    if issued == 0 {
        1.0
    } else if completed == 0 {
        0.0
    } else {
        u64_to_f64(within) / u64_to_f64(completed)
    }
}

/// Fills `loads` with the placeable shards' `(global id, load)` pairs:
/// the active shards, or — only when none is active — the warming ones
/// (their queues hold until warmed, but the work is not lost).
fn collect_placeable(loads: &mut Vec<(usize, ShardLoad)>, shards: &[Shard]) {
    for wanted in [ShardState::Active, ShardState::Warming] {
        loads.clear();
        loads.extend(
            shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.phase == wanted)
                .map(|(index, s)| (index, s.load())),
        );
        if !loads.is_empty() {
            return;
        }
    }
}

/// Decommissions a shard (from Draining, or straight from Active on idle
/// retirement — its queue is already empty) and logs the retirement.
fn retire(
    shards: &mut [Shard],
    events: &mut Vec<ScaleEvent>,
    at_us: u64,
    shard: usize,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    shards[shard].phase = ShardState::Retired;
    record(
        events,
        shards,
        at_us,
        ScaleEventKind::Retire,
        shard,
        sink,
        tracing,
    );
}

/// Appends a scale event with the post-event active-shard count, mirrored
/// as an instant on the trace timeline so fleet transitions line up with
/// the request spans they explain.
#[allow(clippy::too_many_arguments)]
fn record(
    events: &mut Vec<ScaleEvent>,
    shards: &[Shard],
    at_us: u64,
    kind: ScaleEventKind,
    shard: usize,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    let active_after = active_count(shards);
    events.push(ScaleEvent {
        at_sec: u64_to_f64(at_us) / 1e6,
        kind,
        shard,
        active_after,
    });
    if tracing {
        sink.record(TraceEvent::Fleet(FleetEvent {
            at_us,
            shard,
            kind: kind.fleet_kind(),
            active_after,
        }));
    }
}

/// Spawns one warming shard cloned from shard 0's service model and
/// schedules its warm-up completion (plus its first idle check). The
/// shard dispatches nothing until the `Warm` event fires — the warm-up
/// handler raises `free_at_us` to the warm instant, so even work queued
/// while warming cannot complete before the weight fill ends.
#[allow(clippy::too_many_arguments)]
fn do_spawn<'a>(
    now_us: u64,
    kind: SchedulerKind,
    policy: &Autoscaler,
    shards: &mut Vec<Shard<'a>>,
    calendar: &mut Calendar<CalEvent>,
    life_seq: &mut u64,
    scale_events: &mut Vec<ScaleEvent>,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    let shard = shards.len();
    let template = shards[0].model.clone();
    shards.push(Shard::new(template, kind.build(), ShardState::Warming));
    push_life(
        calendar,
        life_seq,
        now_us + policy.warmup_us,
        shard,
        Action::Warm,
    );
    if policy.idle_retire_us > 0 {
        shards[shard].idle_check_pending = true;
        push_life(
            calendar,
            life_seq,
            now_us + policy.warmup_us + policy.idle_retire_us,
            shard,
            Action::IdleCheck,
        );
    }
    record(
        scale_events,
        shards,
        now_us,
        ScaleEventKind::Up,
        shard,
        sink,
        tracing,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::LoadBalancerKind;
    use crate::model::test_model;

    #[test]
    fn every_scheduler_conserves_requests_on_the_whole_suite() {
        let model = test_model();
        for scenario in Scenario::suite() {
            for &kind in SchedulerKind::all() {
                let report = simulate(&model, &scenario, kind);
                assert!(
                    report.conserves_requests(),
                    "{} / {}: {} completed + {} dropped != {} issued",
                    report.scenario,
                    report.scheduler,
                    report.completed,
                    report.dropped,
                    report.issued
                );
                assert!(report.utilization <= 1.0 + 1e-9);
                assert!(report.latency.p99_ms >= report.latency.p50_ms);
                assert_eq!(report.shard_count(), 1);
                assert_eq!(report.imbalance, 0.0);
            }
        }
    }

    #[test]
    fn identical_inputs_give_identical_reports() {
        let model = test_model();
        let scenario = Scenario::b2();
        let a = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        let b = simulate(&model, &scenario, SchedulerKind::PriorityByBranch);
        assert_eq!(a, b);
    }

    #[test]
    fn an_unloaded_single_session_sees_no_queueing() {
        // One 30 Hz session, service well under the 33 ms frame budget:
        // every request completes in its own service time.
        let model = test_model();
        let report = simulate(&model, &Scenario::a1(), SchedulerKind::Fifo);
        assert_eq!(report.dropped, 0);
        // Worst single-request service time in the model is 5 ms + fill.
        assert!(
            report.latency.max_ms <= 20.0,
            "unloaded max latency {} ms",
            report.latency.max_ms
        );
        assert!(report.utilization < 0.5);
    }

    #[test]
    fn batching_beats_fifo_on_throughput_under_fanout_load() {
        let model = test_model();
        let scenario = Scenario::a2(8);
        let fifo = simulate(&model, &scenario, SchedulerKind::Fifo);
        let batch = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        // Amortized fill means the batch scheduler finishes the same work
        // no later (and strictly earlier whenever any batch formed).
        assert!(batch.makespan_sec <= fifo.makespan_sec);
        assert!(batch.latency.p99_ms <= fifo.latency.p99_ms);
    }

    #[test]
    fn scenario_priority_override_reaches_the_report() {
        let model = test_model();
        let report = simulate(&model, &Scenario::b2(), SchedulerKind::PriorityByBranch);
        assert_eq!(report.branches[0].priority, 1.0);
        assert_eq!(report.branches[2].priority, 0.15);
    }

    #[test]
    fn empty_scenario_produces_an_empty_report() {
        let model = test_model();
        let scenario = Scenario::a1().with_sessions(0);
        let report = simulate(&model, &scenario, SchedulerKind::BatchAggregating);
        assert_eq!(report.issued, 0);
        assert_eq!(report.completed, 0);
        assert!(report.conserves_requests());
        assert_eq!(report.throughput_rps, 0.0);
        assert_eq!(report.availability, 1.0);
    }

    #[test]
    fn fleet_reports_conserve_and_split_work_across_shards() {
        let model = test_model();
        let scenario = Scenario::b2();
        for &balancer in LoadBalancerKind::all() {
            let config = FleetConfig::uniform(model.clone(), 3).with_balancer(balancer);
            let report = simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating);
            assert!(report.conserves_requests(), "{}", balancer.name());
            assert_eq!(report.shard_count(), 3);
            assert_eq!(report.balancer, balancer.name());
            // Under b2's five bursty sessions every policy must spread
            // work over more than one shard.
            let active = report.shards.iter().filter(|s| s.completed > 0).count();
            assert!(active >= 2, "{}: all work on one shard", balancer.name());
        }
    }

    #[test]
    fn adding_shards_cannot_hurt_the_burst_tail() {
        let model = test_model();
        let scenario = Scenario::b2();
        let one = simulate_fleet(
            &FleetConfig::uniform(model.clone(), 1).with_balancer(LoadBalancerKind::LeastLoaded),
            &scenario,
            SchedulerKind::BatchAggregating,
        );
        let four = simulate_fleet(
            &FleetConfig::uniform(model, 4).with_balancer(LoadBalancerKind::LeastLoaded),
            &scenario,
            SchedulerKind::BatchAggregating,
        );
        assert!(
            four.latency.p99_ms < one.latency.p99_ms,
            "4 shards p99 {} !< 1 shard p99 {}",
            four.latency.p99_ms,
            one.latency.p99_ms
        );
        assert!(four.dropped <= one.dropped);
    }

    #[test]
    fn mixed_shard_schedulers_are_reported_as_mixed() {
        use crate::scheduler::{FifoScheduler, PriorityScheduler};
        let config = FleetConfig::uniform(test_model(), 2);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(PriorityScheduler::new()),
        ];
        let report = simulate_fleet_with(&config, &Scenario::b2(), &mut schedulers);
        assert_eq!(report.scheduler, "mixed");
        assert!(report.conserves_requests());
    }

    #[test]
    fn heterogeneous_fleets_load_the_faster_shard_harder() {
        let fast = test_model();
        let mut slow = test_model();
        for branch in &mut slow.branches {
            branch.frame_time_us *= 4;
            branch.fill_time_us *= 4;
        }
        let config = FleetConfig::heterogeneous(vec![fast, slow])
            .with_balancer(LoadBalancerKind::LeastLoaded);
        let report = simulate_fleet(&config, &Scenario::b2(), SchedulerKind::BatchAggregating);
        assert!(report.conserves_requests());
        assert!(
            report.shards[0].completed > report.shards[1].completed,
            "fast shard completed {} !> slow shard {}",
            report.shards[0].completed,
            report.shards[1].completed
        );
    }

    #[test]
    fn a_fixed_fleet_reports_every_shard_active_and_no_events() {
        let report = simulate_fleet(
            &FleetConfig::uniform(test_model(), 2),
            &Scenario::b2(),
            SchedulerKind::BatchAggregating,
        );
        assert!(report.scale_events.is_empty());
        assert_eq!(report.replaced, 0);
        assert_eq!(report.lost, 0);
        assert!(report
            .shards
            .iter()
            .all(|s| s.state == crate::ShardState::Active));
        assert_eq!(report.latency_pre_failure, LatencySummary::default());
        assert_eq!(report.latency_post_failure, LatencySummary::default());
    }

    #[test]
    fn a_mid_run_failure_re_places_or_loses_the_orphaned_queue() {
        let config =
            FleetConfig::uniform(test_model(), 2).with_balancer(LoadBalancerKind::LeastLoaded);
        let scenario = Scenario::b2();
        let plan = FailurePlan::scheduled(&[(1_000_000, 1)]);
        let report = simulate_autoscaled(
            &config,
            &scenario,
            SchedulerKind::BatchAggregating,
            &Autoscaler::none(),
            &plan,
        );
        assert!(report.conserves_requests());
        assert_eq!(report.shards[1].state, crate::ShardState::Failed);
        assert_eq!(report.shards[0].state, crate::ShardState::Active);
        assert!(
            report
                .scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Fail && e.shard == 1),
            "missing fail event: {:?}",
            report.scale_events
        );
        // The surviving shard carries strictly more than half the work.
        assert!(report.shards[0].completed > report.completed / 2);
    }

    #[test]
    fn killing_a_nonexistent_shard_changes_nothing() {
        let config = FleetConfig::uniform(test_model(), 2);
        let scenario = Scenario::b2();
        let baseline = simulate_fleet(&config, &scenario, SchedulerKind::BatchAggregating);
        let with_noop_kill = simulate_autoscaled(
            &config,
            &scenario,
            SchedulerKind::BatchAggregating,
            &Autoscaler::none(),
            &FailurePlan::scheduled(&[(1_000_000, 9)]),
        );
        // The phantom kill fires on no shard; only the pre/post-failure
        // split (anchored at the scheduled instant) may differ.
        assert_eq!(baseline.completed, with_noop_kill.completed);
        assert_eq!(baseline.latency, with_noop_kill.latency);
        assert!(with_noop_kill.scale_events.is_empty());
        assert_eq!(with_noop_kill.lost, 0);
    }

    #[test]
    fn admit_all_is_the_legacy_engine_bit_for_bit() {
        let model = test_model();
        for scenario in [Scenario::b2(), Scenario::b2_qos()] {
            for &kind in SchedulerKind::all() {
                let legacy = simulate(&model, &scenario, kind);
                let qos = simulate_qos(&model, &scenario, kind, AdmissionKind::AdmitAll);
                assert_eq!(legacy, qos, "{} / {:?}", scenario.name, kind);
                assert_eq!(legacy.shed, 0);
                assert_eq!(legacy.admission, "admit_all");
            }
        }
    }

    #[test]
    fn classless_runs_put_everything_in_the_standard_row() {
        let model = test_model();
        let report = simulate(&model, &Scenario::b2(), SchedulerKind::PriorityByBranch);
        assert!(report.conserves_requests());
        let standard = report.class(QosClass::Standard).expect("standard row");
        assert_eq!(standard.issued, report.issued);
        assert_eq!(standard.completed, report.completed);
        assert_eq!(standard.latency, report.latency);
        for class in [QosClass::Interactive, QosClass::BestEffort] {
            let row = report.class(class).expect("class row");
            assert_eq!(row.issued, 0);
            assert_eq!(row.slo_attainment, 1.0, "vacuous SLO on an empty row");
        }
    }

    /// `test_model` slowed 4× so the b2_qos burst genuinely oversubscribes
    /// one device and the shedding policies have something to shed.
    fn slow_model() -> ServiceModel {
        let mut model = test_model();
        for branch in &mut model.branches {
            branch.frame_time_us *= 4;
            branch.fill_time_us *= 4;
        }
        model
    }

    #[test]
    fn shedding_policies_conserve_with_the_fourth_outcome() {
        let model = slow_model();
        let scenario = Scenario::b2_qos();
        for &admission in AdmissionKind::all() {
            for &kind in SchedulerKind::all() {
                let report = simulate_qos(&model, &scenario, kind, admission);
                assert!(
                    report.conserves_requests(),
                    "{} / {:?}: {} + {} + {} + {} != {}",
                    admission.name(),
                    kind,
                    report.completed,
                    report.dropped,
                    report.lost,
                    report.shed,
                    report.issued
                );
                assert_eq!(report.admission, admission.name());
            }
        }
        // The b2_qos burst oversubscribes one device, so both shedding
        // policies must actually shed.
        for admission in [AdmissionKind::QueueThreshold, AdmissionKind::BudgetAware] {
            let report = simulate_qos(
                &model,
                &scenario,
                SchedulerKind::PriorityByBranch,
                admission,
            );
            assert!(report.shed > 0, "{} never shed", admission.name());
        }
    }

    #[test]
    fn queue_thresholds_protect_the_interactive_tier() {
        let model = slow_model();
        let scenario = Scenario::b2_qos();
        let report = simulate_qos(
            &model,
            &scenario,
            SchedulerKind::PriorityByBranch,
            AdmissionKind::QueueThreshold,
        );
        let interactive = report.class(QosClass::Interactive).expect("row");
        let best_effort = report.class(QosClass::BestEffort).expect("row");
        assert!(best_effort.shed > 0, "lower tiers shed first");
        // Interactive is only turned away at a literally full queue, so
        // its shed rate stays below the best-effort tier's.
        let rate = |c: &crate::ClassServeStats| c.shed as f64 / c.issued.max(1) as f64;
        assert!(rate(interactive) < rate(best_effort));
    }

    #[test]
    fn queue_pressure_spawns_within_policy_bounds() {
        // One shard under five bursty sessions trips the depth trigger.
        let config = FleetConfig::uniform(test_model(), 1);
        let policy = Autoscaler::reactive(1, 3)
            .with_scale_up_queue_depth(4)
            .with_warmup_us(10_000)
            .with_cooldown_us(50_000)
            .with_idle_retire_us(0);
        let report = simulate_autoscaled(
            &config,
            &Scenario::b2(),
            SchedulerKind::BatchAggregating,
            &policy,
            &FailurePlan::none(),
        );
        assert!(report.conserves_requests());
        let ups = report
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Up)
            .count();
        assert!(
            ups >= 1,
            "pressure never tripped: {:?}",
            report.scale_events
        );
        assert!(report.shard_count() <= 3);
        // Every spawned shard eventually warmed and served.
        for shard in &report.shards[1..] {
            assert!(shard.completed > 0, "spawned shard never served");
        }
    }
}
