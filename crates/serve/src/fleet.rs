//! Fleet configuration and load balancing: many accelerators, one queue of
//! avatar traffic.
//!
//! Auto-CARD-style deployments judge a codec-avatar pipeline under many
//! concurrent users, not single-decoder FPS, and one time-multiplexed
//! accelerator tops out at a handful of sessions. A [`FleetConfig`] scales
//! the serving simulation to a fleet of devices: each shard is one
//! accelerator with its own [`ServiceModel`] (heterogeneous fleets mix
//! fast and slow devices), its own scheduler instance and its own
//! front-end queue, while a fleet-level [`LoadBalancerKind`] places every
//! arriving request on a shard.
//!
//! Placement is where identity weights matter. A codec-avatar shard keeps
//! the per-identity decoder weights of the sessions it serves resident, so
//! a session that sticks to one shard amortizes its weight fill across
//! dispatches, while a session that wanders re-streams weights everywhere.
//! The affinity-first balancer models exactly that: a session is pinned to
//! the shard that last admitted its identity and only spills (re-pinning)
//! when the pinned shard's queue is full. The least-loaded balancer instead
//! chases the readiness signal the [`Scheduler`](crate::Scheduler) trait
//! already exposes as `branch_free_us`: each shard's fabric-free instant
//! plus its queued backlog, in microseconds.

use crate::model::ServiceModel;
use crate::request::Request;
use serde::{Deserialize, Serialize};

/// How the fleet front end places arriving requests on shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancerKind {
    /// Static rotation over the shards, one request at a time. Ignores
    /// load entirely — the baseline every adaptive policy must beat.
    RoundRobin,
    /// Picks the shard with the smallest load in microseconds: the
    /// fabric-free hint (`branch_free_us` at fleet granularity) plus the
    /// estimated service backlog of its queue; ties fall to the shallower
    /// queue, then the lowest shard index.
    LeastLoaded,
    /// Session affinity with spill: a session is pinned to the shard that
    /// last admitted one of its requests (its identity weights are
    /// resident there), and spills to the least-loaded shard with queue
    /// space — re-pinning, as the weights migrate — only when the pinned
    /// shard's queue is full.
    AffinityFirst,
    /// Static per-branch sharding: branch `b` lands on shard
    /// `b % shard_count`, so each shard streams weights for only a slice
    /// of the branches.
    BranchSharded,
}

impl LoadBalancerKind {
    /// All built-in balancing policies. Returns a slice so adding a
    /// policy does not ripple a fixed array length through every call
    /// site.
    pub fn all() -> &'static [LoadBalancerKind] {
        &[
            LoadBalancerKind::RoundRobin,
            LoadBalancerKind::LeastLoaded,
            LoadBalancerKind::AffinityFirst,
            LoadBalancerKind::BranchSharded,
        ]
    }

    /// Policy name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            LoadBalancerKind::RoundRobin => "round_robin",
            LoadBalancerKind::LeastLoaded => "least_loaded",
            LoadBalancerKind::AffinityFirst => "affinity",
            LoadBalancerKind::BranchSharded => "branch_sharded",
        }
    }
}

/// A fleet of accelerator shards serving one scenario's traffic.
///
/// Every shard needs the same branch structure (the scenario issues one
/// request per branch per frame), but shards may differ in speed: a
/// heterogeneous fleet mixes, say, a ZU17EG shard with a smaller ZCU104
/// one, and the balancer sees the difference through each shard's backlog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Per-shard service models, in shard order.
    pub shards: Vec<ServiceModel>,
    /// Placement policy for arriving requests.
    pub balancer: LoadBalancerKind,
}

impl FleetConfig {
    /// A homogeneous fleet: `shard_count` copies of `model` (at least one),
    /// balanced round-robin until [`FleetConfig::with_balancer`] says
    /// otherwise.
    pub fn uniform(model: ServiceModel, shard_count: usize) -> Self {
        Self {
            shards: vec![model; shard_count.max(1)],
            balancer: LoadBalancerKind::RoundRobin,
        }
    }

    /// A heterogeneous fleet from explicit per-shard models. Every model
    /// must expose the same branch structure — same count, same names and
    /// same priorities in the same order (speeds, fills and batch sizes
    /// may differ); an empty list is rejected. The report's per-branch
    /// rows merge shards by branch index and quote one priority per
    /// branch, so mismatched structures would sum unrelated branches or
    /// misreport how half the fleet scheduled them.
    pub fn heterogeneous(shards: Vec<ServiceModel>) -> Self {
        let config = Self {
            shards,
            balancer: LoadBalancerKind::RoundRobin,
        };
        config.assert_valid();
        config
    }

    /// Panics unless the fleet is well-formed: at least one shard, and
    /// every shard sharing one branch structure (same count, names and
    /// priorities). The constructors enforce this, but the fields are
    /// public (and deserializable), so the engine re-checks through the
    /// same gate before a run.
    pub fn assert_valid(&self) {
        assert!(!self.shards.is_empty(), "a fleet needs at least one shard");
        assert!(
            self.shards.iter().all(|m| {
                m.branch_count() == self.shards[0].branch_count()
                    && m.branches
                        .iter()
                        .zip(&self.shards[0].branches)
                        .all(|(a, b)| a.name == b.name && a.priority == b.priority)
            }),
            "every shard must expose the same branch structure"
        );
    }

    /// Replaces the placement policy.
    pub fn with_balancer(mut self, balancer: LoadBalancerKind) -> Self {
        self.balancer = balancer;
        self
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Branch count of the fleet (shared by every shard).
    pub fn branch_count(&self) -> usize {
        self.shards.first().map_or(0, ServiceModel::branch_count)
    }
}

/// One shard's live load, as the balancer sees it at placement time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardLoad {
    /// Requests currently queued on the shard.
    pub queued: usize,
    /// Instant the shard's fabric frees (its last dispatch completion).
    pub free_at_us: u64,
    /// Estimated service time of the queued requests, µs (each counted at
    /// its unbatched single-request cost).
    pub backlog_us: u64,
}

impl ShardLoad {
    /// The shard's load in microseconds as of `now_us`: remaining busy
    /// time plus queued backlog — the fleet-level reading of the
    /// `branch_free_us` readiness hint.
    fn load_us(&self, now_us: u64) -> u64 {
        self.free_at_us.saturating_sub(now_us) + self.backlog_us
    }
}

/// The stateful placement engine behind a [`LoadBalancerKind`]: a
/// round-robin cursor and the per-session affinity table.
#[derive(Debug)]
pub(crate) struct Balancer {
    kind: LoadBalancerKind,
    next_round_robin: usize,
    affinity: Vec<Option<usize>>,
}

impl Balancer {
    pub(crate) fn new(kind: LoadBalancerKind) -> Self {
        Self {
            kind,
            next_round_robin: 0,
            affinity: Vec::new(),
        }
    }

    /// Picks the shard for `request` among the placeable candidates, given
    /// as `(global shard id, load)` pairs — a dynamic fleet's warming,
    /// draining and dead shards are simply absent from the slice, and the
    /// returned id is the global one. The engine still drops the request
    /// if the chosen shard's queue is full; adaptive policies steer away
    /// from full queues when any candidate has space.
    pub(crate) fn place(
        &mut self,
        request: &Request,
        shards: &[(usize, ShardLoad)],
        now_us: u64,
        capacity: usize,
    ) -> usize {
        match self.kind {
            LoadBalancerKind::RoundRobin => {
                let shard = shards[self.next_round_robin % shards.len()].0;
                self.next_round_robin = (self.next_round_robin + 1) % shards.len();
                shard
            }
            LoadBalancerKind::BranchSharded => shards[request.branch % shards.len()].0,
            LoadBalancerKind::LeastLoaded => least_loaded(shards, now_us, capacity),
            LoadBalancerKind::AffinityFirst => {
                match self.affinity.get(request.session).copied().flatten() {
                    // The pinned shard holds this identity's weights; stay
                    // while it is placeable and has queue space. A pin to a
                    // failed or draining shard is simply not among the
                    // candidates, so the session re-places (and re-pins)
                    // through the least-loaded fallback.
                    Some(pinned)
                        if shards
                            .iter()
                            .any(|&(id, load)| id == pinned && load.queued < capacity) =>
                    {
                        pinned
                    }
                    _ => least_loaded(shards, now_us, capacity),
                }
            }
        }
    }

    /// [`Balancer::place`] plus the arrival trace event: the placement
    /// decision is the first thing that happens to a request, so the
    /// balancer is where its `Arrival` event (stamped with the chosen
    /// shard) enters the trace.
    pub(crate) fn place_traced(
        &mut self,
        request: &Request,
        shards: &[(usize, ShardLoad)],
        now_us: u64,
        capacity: usize,
        sink: &mut dyn fcad_obs::TraceSink,
        tracing: bool,
    ) -> usize {
        let shard = self.place(request, shards, now_us, capacity);
        if tracing {
            sink.record(request.trace(now_us, Some(shard), fcad_obs::RequestEventKind::Arrival));
        }
        shard
    }

    /// O(1) placement over a *placeable-id snapshot*: the engine's
    /// piecewise-static fast path hands in the sorted global ids of the
    /// currently placeable shards (rebuilt only after a lifecycle event),
    /// and round-robin / branch-sharding place by the same cursor
    /// arithmetic [`Balancer::place`] applies to a candidate slice — the
    /// ids play the role of the `(id, load)` pairs, which these two kinds
    /// never read. Load-aware kinds return `None`: they need live loads.
    pub(crate) fn place_dense(&mut self, request: &Request, ids: &[usize]) -> Option<usize> {
        match self.kind {
            LoadBalancerKind::RoundRobin => {
                let shard = ids[self.next_round_robin % ids.len()];
                self.next_round_robin = (self.next_round_robin + 1) % ids.len();
                Some(shard)
            }
            LoadBalancerKind::BranchSharded => Some(ids[request.branch % ids.len()]),
            LoadBalancerKind::LeastLoaded | LoadBalancerKind::AffinityFirst => None,
        }
    }

    /// Pre-sizes the affinity table for `sessions` sessions so the
    /// affinity-first policy never re-grows it mid-run (a no-op for every
    /// other policy). Purely an allocation hint: an unpinned entry reads
    /// as `None` either way.
    pub(crate) fn reserve_sessions(&mut self, sessions: usize) {
        if self.kind == LoadBalancerKind::AffinityFirst && self.affinity.len() < sessions {
            self.affinity.resize(sessions, None);
        }
    }

    /// Records a successful admission so affinity follows the shard that
    /// last served the session's identity.
    pub(crate) fn note_admitted(&mut self, session: usize, shard: usize) {
        if self.kind != LoadBalancerKind::AffinityFirst {
            return;
        }
        if session >= self.affinity.len() {
            self.affinity.resize(session + 1, None);
        }
        self.affinity[session] = Some(shard);
    }
}

/// The least-loaded candidate by `(load_us, queued, global id)`, preferring
/// shards with queue space; only when every queue is full does the pick
/// fall back to the least-loaded full shard (where the engine will record
/// the drop).
fn least_loaded(shards: &[(usize, ShardLoad)], now_us: u64, capacity: usize) -> usize {
    let pick = |require_space: bool| {
        shards
            .iter()
            .filter(|(_, load)| !require_space || load.queued < capacity)
            .min_by_key(|(id, load)| (load.load_us(now_us), load.queued, *id))
            .map(|(id, _)| *id)
    };
    pick(true)
        .or_else(|| pick(false))
        .expect("placement needs at least one candidate shard")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_model;

    fn request(session: usize, branch: usize) -> Request {
        Request {
            id: 0,
            session,
            branch,
            issued_at_us: 0,
            class: crate::QosClass::Standard,
        }
    }

    fn idle(shards: usize) -> Vec<(usize, ShardLoad)> {
        (0..shards)
            .map(|id| {
                (
                    id,
                    ShardLoad {
                        queued: 0,
                        free_at_us: 0,
                        backlog_us: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_over_the_shards() {
        let mut balancer = Balancer::new(LoadBalancerKind::RoundRobin);
        let loads = idle(3);
        let picks: Vec<usize> = (0..6)
            .map(|_| balancer.place(&request(0, 0), &loads, 0, 16))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn branch_sharding_is_static_by_branch() {
        let mut balancer = Balancer::new(LoadBalancerKind::BranchSharded);
        let loads = idle(2);
        assert_eq!(balancer.place(&request(0, 0), &loads, 0, 16), 0);
        assert_eq!(balancer.place(&request(3, 1), &loads, 0, 16), 1);
        assert_eq!(balancer.place(&request(7, 2), &loads, 0, 16), 0);
    }

    #[test]
    fn least_loaded_follows_the_free_hint_and_backlog() {
        let mut balancer = Balancer::new(LoadBalancerKind::LeastLoaded);
        let loads = vec![
            (
                0,
                ShardLoad {
                    queued: 2,
                    free_at_us: 9_000,
                    backlog_us: 8_000,
                },
            ),
            (
                1,
                ShardLoad {
                    queued: 1,
                    free_at_us: 4_000,
                    backlog_us: 2_000,
                },
            ),
        ];
        // Shard 1: 3_000 µs remaining busy + 2_000 backlog < shard 0's
        // 8_000 + 8_000.
        assert_eq!(balancer.place(&request(0, 0), &loads, 1_000, 16), 1);
    }

    #[test]
    fn least_loaded_avoids_full_queues_while_space_remains() {
        let mut balancer = Balancer::new(LoadBalancerKind::LeastLoaded);
        let loads = vec![
            (
                0,
                ShardLoad {
                    queued: 4,
                    free_at_us: 0,
                    backlog_us: 0,
                },
            ),
            (
                1,
                ShardLoad {
                    queued: 3,
                    free_at_us: 50_000,
                    backlog_us: 40_000,
                },
            ),
        ];
        // Shard 0 is lighter but full (capacity 4): the heavier shard with
        // space wins; once both are full the lighter one takes the drop.
        assert_eq!(balancer.place(&request(0, 0), &loads, 0, 4), 1);
        assert_eq!(balancer.place(&request(0, 0), &loads, 0, 3), 0);
    }

    #[test]
    fn affinity_pins_a_session_and_spills_only_when_full() {
        let mut balancer = Balancer::new(LoadBalancerKind::AffinityFirst);
        let mut loads = idle(2);
        // First placement: least-loaded picks shard 0; admission pins it.
        assert_eq!(balancer.place(&request(5, 0), &loads, 0, 2), 0);
        balancer.note_admitted(5, 0);
        // Even with shard 0 busier, the pin holds while it has space…
        loads[0].1 = ShardLoad {
            queued: 1,
            free_at_us: 90_000,
            backlog_us: 9_000,
        };
        assert_eq!(balancer.place(&request(5, 1), &loads, 0, 2), 0);
        // …and spills (re-pinning on admission) once the queue fills.
        loads[0].1.queued = 2;
        assert_eq!(balancer.place(&request(5, 2), &loads, 0, 2), 1);
        balancer.note_admitted(5, 1);
        assert_eq!(balancer.place(&request(5, 0), &loads, 0, 2), 1);
    }

    #[test]
    fn affinity_re_places_when_the_pinned_shard_leaves_the_candidate_set() {
        // A session pinned to a shard that failed (or is draining) no
        // longer finds it among the placeable candidates and falls back to
        // the least-loaded survivor.
        let mut balancer = Balancer::new(LoadBalancerKind::AffinityFirst);
        balancer.note_admitted(3, 0);
        let survivors = vec![(
            1,
            ShardLoad {
                queued: 1,
                free_at_us: 5_000,
                backlog_us: 4_000,
            },
        )];
        assert_eq!(balancer.place(&request(3, 0), &survivors, 0, 16), 1);
    }

    #[test]
    fn uniform_fleets_clamp_to_at_least_one_shard() {
        let config = FleetConfig::uniform(test_model(), 0);
        assert_eq!(config.shard_count(), 1);
        assert_eq!(config.branch_count(), 3);
        assert_eq!(config.balancer, LoadBalancerKind::RoundRobin);
        let fleet =
            FleetConfig::uniform(test_model(), 4).with_balancer(LoadBalancerKind::AffinityFirst);
        assert_eq!(fleet.shard_count(), 4);
        assert_eq!(fleet.balancer.name(), "affinity");
    }

    #[test]
    #[should_panic(expected = "same branch structure")]
    fn heterogeneous_fleets_reject_mismatched_branch_counts() {
        let mut small = test_model();
        small.branches.pop();
        FleetConfig::heterogeneous(vec![test_model(), small]);
    }

    #[test]
    #[should_panic(expected = "same branch structure")]
    fn heterogeneous_fleets_reject_mismatched_branch_names() {
        let mut renamed = test_model();
        renamed.branches[1].name = "warp".into();
        FleetConfig::heterogeneous(vec![test_model(), renamed]);
    }

    #[test]
    #[should_panic(expected = "same branch structure")]
    fn heterogeneous_fleets_reject_mismatched_priorities() {
        // The report quotes one priority per branch row, so per-shard
        // priority skew would misreport half the fleet.
        let mut skewed = test_model();
        skewed.branches[2].priority = 0.9;
        FleetConfig::heterogeneous(vec![test_model(), skewed]);
    }

    #[test]
    fn heterogeneous_fleets_accept_same_structure_at_different_speeds() {
        let mut slow = test_model();
        for branch in &mut slow.branches {
            branch.frame_time_us *= 3;
        }
        let config = FleetConfig::heterogeneous(vec![test_model(), slow]);
        assert_eq!(config.shard_count(), 2);
    }
}
