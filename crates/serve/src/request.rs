//! Decode requests: the unit of work the serving simulator schedules.

use serde::{Deserialize, Serialize};

/// One branch-decode request: "produce the next frame of branch `branch` for
/// avatar session `session`".
///
/// A telepresence session needs every branch output (geometry, texture,
/// warp field, …) each avatar frame, so the generators emit one request per
/// branch per session frame; the scheduler is then free to reorder or batch
/// them across sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Globally unique, assigned in arrival order (ties broken by session
    /// then branch, so ids are deterministic for a given scenario).
    pub id: u64,
    /// Avatar session the request belongs to.
    pub session: usize,
    /// Branch whose output is requested.
    pub branch: usize,
    /// Arrival time, microseconds since simulation start.
    pub issued_at_us: u64,
}

impl Request {
    /// Latency of this request if it completes at `done_us`, in
    /// microseconds.
    pub fn latency_us(&self, done_us: u64) -> u64 {
        done_us.saturating_sub(self.issued_at_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_completion_minus_arrival() {
        let r = Request {
            id: 0,
            session: 0,
            branch: 1,
            issued_at_us: 1_000,
        };
        assert_eq!(r.latency_us(3_500), 2_500);
        // Completion can never precede arrival; saturate rather than wrap.
        assert_eq!(r.latency_us(500), 0);
    }
}
