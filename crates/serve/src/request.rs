//! Decode requests: the unit of work the serving simulator schedules.

use crate::qos::QosClass;
use serde::{Deserialize, Serialize};

/// One branch-decode request: "produce the next frame of branch `branch` for
/// avatar session `session`".
///
/// A telepresence session needs every branch output (geometry, texture,
/// warp field, …) each avatar frame, so the generators emit one request per
/// branch per session frame; the scheduler is then free to reorder or batch
/// them across sessions. Every request carries its session's QoS class —
/// the class is a per-session property (assigned by the scenario's seeded
/// class mix), stamped on each request so schedulers and admission
/// controllers can read it without a session table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Globally unique, assigned in arrival order (ties broken by session
    /// then branch, so ids are deterministic for a given scenario).
    pub id: u64,
    /// Avatar session the request belongs to.
    pub session: usize,
    /// Branch whose output is requested.
    pub branch: usize,
    /// Arrival time, microseconds since simulation start.
    pub issued_at_us: u64,
    /// The session's QoS class (latency budget + scheduling weight);
    /// `Standard` on the legacy classless path.
    pub class: QosClass,
}

impl Request {
    /// Latency of this request if it completes at `done_us`, in
    /// microseconds.
    #[inline]
    pub fn latency_us(&self, done_us: u64) -> u64 {
        done_us.saturating_sub(self.issued_at_us)
    }

    /// Builds the trace event describing what happened to this request at
    /// `at_us` — the one place a `Request` is flattened into the
    /// observability key `(id, session, branch, class, shard)`.
    pub(crate) fn trace(
        &self,
        at_us: u64,
        shard: Option<usize>,
        kind: fcad_obs::RequestEventKind,
    ) -> fcad_obs::TraceEvent {
        fcad_obs::TraceEvent::Request(fcad_obs::RequestEvent {
            at_us,
            id: self.id,
            session: self.session,
            branch: self.branch,
            class: self.class.index(),
            class_name: self.class.name(),
            shard,
            kind,
        })
    }

    /// Whether completing at `done_us` meets this request's class budget.
    #[inline]
    pub fn meets_slo(&self, done_us: u64) -> bool {
        self.latency_us(done_us) <= self.class.budget_us()
    }

    /// The absolute instant this request's class budget runs out:
    /// `issued_at_us + budget_us`, saturating. Completing at exactly the
    /// deadline still meets the SLO; one microsecond later misses it.
    #[inline]
    pub fn deadline_us(&self) -> u64 {
        self.issued_at_us.saturating_add(self.class.budget_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_completion_minus_arrival() {
        let r = Request {
            id: 0,
            session: 0,
            branch: 1,
            issued_at_us: 1_000,
            class: QosClass::Standard,
        };
        assert_eq!(r.latency_us(3_500), 2_500);
        // Completion can never precede arrival; saturate rather than wrap.
        assert_eq!(r.latency_us(500), 0);
    }

    #[test]
    fn deadline_is_arrival_plus_budget_and_agrees_with_meets_slo() {
        let r = Request {
            id: 0,
            session: 0,
            branch: 0,
            issued_at_us: 2_000,
            class: QosClass::Interactive,
        };
        assert_eq!(r.deadline_us(), 102_000);
        assert!(r.meets_slo(r.deadline_us()));
        assert!(!r.meets_slo(r.deadline_us() + 1));
        // The deadline saturates instead of wrapping for late arrivals.
        let late = Request {
            issued_at_us: u64::MAX - 10,
            ..r
        };
        assert_eq!(late.deadline_us(), u64::MAX);
    }

    #[test]
    fn slo_is_judged_against_the_class_budget() {
        let mut r = Request {
            id: 0,
            session: 0,
            branch: 0,
            issued_at_us: 0,
            class: QosClass::Interactive,
        };
        assert!(r.meets_slo(100_000)); // exactly on budget counts
        assert!(!r.meets_slo(100_001));
        r.class = QosClass::BestEffort;
        assert!(r.meets_slo(100_001)); // loose tier, same latency
    }
}
