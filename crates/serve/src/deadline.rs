//! Queue-time expiry policy: what the engine does with a request whose
//! class deadline has already passed while it sat in a shard queue.
//!
//! Admission can only reject work whose *projected* wait misses the
//! budget; once admitted, the legacy engine serves every queued request
//! unconditionally — even a frame that expired in the queue, which burns
//! fabric time on output no client can render. [`DeadlinePolicy`] makes
//! that choice explicit: the default [`Off`](DeadlinePolicy::Off) keeps
//! every legacy entry point byte-identical, while
//! [`CullExpired`](DeadlinePolicy::CullExpired) retires already-expired
//! requests at dispatch time as the fifth terminal outcome `expired`
//! (distinct from `shed`, which rejects *before* the queue), preserving
//! the conservation identity
//! `completed + dropped + lost + shed + expired == issued`.

/// What to do with a queued request whose deadline has already passed
/// when the fabric frees to serve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePolicy {
    /// Serve every queued request regardless of its deadline — the legacy
    /// behaviour, byte-identical to every pre-deadline entry point.
    #[default]
    Off,
    /// At dispatch time, retire queued requests whose deadline has
    /// already passed (`now > issued_at + budget`) without serving them;
    /// they are counted `expired`, and the fabric moves straight on to
    /// work that can still meet its SLO.
    CullExpired,
}

impl DeadlinePolicy {
    /// All policies, for grids and comparisons.
    pub fn all() -> &'static [DeadlinePolicy] {
        &[DeadlinePolicy::Off, DeadlinePolicy::CullExpired]
    }

    /// Policy name (used in logs and benches).
    pub fn name(&self) -> &'static str {
        match self {
            DeadlinePolicy::Off => "off",
            DeadlinePolicy::CullExpired => "cull_expired",
        }
    }

    /// Whether dispatch should cull already-expired queued requests.
    #[inline]
    pub fn culls(&self) -> bool {
        matches!(self, DeadlinePolicy::CullExpired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_culls_nothing() {
        assert_eq!(DeadlinePolicy::default(), DeadlinePolicy::Off);
        assert!(!DeadlinePolicy::Off.culls());
        assert!(DeadlinePolicy::CullExpired.culls());
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = DeadlinePolicy::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["off", "cull_expired"]);
    }
}
