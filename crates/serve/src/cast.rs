//! Checked numeric conversions for the serve crate.
//!
//! `fcad-lint`'s lossy-cast rule bans bare `as` casts everywhere in
//! `crates/serve`: the report paths promise bit-identical output for a
//! fixed seed, and a silently rounding `u64 → f64` (exact only below 2^53)
//! or a truncating `f64 → u64` is exactly the kind of hazard that survives
//! review. Every conversion instead goes through these helpers, which
//! concentrate the unavoidable casts in one audited module and
//! `debug_assert!` the precondition that makes each one lossless — zero
//! release cost, loud failure in every debug test run.

/// Largest integer magnitude `f64` represents exactly (2^53).
const F64_EXACT: u64 = 1 << 53;

/// [`F64_EXACT`] as a float, spelled out so no cast is needed.
const F64_EXACT_F: f64 = 9_007_199_254_740_992.0;

/// `u64 → f64`, exact: counters, microsecond timestamps and busy-time sums
/// in this crate stay far below 2^53 (≈ 285 years in µs).
pub(crate) fn u64_to_f64(v: u64) -> f64 {
    debug_assert!(v <= F64_EXACT, "u64→f64 would round: {v} > 2^53");
    v as f64 // fcad-lint: allow(lossy-cast): asserted ≤ 2^53, exact in f64
}

/// `usize → f64`, exact (via [`u64_to_f64`]).
pub(crate) fn usize_to_f64(v: usize) -> f64 {
    u64_to_f64(usize_to_u64(v))
}

/// `usize → u64`: widening on every supported target (usize ≤ 64 bits).
pub(crate) fn usize_to_u64(v: usize) -> u64 {
    v as u64 // fcad-lint: allow(lossy-cast): usize is at most 64 bits on all supported targets
}

/// `u64 → usize`: asserts the value fits (trivially true on 64-bit
/// targets; loud on a hypothetical 32-bit port instead of silent wrap).
pub(crate) fn u64_to_usize(v: u64) -> usize {
    debug_assert!(
        usize::try_from(v).is_ok(),
        "u64→usize would truncate: {v} > usize::MAX"
    );
    v as usize // fcad-lint: allow(lossy-cast): asserted to fit usize above
}

/// `f64 → u64` by truncation toward zero: asserts the value is finite,
/// non-negative and exactly representable territory (≤ 2^53). Callers
/// apply their own `ceil` / `round` / `max` *before* converting, so the
/// truncation itself never discards anything they meant to keep.
pub(crate) fn f64_to_u64(v: f64) -> u64 {
    debug_assert!(
        v.is_finite() && (0.0..=F64_EXACT_F).contains(&v),
        "f64→u64 would saturate or truncate: {v}"
    );
    v as u64 // fcad-lint: allow(lossy-cast): asserted finite, non-negative, ≤ 2^53 above
}

/// `f64 → usize` by truncation toward zero (via [`f64_to_u64`]).
pub(crate) fn f64_to_usize(v: f64) -> usize {
    u64_to_usize(f64_to_u64(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_exact_in_the_asserted_range() {
        for v in [0u64, 1, 999, 1 << 52, F64_EXACT] {
            assert_eq!(f64_to_u64(u64_to_f64(v)), v);
        }
        assert_eq!(usize_to_u64(usize::MIN), 0);
        assert_eq!(u64_to_usize(42), 42);
        assert_eq!(f64_to_usize(3.9), 3, "truncation toward zero");
    }

    #[test]
    #[should_panic(expected = "u64→f64 would round")]
    #[cfg(debug_assertions)]
    fn u64_beyond_2_53_is_caught_in_debug() {
        u64_to_f64(F64_EXACT + 1);
    }

    #[test]
    #[should_panic(expected = "f64→u64 would saturate")]
    #[cfg(debug_assertions)]
    fn negative_float_is_caught_in_debug() {
        f64_to_u64(-1.0);
    }

    #[test]
    #[should_panic(expected = "f64→u64 would saturate")]
    #[cfg(debug_assertions)]
    fn nan_is_caught_in_debug() {
        f64_to_u64(f64::NAN);
    }
}
