//! The pre-rebuild serving engine, frozen as a differential baseline.
//!
//! PR 8 rebuilt the hot path of the discrete-event loop (indexed event
//! calendar, heap-backed ready queues, pre-resolved service costs,
//! parallel shard execution). This module keeps the *previous*
//! implementation alive, verbatim: the linear event scan over shards, the
//! `Vec`-of-FIFOs schedulers rescanned per dispatch, and the per-arrival
//! `batch_service_us` calls. It exists for one purpose — the equivalence
//! battery in `tests/engine_equivalence.rs` asserts that for every
//! scheduler × balancer × scenario grid cell the rebuilt engine's
//! [`ServeReport`] JSON line (and its [`Recorder`](fcad_obs::Recorder)
//! trace stream) is **byte-identical** to this module's output.
//!
//! Nothing here is a template for new code: it is deliberately slow and
//! deliberately frozen. Fix bugs in the live engine; only touch this file
//! if a bug predates the rebuild and the fix must land on both sides to
//! keep the battery meaningful.

use std::collections::VecDeque;

use fcad_obs::{BatchEvent, FleetEvent, Off, RequestEventKind, TraceEvent, TraceSink};

use crate::admission::{admit_traced, AdmissionController, AdmissionKind, AdmissionView};
use crate::autoscale::{
    Autoscaler, FailurePlan, KillTarget, ScaleEvent, ScaleEventKind, ShardState,
};
use crate::cast::{f64_to_usize, u64_to_f64, u64_to_usize, usize_to_f64, usize_to_u64};
use crate::fleet::{Balancer, FleetConfig, ShardLoad};
use crate::histogram::LatencyHistogram;
use crate::model::ServiceModel;
use crate::qos::{QosClass, CLASS_COUNT};
use crate::report::{BranchServeStats, ClassServeStats, LatencySummary, ServeReport, ShardStats};
use crate::request::Request;
use crate::scenario::Scenario;
use crate::scheduler::{Scheduler, SchedulerKind};

const P99_WINDOW: usize = 64;
const P99_MIN_SAMPLES: usize = 16;

/// Reference counterpart of [`crate::simulate_fleet`]: the frozen loop
/// with frozen per-shard schedulers of `kind`.
pub fn simulate_fleet(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
) -> ServeReport {
    simulate_fleet_qos(config, scenario, kind, AdmissionKind::AdmitAll)
}

/// Reference counterpart of [`crate::simulate_fleet_qos`].
pub fn simulate_fleet_qos(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    admission: AdmissionKind,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| build(kind)).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        None,
        &Autoscaler::none(),
        &FailurePlan::none(),
        controller.as_mut(),
        &mut Off,
    )
}

/// Reference counterpart of [`crate::simulate_autoscaled_qos`].
pub fn simulate_autoscaled_qos(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| build(kind)).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        &mut Off,
    )
}

/// Reference counterpart of [`crate::simulate_traced`]: the frozen loop
/// narrating itself through `sink`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_traced(
    config: &FleetConfig,
    scenario: &Scenario,
    kind: SchedulerKind,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: AdmissionKind,
    sink: &mut dyn TraceSink,
) -> ServeReport {
    let schedulers: Vec<Box<dyn Scheduler>> =
        (0..config.shard_count()).map(|_| build(kind)).collect();
    let mut controller = admission.build();
    run(
        config,
        scenario,
        schedulers,
        Some(kind),
        policy,
        failures,
        controller.as_mut(),
        sink,
    )
}

/// Instantiates the frozen (pre-rebuild) implementation of a discipline.
pub fn build(kind: SchedulerKind) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
        SchedulerKind::PriorityByBranch => Box::new(PriorityScheduler::new()),
        SchedulerKind::BatchAggregating => Box::new(BatchScheduler::new()),
        SchedulerKind::Deadline => Box::new(DeadlineScheduler::new()),
    }
}

// ---------------------------------------------------------------------------
// Frozen schedulers: the linear-rescan implementations the rebuilt
// heap-backed disciplines in `scheduler.rs` must match decision for
// decision.
// ---------------------------------------------------------------------------

/// Frozen strict-FIFO discipline (one global `VecDeque`).
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Request>,
}

impl FifoScheduler {
    /// Creates an empty frozen FIFO queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        self.queue.push_back(request);
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn next_batch(
        &mut self,
        _model: &ServiceModel,
        _now_us: u64,
        _branch_free_us: &[u64],
    ) -> Vec<Request> {
        self.queue.pop_front().into_iter().collect()
    }
}

/// Frozen weighted-priority discipline: every `next_batch` rescans every
/// `(branch, class)` queue head and recomputes its score from scratch.
#[derive(Debug)]
pub struct PriorityScheduler {
    queues: Vec<[VecDeque<Request>; CLASS_COUNT]>,
    queued: usize,
    aging_per_sec: f64,
}

impl Default for PriorityScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl PriorityScheduler {
    /// Creates the frozen discipline with the default 0.25/s aging rate.
    pub fn new() -> Self {
        Self {
            queues: Vec::new(),
            queued: 0,
            aging_per_sec: 0.25,
        }
    }

    /// Replaces the aging rate (score points gained per second of waiting).
    pub fn with_aging_per_sec(mut self, aging_per_sec: f64) -> Self {
        self.aging_per_sec = aging_per_sec;
        self
    }

    fn score(&self, branch: usize, head: &Request, model: &ServiceModel, now_us: u64) -> f64 {
        let wait_sec = u64_to_f64(head.latency_us(now_us)) / 1e6;
        head.class.weight() * model.priority(branch) + self.aging_per_sec * wait_sec
    }

    fn best_class(&self, branch: usize, model: &ServiceModel, now_us: u64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (class, queue) in self.queues[branch].iter().enumerate() {
            if let Some(head) = queue.front() {
                let score = self.score(branch, head, model, now_us);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((class, score));
                }
            }
        }
        best
    }
}

impl Scheduler for PriorityScheduler {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues
                .resize_with(request.branch + 1, Default::default);
        }
        self.queues[request.branch][request.class.index()].push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        let mut best_ready: Option<(usize, usize, f64)> = None;
        let mut best_busy: Option<(usize, u64)> = None;
        for branch in 0..self.queues.len() {
            let Some((class, score)) = self.best_class(branch, model, now_us) else {
                continue;
            };
            let free_at = branch_free_us.get(branch).copied().unwrap_or(0);
            if free_at <= now_us {
                if best_ready.is_none_or(|(_, _, s)| score > s) {
                    best_ready = Some((branch, class, score));
                }
            } else if best_busy.is_none_or(|(_, f)| free_at < f) {
                best_busy = Some((branch, free_at));
            }
        }
        let pick = best_ready.map(|(b, c, _)| (b, c)).or_else(|| {
            best_busy.and_then(|(branch, _)| {
                self.best_class(branch, model, now_us)
                    .map(|(class, _)| (branch, class))
            })
        });
        match pick {
            Some((branch, class)) => {
                self.queued -= 1;
                self.queues[branch][class].pop_front().into_iter().collect()
            }
            None => Vec::new(),
        }
    }
}

/// Frozen batch-aggregating discipline: every `next_batch` rescans every
/// branch queue head for the oldest.
#[derive(Debug, Default)]
pub struct BatchScheduler {
    queues: Vec<VecDeque<Request>>,
    queued: usize,
}

impl BatchScheduler {
    /// Creates the frozen discipline with empty per-branch queues.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BatchScheduler {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues.resize_with(request.branch + 1, VecDeque::new);
        }
        self.queues[request.branch].push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        let candidate = |ready: bool| {
            self.queues
                .iter()
                .enumerate()
                .filter(|(branch, _)| {
                    (branch_free_us.get(*branch).copied().unwrap_or(0) <= now_us) == ready
                })
                .filter_map(|(branch, queue)| queue.front().map(|head| (head.issued_at_us, branch)))
                .min()
        };
        let oldest = candidate(true).or_else(|| candidate(false));
        match oldest {
            Some((_, branch)) => {
                let take = model.max_batch(branch).min(self.queues[branch].len());
                let batch: Vec<Request> = self.queues[branch].drain(..take).collect();
                self.queued -= batch.len();
                batch
            }
            None => Vec::new(),
        }
    }
}

/// Frozen earliest-deadline-first discipline: every `next_batch` rescans
/// every `(branch, class)` queue head for the minimum
/// `(class, deadline, branch)` key. The heap-indexed
/// [`crate::DeadlineScheduler`] must match this rescan decision for
/// decision.
#[derive(Debug, Default)]
pub struct DeadlineScheduler {
    queues: Vec<[VecDeque<Request>; CLASS_COUNT]>,
    queued: usize,
}

impl DeadlineScheduler {
    /// Creates the frozen discipline with empty per-lane queues.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for DeadlineScheduler {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn enqueue(&mut self, request: Request, _now_us: u64) {
        if request.branch >= self.queues.len() {
            self.queues
                .resize_with(request.branch + 1, Default::default);
        }
        self.queues[request.branch][request.class.index()].push_back(request);
        self.queued += 1;
    }

    fn queued(&self) -> usize {
        self.queued
    }

    fn next_batch(
        &mut self,
        _model: &ServiceModel,
        now_us: u64,
        branch_free_us: &[u64],
    ) -> Vec<Request> {
        let candidate = |ready: bool| {
            self.queues
                .iter()
                .enumerate()
                .filter(|(branch, _)| {
                    (branch_free_us.get(*branch).copied().unwrap_or(0) <= now_us) == ready
                })
                .flat_map(|(branch, lanes)| {
                    lanes.iter().enumerate().filter_map(move |(class, queue)| {
                        queue
                            .front()
                            .map(|head| (class, head.deadline_us(), branch))
                    })
                })
                .min()
        };
        let tightest = candidate(true).or_else(|| candidate(false));
        match tightest {
            Some((class, _, branch)) => {
                self.queued -= 1;
                self.queues[branch][class].pop_front().into_iter().collect()
            }
            None => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// The frozen event loop: a verbatim copy of the pre-rebuild `engine::run`,
// with its O(shards)-per-event linear scans.
// ---------------------------------------------------------------------------

struct Lifecycle {
    at_us: u64,
    rank: u8,
    seq: u64,
    shard: usize,
    action: Action,
}

enum Action {
    Fail(KillTarget),
    Drain,
    Warm,
    IdleCheck,
}

impl Action {
    fn rank(&self) -> u8 {
        match self {
            Action::Fail(_) => 0,
            Action::Drain => 1,
            Action::Warm => 2,
            Action::IdleCheck => 3,
        }
    }
}

struct Shard<'a> {
    model: ServiceModel,
    scheduler: Box<dyn Scheduler + 'a>,
    phase: ShardState,
    free_at_us: u64,
    pending_since_us: u64,
    busy_us: u64,
    backlog_us: u64,
    class_backlog_us: [u64; CLASS_COUNT],
    max_priority: f64,
    issued: u64,
    completed: u64,
    dropped: u64,
    shed: u64,
    histogram: LatencyHistogram,
    idle_check_pending: bool,
}

impl<'a> Shard<'a> {
    fn new(model: ServiceModel, scheduler: Box<dyn Scheduler + 'a>, phase: ShardState) -> Self {
        let max_priority = model
            .branches
            .iter()
            .map(|b| b.priority)
            .fold(0.0, f64::max);
        Self {
            model,
            scheduler,
            phase,
            free_at_us: 0,
            pending_since_us: 0,
            busy_us: 0,
            backlog_us: 0,
            class_backlog_us: [0; CLASS_COUNT],
            max_priority,
            issued: 0,
            completed: 0,
            dropped: 0,
            shed: 0,
            histogram: LatencyHistogram::new(),
            idle_check_pending: false,
        }
    }

    fn admission_view(&self, capacity: usize, service_us: u64, branch: usize) -> AdmissionView {
        AdmissionView {
            queued: self.scheduler.queued(),
            capacity,
            free_at_us: self.free_at_us,
            class_backlog_us: self.class_backlog_us,
            service_us,
            priority: self.model.priority(branch),
            max_priority: self.max_priority,
        }
    }

    fn load(&self) -> ShardLoad {
        ShardLoad {
            queued: self.scheduler.queued(),
            free_at_us: self.free_at_us,
            backlog_us: self.backlog_us,
        }
    }

    fn dispatch_at(&self) -> u64 {
        self.free_at_us.max(self.pending_since_us)
    }
}

fn active_count(shards: &[Shard]) -> usize {
    shards
        .iter()
        .filter(|s| s.phase == ShardState::Active)
        .count()
}

fn alive_count(shards: &[Shard]) -> usize {
    shards.iter().filter(|s| s.phase.is_alive()).count()
}

#[allow(clippy::too_many_arguments)]
fn run<'a>(
    config: &FleetConfig,
    scenario: &Scenario,
    schedulers: Vec<Box<dyn Scheduler + 'a>>,
    spawn: Option<SchedulerKind>,
    policy: &Autoscaler,
    failures: &FailurePlan,
    admission: &mut dyn AdmissionController,
    sink: &mut dyn TraceSink,
) -> ServeReport {
    config.assert_valid();
    assert_eq!(
        schedulers.len(),
        config.shard_count(),
        "one scheduler per shard ({} shards, {} schedulers)",
        config.shard_count(),
        schedulers.len()
    );
    let branch_count = config.branch_count();
    let arrivals = scenario.generate(branch_count);
    let mut balancer = Balancer::new(config.balancer);
    let capacity = scenario.queue_capacity;
    let tracing = sink.enabled();

    let mut shards: Vec<Shard<'a>> = config
        .shards
        .iter()
        .zip(schedulers)
        .map(|(model, scheduler)| {
            let model = match &scenario.priorities {
                Some(priorities) => model.clone().with_priorities(priorities),
                None => model.clone(),
            };
            Shard::new(model, scheduler, ShardState::Active)
        })
        .collect();

    let mut issued = vec![0u64; branch_count];
    let mut completed = vec![0u64; branch_count];
    let mut dropped = vec![0u64; branch_count];
    let mut lost = vec![0u64; branch_count];
    let mut shed = vec![0u64; branch_count];
    let mut branch_histograms: Vec<LatencyHistogram> =
        (0..branch_count).map(|_| LatencyHistogram::new()).collect();
    let mut class_issued = [0u64; CLASS_COUNT];
    let mut class_completed = [0u64; CLASS_COUNT];
    let mut class_dropped = [0u64; CLASS_COUNT];
    let mut class_lost = [0u64; CLASS_COUNT];
    let mut class_shed = [0u64; CLASS_COUNT];
    let mut within_budget = [0u64; CLASS_COUNT];
    let mut class_histograms: [LatencyHistogram; CLASS_COUNT] =
        std::array::from_fn(|_| LatencyHistogram::new());
    for request in &arrivals {
        issued[request.branch] += 1;
        class_issued[request.class.index()] += 1;
    }

    let mut lifecycle: Vec<Lifecycle> = Vec::new();
    let mut seq = 0u64;
    let mut push_event = |queue: &mut Vec<Lifecycle>, at_us: u64, shard: usize, action: Action| {
        queue.push(Lifecycle {
            at_us,
            rank: action.rank(),
            seq,
            shard,
            action,
        });
        seq += 1;
    };
    for kill in failures.kills() {
        let shard = match kill.target {
            KillTarget::Shard(s) => s,
            KillTarget::Seeded(_) => usize::MAX, // resolved at fire time
        };
        push_event(&mut lifecycle, kill.at_us, shard, Action::Fail(kill.target));
    }
    for &(at_us, shard) in &policy.drains {
        push_event(&mut lifecycle, at_us, shard, Action::Drain);
    }
    if policy.idle_retire_us > 0 {
        for (index, shard) in shards.iter_mut().enumerate() {
            shard.idle_check_pending = true;
            push_event(
                &mut lifecycle,
                policy.idle_retire_us,
                index,
                Action::IdleCheck,
            );
        }
    }
    let split_us = failures.first_kill_us();
    let mut pre_failure = LatencyHistogram::new();
    let mut post_failure = LatencyHistogram::new();
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut replaced = 0u64;
    let mut last_scale_up: Option<u64> = None;
    let mut recent_latencies: VecDeque<u64> = VecDeque::with_capacity(P99_WINDOW);

    let mut next_arrival = 0;
    let mut loads: Vec<(usize, ShardLoad)> = Vec::with_capacity(shards.len());

    loop {
        let due_arrival = arrivals.get(next_arrival).copied();
        if due_arrival.is_none() && shards.iter().all(|s| s.scheduler.queued() == 0) {
            break;
        }
        let next_dispatch = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.phase.dispatches() && s.scheduler.queued() > 0)
            .map(|(index, s)| (s.dispatch_at(), index))
            .min();
        let next_life = lifecycle
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.at_us, e.rank, e.seq))
            .map(|(index, _)| index);
        let arrival_at = due_arrival.map_or(u64::MAX, |r| r.issued_at_us);
        let dispatch_at = next_dispatch.map_or(u64::MAX, |(t, _)| t);
        let life_at = next_life.map_or(u64::MAX, |i| lifecycle[i].at_us);
        if arrival_at == u64::MAX && dispatch_at == u64::MAX && life_at == u64::MAX {
            debug_assert!(false, "stranded queued work with no pending event");
            break;
        }

        if life_at <= arrival_at.min(dispatch_at) {
            let event = lifecycle.swap_remove(next_life.expect("life_at is finite"));
            let now_us = event.at_us;
            match event.action {
                Action::Fail(target) => {
                    let victim = match target {
                        KillTarget::Shard(s) if s < shards.len() && shards[s].phase.is_alive() => {
                            Some(s)
                        }
                        KillTarget::Shard(_) => None,
                        KillTarget::Seeded(hash) => {
                            let actives: Vec<usize> = (0..shards.len())
                                .filter(|&s| shards[s].phase == ShardState::Active)
                                .collect();
                            if actives.is_empty() {
                                None
                            } else {
                                Some(actives[u64_to_usize(hash % usize_to_u64(actives.len()))])
                            }
                        }
                    };
                    let Some(victim) = victim else { continue };
                    shards[victim].phase = ShardState::Failed;
                    record(
                        &mut scale_events,
                        &shards,
                        now_us,
                        ScaleEventKind::Fail,
                        victim,
                        sink,
                        tracing,
                    );
                    let mut orphans: Vec<Request> = Vec::new();
                    {
                        let dead = &mut shards[victim];
                        while dead.scheduler.queued() > 0 {
                            let batch = dead.scheduler.next_batch(&dead.model, now_us, &[]);
                            debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
                            orphans.extend(batch);
                        }
                        dead.backlog_us = 0;
                        dead.class_backlog_us = [0; CLASS_COUNT];
                        dead.pending_since_us = 0;
                        dead.issued -= usize_to_u64(orphans.len());
                    }
                    if let Some(kind) = spawn {
                        while alive_count(&shards) < policy.min_shards
                            && alive_count(&shards) < policy.max_shards
                        {
                            do_spawn(
                                now_us,
                                kind,
                                policy,
                                &mut shards,
                                &mut lifecycle,
                                &mut push_event,
                                &mut scale_events,
                                sink,
                                tracing,
                            );
                            last_scale_up = Some(now_us);
                        }
                    }
                    for request in orphans {
                        collect_placeable(&mut loads, &shards);
                        if loads.is_empty() {
                            lost[request.branch] += 1;
                            class_lost[request.class.index()] += 1;
                            if tracing {
                                sink.record(request.trace(
                                    now_us,
                                    None,
                                    RequestEventKind::Lost { orphaned: true },
                                ));
                            }
                            continue;
                        }
                        let dst = balancer.place(&request, &loads, now_us, capacity);
                        if shards[dst].scheduler.queued() >= capacity {
                            lost[request.branch] += 1;
                            class_lost[request.class.index()] += 1;
                            if tracing {
                                sink.record(request.trace(
                                    now_us,
                                    None,
                                    RequestEventKind::Lost { orphaned: true },
                                ));
                            }
                            continue;
                        }
                        let target = &mut shards[dst];
                        if target.scheduler.queued() == 0 {
                            target.pending_since_us = now_us;
                        }
                        if failures.repay_fill() && target.phase != ShardState::Warming {
                            let fill = target.model.branches[request.branch].fill_time_us;
                            target.free_at_us = target.free_at_us.max(now_us) + fill;
                            target.busy_us += fill;
                        }
                        let single_us = target.model.batch_service_us(request.branch, 1);
                        target.backlog_us += single_us;
                        target.class_backlog_us[request.class.index()] += single_us;
                        target.scheduler.enqueue(request, now_us);
                        balancer.note_admitted(request.session, dst);
                        target.issued += 1;
                        replaced += 1;
                        if tracing {
                            sink.record(request.trace(
                                now_us,
                                Some(dst),
                                RequestEventKind::Replace { from_shard: victim },
                            ));
                        }
                    }
                }
                Action::Drain => {
                    let shard = event.shard;
                    if shard >= shards.len() || shards[shard].phase != ShardState::Active {
                        continue;
                    }
                    let floor = policy.min_shards.max(1);
                    if active_count(&shards) <= floor {
                        continue;
                    }
                    shards[shard].phase = ShardState::Draining;
                    record(
                        &mut scale_events,
                        &shards,
                        now_us,
                        ScaleEventKind::Drain,
                        shard,
                        sink,
                        tracing,
                    );
                    if shards[shard].scheduler.queued() == 0 {
                        retire(&mut shards, &mut scale_events, now_us, shard, sink, tracing);
                    }
                }
                Action::Warm => {
                    let shard = event.shard;
                    if shards[shard].phase == ShardState::Warming {
                        shards[shard].phase = ShardState::Active;
                        shards[shard].free_at_us = shards[shard].free_at_us.max(now_us);
                        record(
                            &mut scale_events,
                            &shards,
                            now_us,
                            ScaleEventKind::Warm,
                            shard,
                            sink,
                            tracing,
                        );
                    }
                }
                Action::IdleCheck => {
                    let shard = event.shard;
                    if shard >= shards.len() {
                        continue;
                    }
                    shards[shard].idle_check_pending = false;
                    if shards[shard].phase != ShardState::Active
                        || shards[shard].scheduler.queued() > 0
                    {
                        continue;
                    }
                    if shards[shard].free_at_us + policy.idle_retire_us > now_us {
                        shards[shard].idle_check_pending = true;
                        push_event(
                            &mut lifecycle,
                            shards[shard].free_at_us + policy.idle_retire_us,
                            shard,
                            Action::IdleCheck,
                        );
                        continue;
                    }
                    let floor = policy.min_shards.max(1);
                    if active_count(&shards) <= floor {
                        continue;
                    }
                    retire(&mut shards, &mut scale_events, now_us, shard, sink, tracing);
                }
            }
        } else if arrival_at <= dispatch_at {
            let request = due_arrival.expect("arrival_at is finite");
            next_arrival += 1;
            let now_us = request.issued_at_us;
            collect_placeable(&mut loads, &shards);
            if loads.is_empty() {
                lost[request.branch] += 1;
                class_lost[request.class.index()] += 1;
                if tracing {
                    sink.record(request.trace(now_us, None, RequestEventKind::Arrival));
                    sink.record(request.trace(
                        now_us,
                        None,
                        RequestEventKind::Lost { orphaned: false },
                    ));
                }
                continue;
            }
            let shard = balancer.place_traced(&request, &loads, now_us, capacity, sink, tracing);
            let target = &mut shards[shard];
            target.issued += 1;
            let single_us = target.model.batch_service_us(request.branch, 1);
            let view = target.admission_view(capacity, single_us, request.branch);
            if !admit_traced(admission, &request, &view, now_us, shard, sink, tracing) {
                shed[request.branch] += 1;
                class_shed[request.class.index()] += 1;
                target.shed += 1;
            } else if target.scheduler.queued() >= capacity {
                dropped[request.branch] += 1;
                class_dropped[request.class.index()] += 1;
                target.dropped += 1;
                if tracing {
                    sink.record(request.trace(now_us, Some(shard), RequestEventKind::Drop));
                }
            } else {
                if target.scheduler.queued() == 0 {
                    target.pending_since_us = now_us;
                }
                target.backlog_us += single_us;
                target.class_backlog_us[request.class.index()] += single_us;
                target.scheduler.enqueue(request, now_us);
                balancer.note_admitted(request.session, shard);
                if tracing {
                    sink.record(request.trace(now_us, Some(shard), RequestEventKind::Enqueue));
                }
            }
            if let Some(kind) = spawn.filter(|_| policy.scale_up_queue_depth > 0) {
                let actives = active_count(&shards);
                let queued: usize = shards
                    .iter()
                    .filter(|s| s.phase == ShardState::Active)
                    .map(|s| s.scheduler.queued())
                    .sum();
                if actives > 0
                    && queued >= policy.scale_up_queue_depth * actives
                    && alive_count(&shards) < policy.max_shards
                    && last_scale_up.is_none_or(|t| now_us >= t.saturating_add(policy.cooldown_us))
                {
                    do_spawn(
                        now_us,
                        kind,
                        policy,
                        &mut shards,
                        &mut lifecycle,
                        &mut push_event,
                        &mut scale_events,
                        sink,
                        tracing,
                    );
                    last_scale_up = Some(now_us);
                }
            }
        } else {
            let (now_us, shard) = next_dispatch.expect("dispatch_at is finite");
            let (batch, service_us, done_us) = {
                let s = &mut shards[shard];
                let batch = s.scheduler.next_batch(&s.model, now_us, &[]);
                debug_assert!(!batch.is_empty(), "scheduler returned an empty batch");
                let branch = batch[0].branch;
                debug_assert!(batch.iter().all(|r| r.branch == branch));
                let service_us = s.model.batch_service_us(branch, batch.len());
                (batch, service_us, now_us + service_us)
            };
            shards[shard].busy_us += service_us;
            if tracing {
                sink.record(TraceEvent::Batch(BatchEvent {
                    at_us: now_us,
                    shard,
                    branch: batch[0].branch,
                    len: batch.len(),
                    service_us,
                }));
            }
            for request in &batch {
                let latency_us = request.latency_us(done_us);
                if tracing {
                    sink.record(request.trace(now_us, Some(shard), RequestEventKind::ServiceStart));
                    sink.record(request.trace(
                        done_us,
                        Some(shard),
                        RequestEventKind::Complete { latency_us },
                    ));
                }
                branch_histograms[request.branch].record(latency_us);
                completed[request.branch] += 1;
                let class = request.class.index();
                class_histograms[class].record(latency_us);
                class_completed[class] += 1;
                if request.meets_slo(done_us) {
                    within_budget[class] += 1;
                }
                let s = &mut shards[shard];
                s.histogram.record(latency_us);
                s.completed += 1;
                let single_us = s.model.batch_service_us(request.branch, 1);
                s.backlog_us = s.backlog_us.saturating_sub(single_us);
                s.class_backlog_us[class] = s.class_backlog_us[class].saturating_sub(single_us);
                if let Some(split) = split_us {
                    if done_us < split {
                        pre_failure.record(latency_us);
                    } else {
                        post_failure.record(latency_us);
                    }
                }
                if spawn.is_some() && policy.scale_up_p99_ms > 0.0 {
                    if recent_latencies.len() == P99_WINDOW {
                        recent_latencies.pop_front();
                    }
                    recent_latencies.push_back(latency_us);
                }
            }
            shards[shard].free_at_us = done_us;
            shards[shard].pending_since_us = 0;
            if shards[shard].phase == ShardState::Draining && shards[shard].scheduler.queued() == 0
            {
                retire(
                    &mut shards,
                    &mut scale_events,
                    done_us,
                    shard,
                    sink,
                    tracing,
                );
            } else if shards[shard].phase == ShardState::Active
                && shards[shard].scheduler.queued() == 0
                && policy.idle_retire_us > 0
                && !shards[shard].idle_check_pending
            {
                shards[shard].idle_check_pending = true;
                push_event(
                    &mut lifecycle,
                    done_us + policy.idle_retire_us,
                    shard,
                    Action::IdleCheck,
                );
            }
            if let Some(kind) = spawn.filter(|_| {
                policy.scale_up_p99_ms > 0.0
                    && recent_latencies.len() >= P99_MIN_SAMPLES
                    && alive_count(&shards) < policy.max_shards
                    && last_scale_up.is_none_or(|t| done_us >= t.saturating_add(policy.cooldown_us))
            }) {
                let mut window: Vec<u64> = recent_latencies.iter().copied().collect();
                window.sort_unstable();
                let rank =
                    f64_to_usize((usize_to_f64(window.len()) * 0.99).ceil()).clamp(1, window.len());
                let p99_ms = u64_to_f64(window[rank - 1]) / 1_000.0;
                if p99_ms >= policy.scale_up_p99_ms {
                    do_spawn(
                        done_us,
                        kind,
                        policy,
                        &mut shards,
                        &mut lifecycle,
                        &mut push_event,
                        &mut scale_events,
                        sink,
                        tracing,
                    );
                    last_scale_up = Some(done_us);
                }
            }
        }
    }

    scale_events.sort_by(|a, b| a.at_sec.total_cmp(&b.at_sec));

    let shard_count = shards.len();
    let total_issued: u64 = issued.iter().sum();
    let total_completed: u64 = completed.iter().sum();
    let total_dropped: u64 = dropped.iter().sum();
    let total_lost: u64 = lost.iter().sum();
    let total_shed: u64 = shed.iter().sum();
    let total_within: u64 = within_budget.iter().sum();
    let total_busy_us: u64 = shards.iter().map(|s| s.busy_us).sum();
    debug_assert_eq!(
        total_completed + total_dropped + total_lost + total_shed,
        total_issued,
        "fleet-wide request conservation violated"
    );
    for index in 0..issued.len() {
        debug_assert_eq!(
            completed[index] + dropped[index] + lost[index] + shed[index],
            issued[index],
            "branch {index} request conservation violated"
        );
    }
    for index in 0..class_issued.len() {
        debug_assert_eq!(
            class_completed[index] + class_dropped[index] + class_lost[index] + class_shed[index],
            class_issued[index],
            "class {index} request conservation violated"
        );
    }
    for (index, s) in shards.iter().enumerate() {
        debug_assert_eq!(
            s.completed + s.dropped + s.shed,
            s.issued,
            "shard {index} request conservation violated"
        );
    }
    let makespan_us = shards.iter().map(|s| s.free_at_us).max().unwrap_or(0);
    let makespan_sec = u64_to_f64(makespan_us) / 1e6;
    let mut overall = LatencyHistogram::new();
    for shard in &shards {
        overall.merge(&shard.histogram);
    }
    let branches = shards[0]
        .model
        .branches
        .iter()
        .enumerate()
        .map(|(index, service)| BranchServeStats {
            name: service.name.clone(),
            priority: service.priority,
            issued: issued[index],
            completed: completed[index],
            dropped: dropped[index],
            lost: lost[index],
            shed: shed[index],
            expired: 0,
            latency: LatencySummary::of(&branch_histograms[index]),
        })
        .collect();
    let classes: Vec<ClassServeStats> = QosClass::all()
        .iter()
        .map(|class| {
            let index = class.index();
            ClassServeStats {
                class: *class,
                budget_ms: class.budget_ms(),
                weight: class.weight(),
                issued: class_issued[index],
                completed: class_completed[index],
                dropped: class_dropped[index],
                lost: class_lost[index],
                shed: class_shed[index],
                expired: 0,
                slo_attainment: attainment(
                    within_budget[index],
                    class_completed[index],
                    class_issued[index],
                ),
                latency: LatencySummary::of(&class_histograms[index]),
            }
        })
        .collect();
    let shard_stats: Vec<ShardStats> = shards
        .iter()
        .map(|s| ShardStats {
            issued: s.issued,
            completed: s.completed,
            dropped: s.dropped,
            shed: s.shed,
            expired: 0,
            state: s.phase,
            utilization: if makespan_us > 0 {
                u64_to_f64(s.busy_us) / u64_to_f64(makespan_us)
            } else {
                0.0
            },
            latency: LatencySummary::of(&s.histogram),
        })
        .collect();
    let imbalance = {
        let max = shards.iter().map(|s| s.busy_us).max().unwrap_or(0);
        let min = shards.iter().map(|s| s.busy_us).min().unwrap_or(0);
        let mean = u64_to_f64(total_busy_us) / usize_to_f64(shard_count);
        if mean > 0.0 {
            u64_to_f64(max - min) / mean
        } else {
            0.0
        }
    };
    let slo_attainment = attainment(total_within, total_completed, total_issued);
    let slo_per_busy_sec = if total_busy_us > 0 {
        slo_attainment / (u64_to_f64(total_busy_us) / 1e6)
    } else {
        0.0
    };
    let scheduler_name = if shards
        .iter()
        .all(|s| s.scheduler.name() == shards[0].scheduler.name())
    {
        shards[0].scheduler.name()
    } else {
        "mixed"
    };
    ServeReport {
        scenario: scenario.name.clone(),
        scheduler: scheduler_name.to_owned(),
        balancer: config.balancer.name().to_owned(),
        seed: scenario.seed,
        sessions: scenario.sessions,
        issued: total_issued,
        completed: total_completed,
        dropped: total_dropped,
        drop_rate: if total_issued == 0 {
            0.0
        } else {
            u64_to_f64(total_dropped) / u64_to_f64(total_issued)
        },
        makespan_sec,
        throughput_rps: if makespan_sec > 0.0 {
            u64_to_f64(total_completed) / makespan_sec
        } else {
            0.0
        },
        utilization: if makespan_us > 0 {
            u64_to_f64(total_busy_us) / u64_to_f64(usize_to_u64(shard_count) * makespan_us)
        } else {
            0.0
        },
        imbalance,
        latency: LatencySummary::of(&overall),
        branches,
        shards: shard_stats,
        replaced,
        lost: total_lost,
        availability: if total_issued == 0 {
            1.0
        } else {
            u64_to_f64(total_completed) / u64_to_f64(total_issued)
        },
        latency_pre_failure: LatencySummary::of(&pre_failure),
        latency_post_failure: LatencySummary::of(&post_failure),
        scale_events,
        shed: total_shed,
        admission: admission.name().to_owned(),
        slo_attainment,
        classes,
        expired: 0,
        fabric_busy_us: total_busy_us,
        slo_per_busy_sec,
        trace_summary: None,
    }
}

/// Attainment over completions, with issued traffic deciding the vacuous
/// case: a class (or run) that issued nothing scores 1.0 — there was no
/// SLO to miss — while one that issued traffic but completed nothing
/// scores 0.0 (every request missed its budget by never finishing).
fn attainment(within: u64, completed: u64, issued: u64) -> f64 {
    if issued == 0 {
        1.0
    } else if completed == 0 {
        0.0
    } else {
        u64_to_f64(within) / u64_to_f64(completed)
    }
}

fn collect_placeable(loads: &mut Vec<(usize, ShardLoad)>, shards: &[Shard]) {
    for wanted in [ShardState::Active, ShardState::Warming] {
        loads.clear();
        loads.extend(
            shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.phase == wanted)
                .map(|(index, s)| (index, s.load())),
        );
        if !loads.is_empty() {
            return;
        }
    }
}

fn retire(
    shards: &mut [Shard],
    events: &mut Vec<ScaleEvent>,
    at_us: u64,
    shard: usize,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    shards[shard].phase = ShardState::Retired;
    record(
        events,
        shards,
        at_us,
        ScaleEventKind::Retire,
        shard,
        sink,
        tracing,
    );
}

#[allow(clippy::too_many_arguments)]
fn record(
    events: &mut Vec<ScaleEvent>,
    shards: &[Shard],
    at_us: u64,
    kind: ScaleEventKind,
    shard: usize,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    let active_after = active_count(shards);
    events.push(ScaleEvent {
        at_sec: u64_to_f64(at_us) / 1e6,
        kind,
        shard,
        active_after,
    });
    if tracing {
        sink.record(TraceEvent::Fleet(FleetEvent {
            at_us,
            shard,
            kind: kind.fleet_kind(),
            active_after,
        }));
    }
}

#[allow(clippy::too_many_arguments)]
fn do_spawn<'a>(
    now_us: u64,
    kind: SchedulerKind,
    policy: &Autoscaler,
    shards: &mut Vec<Shard<'a>>,
    lifecycle: &mut Vec<Lifecycle>,
    push_event: &mut impl FnMut(&mut Vec<Lifecycle>, u64, usize, Action),
    scale_events: &mut Vec<ScaleEvent>,
    sink: &mut dyn TraceSink,
    tracing: bool,
) {
    let shard = shards.len();
    let template = shards[0].model.clone();
    shards.push(Shard::new(template, build(kind), ShardState::Warming));
    push_event(lifecycle, now_us + policy.warmup_us, shard, Action::Warm);
    if policy.idle_retire_us > 0 {
        shards[shard].idle_check_pending = true;
        push_event(
            lifecycle,
            now_us + policy.warmup_us + policy.idle_retire_us,
            shard,
            Action::IdleCheck,
        );
    }
    record(
        scale_events,
        shards,
        now_us,
        ScaleEventKind::Up,
        shard,
        sink,
        tracing,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::LoadBalancerKind;
    use crate::model::test_model;

    /// The frozen loop must still satisfy the engine's core invariants on
    /// its own (the equivalence battery then pins it against the rebuilt
    /// engine byte for byte).
    #[test]
    fn frozen_engine_conserves_requests_on_the_suite() {
        let model = test_model();
        for scenario in Scenario::suite() {
            for &kind in SchedulerKind::all() {
                let config = FleetConfig::uniform(model.clone(), 2)
                    .with_balancer(LoadBalancerKind::LeastLoaded);
                let report = simulate_fleet(&config, &scenario, kind);
                assert!(report.conserves_requests(), "{}", scenario.name);
                assert!(report.latency.p99_ms >= report.latency.p50_ms);
            }
        }
    }

    #[test]
    fn frozen_build_names_match_the_live_disciplines() {
        for &kind in SchedulerKind::all() {
            assert_eq!(build(kind).name(), kind.build().name());
        }
    }
}
