//! Injectable elapsed-time measurement for DSE runs.
//!
//! `DseResult::elapsed_seconds` used to be read straight from
//! `Instant::now()` inside `DseEngine::explore`, which leaked wall-clock
//! time into an otherwise fully seeded result: two runs with the same seed
//! produced byte-different `DseResult`s. The timer is now injected — off by
//! default, so fixed-seed DSE output is byte-stable run-over-run — and
//! interactive callers (the `reproduce` binary) opt into wall-clock
//! measurement explicitly.

use std::time::Instant;

/// How [`crate::DseEngine`] measures an exploration's duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ElapsedTimer {
    /// Report `elapsed_seconds = 0.0`. The default: results depend only on
    /// the seed, so fixed-seed runs are byte-identical.
    #[default]
    Off,
    /// Measure real wall-clock time with [`Instant`]. For interactive use
    /// (CLI tables, convergence studies); never in golden-tested paths.
    WallClock,
}

impl ElapsedTimer {
    /// Starts a measurement.
    pub fn start(self) -> RunningTimer {
        RunningTimer {
            started: match self {
                ElapsedTimer::Off => None,
                // fcad-lint: allow(wall-clock): the one sanctioned clock read — opt-in, default Off, excluded from deterministic result paths
                ElapsedTimer::WallClock => Some(Instant::now()),
            },
        }
    }
}

/// An in-flight measurement started by [`ElapsedTimer::start`].
#[derive(Debug, Clone, Copy)]
pub struct RunningTimer {
    started: Option<Instant>,
}

impl RunningTimer {
    /// Seconds since [`ElapsedTimer::start`] — 0.0 when the timer is off.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.map_or(0.0, |t| t.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_timer_reports_exactly_zero() {
        let timer = ElapsedTimer::Off.start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(timer.elapsed_seconds(), 0.0);
    }

    #[test]
    fn wall_clock_timer_advances() {
        let timer = ElapsedTimer::WallClock.start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(timer.elapsed_seconds() > 0.0);
    }

    #[test]
    fn default_is_off() {
        assert_eq!(ElapsedTimer::default(), ElapsedTimer::Off);
    }
}
