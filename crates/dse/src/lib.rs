//! Multi-branch design-space exploration engine (Sec. VI of the F-CAD
//! paper).
//!
//! The design space of the elastic architecture is *multi-branch and
//! dynamic* (Table III): every branch has a batch size plus per-stage
//! `cpf` / `kpf` / `h` factors, so the dimensionality grows with the number
//! of branches and layers. The DSE engine follows the paper's two-step
//! divide-and-conquer strategy:
//!
//! 1. **Cross-branch optimization** ([`CrossBranchSearch`], Algorithm 1) — a
//!    particle-swarm-style stochastic search over *resource distributions*:
//!    how the DSP / BRAM / bandwidth budgets are split across branches. Each
//!    candidate is scored by a priority-weighted throughput fitness with a
//!    variance penalty so that no branch starves.
//! 2. **In-branch optimization** ([`InBranchOptimizer`], Algorithm 2) — a
//!    greedy search that, given one branch's resource share, derives
//!    load-balanced per-stage parallelism targets from the bandwidth-limited
//!    frame rate, then halves/grows them until the largest configuration
//!    that still supports the requested batch size is found.
//!
//! # Example
//!
//! ```
//! use fcad_accel::{BranchPipeline, ConvStage, ElasticAccelerator, Platform};
//! use fcad_dse::{Customization, DseEngine, DseParams};
//! use fcad_nnir::Precision;
//!
//! let branch = BranchPipeline::new(
//!     "main",
//!     vec![ConvStage::synthetic("conv", 16, 16, 64, 64, 3, 1)],
//! );
//! let accelerator = ElasticAccelerator::new("demo", vec![branch], 200e6);
//! let platform = Platform::z7045();
//! let customization = Customization::uniform(1, Precision::Int8);
//! let engine = DseEngine::new(DseParams::fast());
//! let result = engine.explore(&accelerator, &platform, &customization)?;
//! assert!(result.best_report.min_fps > 0.0);
//! # Ok::<(), fcad_dse::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crossbranch;
mod customization;
mod error;
mod fitness;
mod inbranch;
mod result;
mod timer;

pub use crossbranch::{CrossBranchSearch, DseEngine, DseParams, ResourceDistribution};
pub use customization::Customization;
pub use error::{Error, Result};
pub use fitness::{fitness_score, FitnessParams};
pub use inbranch::InBranchOptimizer;
pub use result::{ConvergenceStats, DseResult};
pub use timer::{ElapsedTimer, RunningTimer};
