//! Fitness scoring of accelerator candidates (Algorithm 1, lines 11–12).

use crate::customization::Customization;
use fcad_accel::AcceleratorReport;
use serde::{Deserialize, Serialize};

/// Parameters of the fitness function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessParams {
    /// Weight `α` of the branch-performance variance penalty `P = α·σ²`.
    ///
    /// The penalty keeps the per-branch frame rates close to each other so
    /// that no branch of the avatar lags behind the others.
    pub alpha: f64,
}

impl FitnessParams {
    /// Creates fitness parameters with the given variance-penalty weight.
    pub fn new(alpha: f64) -> Self {
        Self { alpha }
    }
}

impl Default for FitnessParams {
    fn default() -> Self {
        // The per-branch FPS values are of order 10². The penalty weight
        // must be large enough that starving the heaviest branch while
        // over-provisioning a cheap one (huge σ²) never beats a balanced
        // design: with α = 0.05 a 3–4x imbalance costs more fitness than the
        // extra FPS it buys on the cheap branch, while the mild imbalance of
        // legitimate designs (e.g. 61 / 30.5 / 61 FPS on a small FPGA) costs
        // only a few FPS-equivalents.
        Self { alpha: 0.05 }
    }
}

/// Computes the fitness of a candidate: the priority-weighted sum of
/// per-branch throughput (normalized by the branch batch size, so the score
/// reflects delivered avatar frame rate) minus the variance penalty.
pub fn fitness_score(
    report: &AcceleratorReport,
    customization: &Customization,
    params: &FitnessParams,
) -> f64 {
    if report.branches.is_empty() {
        return 0.0;
    }
    let perf: Vec<f64> = report.branches.iter().map(|b| b.fps).collect();
    let weighted: f64 = perf
        .iter()
        .enumerate()
        .map(|(i, fps)| fps * customization.priority(i))
        .sum();
    let mean = perf.iter().sum::<f64>() / perf.len() as f64;
    let variance = perf.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / perf.len() as f64;
    weighted - params.alpha * variance
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_accel::{BranchReport, Parallelism, ResourceUsage, StageEvaluation};
    use fcad_nnir::Precision;

    fn branch(fps: f64) -> BranchReport {
        BranchReport {
            name: "b".into(),
            batch_size: 1,
            fps,
            critical_latency_cycles: 1,
            critical_stage: "s".into(),
            efficiency: 0.9,
            ops_per_frame: 1,
            usage: ResourceUsage::default(),
            stages: vec![StageEvaluation {
                name: "s".into(),
                parallelism: Parallelism::unit(),
                latency_cycles: 1,
                dsp: 1,
                bram: 1,
                weight_bytes_per_frame: 1,
            }],
        }
    }

    fn report(fps: &[f64]) -> AcceleratorReport {
        AcceleratorReport {
            branches: fps.iter().map(|f| branch(*f)).collect(),
            total_usage: ResourceUsage::default(),
            min_fps: fps.iter().copied().fold(f64::INFINITY, f64::min),
            overall_efficiency: 0.9,
        }
    }

    fn customization(n: usize) -> Customization {
        Customization::uniform(n, Precision::Int8)
    }

    #[test]
    fn higher_throughput_scores_higher() {
        let params = FitnessParams::default();
        let slow = fitness_score(&report(&[30.0, 30.0]), &customization(2), &params);
        let fast = fitness_score(&report(&[60.0, 60.0]), &customization(2), &params);
        assert!(fast > slow);
    }

    #[test]
    fn balanced_branches_beat_imbalanced_ones_at_equal_total() {
        let params = FitnessParams::new(0.05);
        let balanced = fitness_score(&report(&[60.0, 60.0]), &customization(2), &params);
        let imbalanced = fitness_score(&report(&[110.0, 10.0]), &customization(2), &params);
        assert!(balanced > imbalanced);
    }

    #[test]
    fn priorities_weight_the_branches() {
        let params = FitnessParams::new(0.0);
        let custom = customization(2).with_priorities(vec![10.0, 1.0]);
        let first_fast = fitness_score(&report(&[100.0, 10.0]), &custom, &params);
        let second_fast = fitness_score(&report(&[10.0, 100.0]), &custom, &params);
        assert!(first_fast > second_fast);
    }

    #[test]
    fn empty_report_scores_zero() {
        let params = FitnessParams::default();
        assert_eq!(fitness_score(&report(&[]), &customization(0), &params), 0.0);
    }
}
