//! Exploration results and convergence statistics.

use fcad_accel::{AcceleratorConfig, AcceleratorReport};
use serde::{Deserialize, Serialize};

/// Outcome of one design-space exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// The best configuration found.
    pub best_config: AcceleratorConfig,
    /// Analytical evaluation of the best configuration.
    pub best_report: AcceleratorReport,
    /// Fitness score of the best configuration.
    pub best_fitness: f64,
    /// Number of iterations executed.
    pub iterations_run: usize,
    /// Iteration at which the global best last improved (the paper's
    /// convergence iteration).
    pub convergence_iteration: usize,
    /// Wall-clock time of the exploration in seconds.
    pub elapsed_seconds: f64,
    /// Best fitness after each iteration.
    pub fitness_history: Vec<f64>,
}

impl DseResult {
    /// Frames per second of the slowest branch of the best design.
    pub fn min_fps(&self) -> f64 {
        self.best_report.min_fps
    }

    /// Overall hardware efficiency of the best design.
    pub fn efficiency(&self) -> f64 {
        self.best_report.overall_efficiency
    }
}

/// Aggregate convergence statistics over several independent searches
/// (the paper reports mean 9.2, min 6.8, max 13.6 over 10 runs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceStats {
    /// Number of independent runs aggregated.
    pub runs: usize,
    /// Mean convergence iteration.
    pub mean_iterations: f64,
    /// Minimum convergence iteration.
    pub min_iterations: f64,
    /// Maximum convergence iteration.
    pub max_iterations: f64,
    /// Mean wall-clock seconds per run.
    pub mean_seconds: f64,
}

impl ConvergenceStats {
    /// Aggregates statistics over a set of exploration results.
    ///
    /// Returns `None` when `results` is empty.
    pub fn of(results: &[DseResult]) -> Option<Self> {
        if results.is_empty() {
            return None;
        }
        let iterations: Vec<f64> = results
            .iter()
            .map(|r| r.convergence_iteration as f64)
            .collect();
        let n = iterations.len() as f64;
        Some(Self {
            runs: results.len(),
            mean_iterations: iterations.iter().sum::<f64>() / n,
            min_iterations: iterations.iter().copied().fold(f64::INFINITY, f64::min),
            max_iterations: iterations.iter().copied().fold(0.0, f64::max),
            mean_seconds: results.iter().map(|r| r.elapsed_seconds).sum::<f64>() / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_accel::ResourceUsage;
    use fcad_nnir::Precision;

    fn result(convergence: usize, seconds: f64) -> DseResult {
        DseResult {
            best_config: AcceleratorConfig::new(vec![], Precision::Int8),
            best_report: AcceleratorReport {
                branches: vec![],
                total_usage: ResourceUsage::default(),
                min_fps: 100.0,
                overall_efficiency: 0.9,
            },
            best_fitness: 1.0,
            iterations_run: 20,
            convergence_iteration: convergence,
            elapsed_seconds: seconds,
            fitness_history: vec![1.0; 20],
        }
    }

    #[test]
    fn stats_aggregate_min_mean_max() {
        let stats =
            ConvergenceStats::of(&[result(5, 1.0), result(10, 2.0), result(15, 3.0)]).unwrap();
        assert_eq!(stats.runs, 3);
        assert!((stats.mean_iterations - 10.0).abs() < 1e-9);
        assert_eq!(stats.min_iterations, 5.0);
        assert_eq!(stats.max_iterations, 15.0);
        assert!((stats.mean_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_have_no_stats() {
        assert!(ConvergenceStats::of(&[]).is_none());
    }

    #[test]
    fn accessors_expose_report_fields() {
        let r = result(5, 1.0);
        assert_eq!(r.min_fps(), 100.0);
        assert_eq!(r.efficiency(), 0.9);
    }
}
