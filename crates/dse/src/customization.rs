//! User customization of the exploration (the `U` inputs of Algorithm 1).

use fcad_nnir::Precision;
use serde::{Deserialize, Serialize};

/// Application-specific customization: quantization `Q`, per-branch target
/// batch sizes and per-branch priorities (Table III, "Customization" row).
///
/// For the codec avatar decoder the paper uses batch sizes `{1, 2, 2}` —
/// the texture and warp-field branches render one output per eye while the
/// facial geometry is shared by both eyes — and uniform priorities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Customization {
    /// Numeric precision (`Q`).
    pub precision: Precision,
    /// Target batch size per branch (`BatchSize_1..B`).
    pub batch_sizes: Vec<usize>,
    /// Priority weight per branch (`P_1..B`); higher means more important.
    pub priorities: Vec<f64>,
}

impl Customization {
    /// Uniform customization: batch 1 and priority 1 for `branches` branches.
    pub fn uniform(branches: usize, precision: Precision) -> Self {
        Self {
            precision,
            batch_sizes: vec![1; branches],
            priorities: vec![1.0; branches],
        }
    }

    /// The paper's codec-avatar customization for a three-branch decoder:
    /// batch sizes `{1, 2, 2}` and uniform priorities.
    pub fn codec_avatar(precision: Precision) -> Self {
        Self {
            precision,
            batch_sizes: vec![1, 2, 2],
            priorities: vec![1.0, 1.0, 1.0],
        }
    }

    /// Replaces the per-branch priorities.
    pub fn with_priorities(mut self, priorities: Vec<f64>) -> Self {
        self.priorities = priorities;
        self
    }

    /// Replaces the per-branch batch sizes.
    pub fn with_batch_sizes(mut self, batch_sizes: Vec<usize>) -> Self {
        self.batch_sizes = batch_sizes;
        self
    }

    /// Number of branches this customization describes.
    pub fn branch_count(&self) -> usize {
        self.batch_sizes.len()
    }

    /// Batch size for branch `index` (1 when unspecified).
    pub fn batch_size(&self, index: usize) -> usize {
        self.batch_sizes.get(index).copied().unwrap_or(1).max(1)
    }

    /// Priority for branch `index` (1.0 when unspecified).
    pub fn priority(&self, index: usize) -> f64 {
        self.priorities.get(index).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_avatar_matches_the_paper() {
        let c = Customization::codec_avatar(Precision::Int8);
        assert_eq!(c.batch_sizes, vec![1, 2, 2]);
        assert_eq!(c.branch_count(), 3);
        assert_eq!(c.batch_size(1), 2);
        assert_eq!(c.priority(2), 1.0);
    }

    #[test]
    fn out_of_range_lookups_fall_back_to_defaults() {
        let c = Customization::uniform(2, Precision::Int16);
        assert_eq!(c.batch_size(7), 1);
        assert_eq!(c.priority(7), 1.0);
    }

    #[test]
    fn builders_replace_fields() {
        let c = Customization::uniform(2, Precision::Int8)
            .with_priorities(vec![2.0, 1.0])
            .with_batch_sizes(vec![4, 1]);
        assert_eq!(c.priority(0), 2.0);
        assert_eq!(c.batch_size(0), 4);
    }
}
