//! In-branch greedy optimization (Algorithm 2 of the paper).

use fcad_accel::{
    BranchConfig, BranchPipeline, CostModel, Parallelism, ResourceBudget, StageConfig, UnitModel,
};
use fcad_nnir::Precision;

/// Greedy search for the best configuration of a single branch under a
/// given resource distribution.
///
/// Following Algorithm 2, the optimizer
///
/// 1. derives *optimistic* per-stage parallelism targets by assuming the
///    branch runs at the frame rate its allocated bandwidth could sustain
///    (weights are streamed once per frame), distributing lanes
///    proportionally to each stage's compute so the pipeline stays
///    load-balanced;
/// 2. repeatedly halves all targets while the configuration cannot support
///    the requested batch size within the allocated DSPs / BRAMs /
///    bandwidth;
/// 3. greedily grows the slowest stage again while the batch-size constraint
///    keeps holding, stopping when no stage can grow — "once the parallelism
///    fails to grow".
#[derive(Debug, Clone)]
pub struct InBranchOptimizer<'a> {
    pipeline: &'a BranchPipeline,
    precision: Precision,
    frequency_hz: f64,
    cost: CostModel,
}

impl<'a> InBranchOptimizer<'a> {
    /// Creates an optimizer for one branch pipeline.
    pub fn new(pipeline: &'a BranchPipeline, precision: Precision, frequency_hz: f64) -> Self {
        Self {
            pipeline,
            precision,
            frequency_hz,
            cost: CostModel::default(),
        }
    }

    /// Replaces the cost model used for utilization estimates.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Finds the largest-parallelism configuration of the branch that
    /// supports `target_batch` pipeline copies within `budget`.
    ///
    /// When even the minimal configuration does not fit, the minimal
    /// configuration is returned; the caller detects infeasibility by
    /// re-evaluating the returned configuration against its budget.
    pub fn optimize(&self, budget: &ResourceBudget, target_batch: usize) -> BranchConfig {
        let stages = self.pipeline.stages();
        if stages.is_empty() {
            return BranchConfig::new(target_batch, Vec::new());
        }

        // Lines 4–12: optimistic, load-balanced parallelism targets derived
        // from the bandwidth-limited frame rate.
        let weight_bytes: u64 = self.pipeline.weight_bytes_per_frame(self.precision).max(1);
        let bandwidth_fps =
            budget.bandwidth_bytes_per_sec * self.cost.dram_efficiency / weight_bytes as f64;
        let mut targets: Vec<usize> = stages
            .iter()
            .map(|stage| {
                let lanes = (stage.macs as f64 * bandwidth_fps / self.frequency_hz).ceil();
                (lanes as usize).max(1)
            })
            .collect();

        // Lines 13–24: halve until the requested batch size fits.
        let target_batch = target_batch.max(1);
        loop {
            let batch = self.supported_batch(&targets, budget);
            if batch >= target_batch {
                break;
            }
            if targets.iter().all(|&t| t <= 1) {
                break;
            }
            for t in &mut targets {
                *t = (*t / 2).max(1);
            }
        }

        // Greedy growth: push the slowest stage further while the batch-size
        // constraint keeps holding.
        let mut growable = vec![true; targets.len()];
        let mut guard = 0usize;
        while growable.iter().any(|&g| g) && guard < 512 {
            guard += 1;
            let Some(slowest) = self.slowest_growable_stage(&targets, &growable) else {
                break;
            };
            let stage = &stages[slowest];
            let max_lanes = Parallelism::max_for(stage).total();
            let current = targets[slowest];
            if current >= max_lanes {
                growable[slowest] = false;
                continue;
            }
            let attempt = (current * 2).min(max_lanes);
            let mut trial = targets.clone();
            trial[slowest] = attempt;
            if self.supported_batch(&trial, budget) >= target_batch {
                targets = trial;
            } else {
                growable[slowest] = false;
            }
        }

        BranchConfig::new(target_batch, self.stage_configs(&targets))
    }

    /// How many pipeline copies with the given per-stage lane targets fit in
    /// the budget (Algorithm 2, line 18).
    fn supported_batch(&self, targets: &[usize], budget: &ResourceBudget) -> usize {
        let stages = self.pipeline.stages();
        let mut dsp = 0usize;
        let mut bram = 0usize;
        let mut max_latency = 1u64;
        let mut weight_bytes = 0u64;
        for (stage, &lanes) in stages.iter().zip(targets) {
            let unit = UnitModel::with_cost_model(
                stage,
                Parallelism::for_target(stage, lanes),
                self.precision,
                &self.cost,
            );
            dsp += unit.dsp();
            bram += unit.bram();
            max_latency = max_latency.max(unit.latency_cycles());
            weight_bytes += unit.weight_bytes_per_frame();
        }
        let copies_by_dsp = budget.dsp / dsp.max(1);
        let copies_by_bram = budget.bram / bram.max(1);
        let fps_single = self.frequency_hz / max_latency as f64;
        let bw_per_copy = weight_bytes as f64 * fps_single / self.cost.dram_efficiency.max(1e-6);
        let copies_by_bw = if bw_per_copy <= 0.0 {
            usize::MAX
        } else {
            (budget.bandwidth_bytes_per_sec / bw_per_copy).floor() as usize
        };
        copies_by_dsp.min(copies_by_bram).min(copies_by_bw)
    }

    /// Index of the stage with the highest latency among those still allowed
    /// to grow.
    fn slowest_growable_stage(&self, targets: &[usize], growable: &[bool]) -> Option<usize> {
        let stages = self.pipeline.stages();
        stages
            .iter()
            .enumerate()
            .filter(|(i, _)| growable[*i])
            .max_by_key(|(i, stage)| {
                let p = Parallelism::for_target(stage, targets[*i]);
                (stage.macs as f64 / p.total() as f64).ceil() as u64
            })
            .map(|(i, _)| i)
    }

    fn stage_configs(&self, targets: &[usize]) -> Vec<StageConfig> {
        self.pipeline
            .stages()
            .iter()
            .zip(targets)
            .map(|(stage, &lanes)| StageConfig::new(Parallelism::for_target(stage, lanes)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_accel::{AcceleratorConfig, ConvStage, ElasticAccelerator};

    fn pipeline() -> BranchPipeline {
        BranchPipeline::new(
            "texture-tail",
            vec![
                ConvStage::synthetic("conv6", 72, 32, 256, 256, 3, 2),
                ConvStage::synthetic("conv7", 32, 16, 512, 512, 3, 2),
                ConvStage::synthetic("conv8", 16, 3, 1024, 1024, 3, 1),
            ],
        )
    }

    fn evaluate(pipe: &BranchPipeline, cfg: &BranchConfig) -> fcad_accel::BranchReport {
        pipe.evaluate(cfg, Precision::Int8, 200e6, &CostModel::default())
            .expect("config matches pipeline")
    }

    #[test]
    fn result_fits_the_budget() {
        let pipe = pipeline();
        let budget = ResourceBudget::new(800, 700, 8.0);
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let cfg = optimizer.optimize(&budget, 1);
        let report = evaluate(&pipe, &cfg);
        assert!(report.usage.dsp <= budget.dsp, "dsp {}", report.usage.dsp);
        assert!(
            report.usage.bram <= budget.bram,
            "bram {}",
            report.usage.bram
        );
        assert!(report.usage.bandwidth_bytes_per_sec <= budget.bandwidth_bytes_per_sec);
    }

    #[test]
    fn larger_budgets_yield_no_slower_designs() {
        let pipe = pipeline();
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let small = evaluate(
            &pipe,
            &optimizer.optimize(&ResourceBudget::new(200, 300, 4.0), 1),
        );
        let large = evaluate(
            &pipe,
            &optimizer.optimize(&ResourceBudget::new(1600, 1200, 12.8), 1),
        );
        assert!(large.fps >= small.fps);
        assert!(
            large.fps > 1.5 * small.fps,
            "large budget should clearly help"
        );
    }

    #[test]
    fn batch_two_halves_per_copy_resources_but_is_honored() {
        let pipe = pipeline();
        let budget = ResourceBudget::new(1000, 900, 12.8);
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let cfg = optimizer.optimize(&budget, 2);
        assert_eq!(cfg.batch_size, 2);
        let report = evaluate(&pipe, &cfg);
        assert!(report.usage.dsp <= budget.dsp);
        assert_eq!(report.batch_size, 2);
    }

    #[test]
    fn pipeline_is_roughly_load_balanced() {
        let pipe = pipeline();
        let budget = ResourceBudget::new(1200, 1000, 12.8);
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let report = evaluate(&pipe, &optimizer.optimize(&budget, 1));
        let latencies: Vec<u64> = report.stages.iter().map(|s| s.latency_cycles).collect();
        let max = *latencies.iter().max().unwrap() as f64;
        let min = *latencies.iter().min().unwrap() as f64;
        assert!(
            max / min < 8.0,
            "stage latencies too imbalanced: {latencies:?}"
        );
        // Efficiency of a balanced pipeline should be healthy.
        assert!(report.efficiency > 0.5, "efficiency {}", report.efficiency);
    }

    #[test]
    fn uses_h_partition_beyond_the_channel_limit() {
        // With a generous budget, the few-channel HD stage (16->3 at 1024²)
        // must exceed its 48-lane channel limit via H-partitioning —
        // the capability DNNBuilder lacks.
        let pipe = pipeline();
        let budget = ResourceBudget::new(2400, 1800, 12.8);
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let cfg = optimizer.optimize(&budget, 1);
        let last = cfg.stages.last().unwrap().parallelism;
        assert!(
            last.h > 1,
            "expected H-partitioning on the HD output stage, got {last}"
        );
        assert!(last.total() > 48);
    }

    #[test]
    fn infeasible_budget_degrades_to_minimal_parallelism() {
        let pipe = pipeline();
        let tiny = ResourceBudget::new(3, 3, 0.001);
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let cfg = optimizer.optimize(&tiny, 1);
        assert!(cfg.stages.iter().all(|s| s.parallelism.total() <= 2));
    }

    #[test]
    fn end_to_end_with_elastic_accelerator() {
        let pipe = pipeline();
        let budget = ResourceBudget::new(900, 800, 12.8);
        let optimizer = InBranchOptimizer::new(&pipe, Precision::Int8, 200e6);
        let cfg = optimizer.optimize(&budget, 1);
        let acc = ElasticAccelerator::new("one-branch", vec![pipe.clone()], 200e6);
        let report = acc
            .evaluate(&AcceleratorConfig::new(vec![cfg], Precision::Int8))
            .unwrap();
        assert!(report.min_fps > 0.0);
    }
}
