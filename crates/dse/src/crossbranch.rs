//! Cross-branch stochastic optimization (Algorithm 1 of the paper).

use crate::customization::Customization;
use crate::error::{Error, Result};
use crate::fitness::{fitness_score, FitnessParams};
use crate::inbranch::InBranchOptimizer;
use crate::result::DseResult;
use crate::timer::ElapsedTimer;
use fcad_accel::{
    AcceleratorConfig, AcceleratorReport, ElasticAccelerator, Platform, ResourceBudget,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How one candidate splits the platform's resources across branches: a
/// share in `[0, 1]` per branch and per resource dimension (compute, on-chip
/// memory, bandwidth). Shares are kept normalized so each dimension sums to
/// one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceDistribution {
    /// `shares[b] = [dsp_share, bram_share, bandwidth_share]` for branch `b`.
    pub shares: Vec<[f64; 3]>,
}

impl ResourceDistribution {
    /// Minimum share any branch keeps in any dimension, so no branch is ever
    /// starved to exactly zero resources.
    const MIN_SHARE: f64 = 0.02;

    /// A uniform split across `branches` branches.
    pub fn uniform(branches: usize) -> Self {
        let share = 1.0 / branches.max(1) as f64;
        Self {
            shares: vec![[share; 3]; branches],
        }
    }

    /// A split proportional to the given per-branch weights (e.g. branch MAC
    /// counts) in every dimension.
    pub fn proportional(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum::<f64>().max(1e-12);
        Self {
            shares: weights
                .iter()
                .map(|w| {
                    let s = (w / total).max(Self::MIN_SHARE);
                    [s; 3]
                })
                .collect(),
        }
        .normalized()
    }

    /// A random split (used to initialize the particle population).
    pub fn random(branches: usize, rng: &mut impl Rng) -> Self {
        let shares = (0..branches)
            .map(|_| {
                [
                    rng.gen_range(0.05..1.0),
                    rng.gen_range(0.05..1.0),
                    rng.gen_range(0.05..1.0),
                ]
            })
            .collect();
        Self { shares }.normalized()
    }

    /// Number of branches covered.
    pub fn branch_count(&self) -> usize {
        self.shares.len()
    }

    /// The resource budget branch `index` receives out of `total`.
    pub fn branch_budget(&self, index: usize, total: &ResourceBudget) -> ResourceBudget {
        let share = self.shares.get(index).copied().unwrap_or([0.0; 3]);
        ResourceBudget {
            dsp: (total.dsp as f64 * share[0]).floor() as usize,
            bram: (total.bram as f64 * share[1]).floor() as usize,
            bandwidth_bytes_per_sec: total.bandwidth_bytes_per_sec * share[2],
        }
    }

    /// Renormalizes every dimension to sum to one (with the minimum share
    /// floor applied first).
    pub fn normalized(mut self) -> Self {
        for dim in 0..3 {
            for share in &mut self.shares {
                share[dim] = share[dim].max(Self::MIN_SHARE);
            }
            let sum: f64 = self.shares.iter().map(|s| s[dim]).sum();
            if sum > 0.0 {
                for share in &mut self.shares {
                    share[dim] /= sum;
                }
            }
        }
        self
    }

    /// Particle-swarm evolution step (Algorithm 1, line 16): move towards the
    /// particle's local best and the global best by random fractions, with a
    /// small exploration jitter, then renormalize.
    fn evolved(
        &self,
        local_best: &ResourceDistribution,
        global_best: &ResourceDistribution,
        params: &DseParams,
        rng: &mut impl Rng,
    ) -> Self {
        let mut next = self.clone();
        for (b, share) in next.shares.iter_mut().enumerate() {
            for (dim, s) in share.iter_mut().enumerate() {
                let toward_local =
                    params.local_pull * rng.gen_range(0.0..1.0) * (local_best.shares[b][dim] - *s);
                let toward_global = params.global_pull
                    * rng.gen_range(0.0..1.0)
                    * (global_best.shares[b][dim] - *s);
                let jitter = params.jitter * rng.gen_range(-1.0..1.0);
                *s += toward_local + toward_global + jitter;
            }
        }
        next.normalized()
    }
}

/// Hyper-parameters of the cross-branch stochastic search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseParams {
    /// Population size `P` (the paper uses 200).
    pub population: usize,
    /// Iteration count `N` (the paper uses 20).
    pub iterations: usize,
    /// Fitness parameters (variance-penalty weight `α`).
    pub fitness: FitnessParams,
    /// Pull towards a particle's own best position.
    pub local_pull: f64,
    /// Pull towards the global best position.
    pub global_pull: f64,
    /// Random exploration jitter added to every share.
    pub jitter: f64,
    /// RNG seed (explorations are deterministic for a given seed).
    pub seed: u64,
}

impl DseParams {
    /// The configuration used in the paper's evaluation: `P = 200`,
    /// `N = 20`.
    pub fn paper() -> Self {
        Self {
            population: 200,
            iterations: 20,
            fitness: FitnessParams::default(),
            local_pull: 0.6,
            global_pull: 0.8,
            jitter: 0.03,
            seed: 0xF_CAD,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn fast() -> Self {
        Self {
            population: 12,
            iterations: 6,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different seed (for independent runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for DseParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The DSE engine: cross-branch stochastic search driving the in-branch
/// greedy optimizer.
#[derive(Debug, Clone, Default)]
pub struct DseEngine {
    params: DseParams,
    timer: ElapsedTimer,
}

/// Backwards-compatible name for the cross-branch search engine.
pub type CrossBranchSearch = DseEngine;

impl DseEngine {
    /// Creates an engine with the given hyper-parameters. Elapsed-time
    /// measurement is off, so results depend only on the seed.
    pub fn new(params: DseParams) -> Self {
        Self {
            params,
            timer: ElapsedTimer::Off,
        }
    }

    /// Returns a copy that measures real wall-clock time into
    /// [`DseResult::elapsed_seconds`] — for interactive runs only; the
    /// default engine reports 0.0 so fixed-seed output stays byte-stable.
    pub fn with_timer(mut self, timer: ElapsedTimer) -> Self {
        self.timer = timer;
        self
    }

    /// The engine's hyper-parameters.
    pub fn params(&self) -> &DseParams {
        &self.params
    }

    /// Explores the design space of `accelerator` on `platform` under
    /// `customization` and returns the best design found.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MismatchedCustomization`] when the customization's
    /// branch count differs from the accelerator's, and
    /// [`Error::NoFeasibleDesign`] when not a single candidate fits the
    /// platform budget.
    pub fn explore(
        &self,
        accelerator: &ElasticAccelerator,
        platform: &Platform,
        customization: &Customization,
    ) -> Result<DseResult> {
        let started = self.timer.start();
        let branch_count = accelerator.branch_count();
        if customization.branch_count() != branch_count {
            return Err(Error::MismatchedCustomization {
                reason: format!(
                    "accelerator has {branch_count} branches, customization describes {}",
                    customization.branch_count()
                ),
            });
        }
        if branch_count == 0 {
            return Err(Error::NoFeasibleDesign {
                reason: "accelerator has no branches".to_owned(),
            });
        }

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let budget = *platform.budget();

        // Algorithm 1, line 4: initialize the population. A few particles
        // are seeded with informed splits — compute-proportional shares for
        // DSPs and bandwidth, and buffer-footprint-proportional shares for
        // the on-chip memory (a branch with HD feature maps needs its BRAM
        // regardless of how much compute it gets) — the rest are random.
        let compute_weights: Vec<f64> = accelerator
            .branches()
            .iter()
            .enumerate()
            .map(|(i, b)| b.macs_per_frame() as f64 * customization.batch_size(i) as f64 + 1.0)
            .collect();
        let bram_weights: Vec<f64> = accelerator
            .branches()
            .iter()
            .enumerate()
            .map(|(i, pipeline)| {
                let per_copy: usize = pipeline
                    .stages()
                    .iter()
                    .map(|stage| {
                        fcad_accel::UnitModel::with_cost_model(
                            stage,
                            fcad_accel::Parallelism::unit(),
                            customization.precision,
                            accelerator.cost_model(),
                        )
                        .bram()
                    })
                    .sum();
                (per_copy * customization.batch_size(i)) as f64 + 1.0
            })
            .collect();
        let compute_seed = ResourceDistribution::proportional(&compute_weights);
        let bram_seed = ResourceDistribution::proportional(&bram_weights);
        let mut mixed_seed = compute_seed.clone();
        for (share, bram) in mixed_seed.shares.iter_mut().zip(&bram_seed.shares) {
            share[1] = bram[1];
        }
        let mut particles: Vec<ResourceDistribution> = Vec::with_capacity(self.params.population);
        particles.push(mixed_seed.normalized());
        particles.push(compute_seed);
        particles.push(ResourceDistribution::uniform(branch_count));
        particles.truncate(self.params.population.max(1));
        while particles.len() < self.params.population.max(1) {
            particles.push(ResourceDistribution::random(branch_count, &mut rng));
        }

        let mut local_best: Vec<(f64, ResourceDistribution)> = particles
            .iter()
            .map(|p| (f64::NEG_INFINITY, p.clone()))
            .collect();
        let mut global_best: Option<(
            f64,
            ResourceDistribution,
            AcceleratorConfig,
            AcceleratorReport,
        )> = None;
        let mut convergence_iteration = 0usize;
        let mut history = Vec::with_capacity(self.params.iterations);

        for iteration in 0..self.params.iterations.max(1) {
            for (index, particle) in particles.iter().enumerate() {
                let Some((config, report)) =
                    self.evaluate_candidate(accelerator, particle, &budget, customization)
                else {
                    continue;
                };
                if !report.fits(&budget) {
                    continue;
                }
                let fitness = fitness_score(&report, customization, &self.params.fitness);
                if fitness > local_best[index].0 {
                    local_best[index] = (fitness, particle.clone());
                }
                let improved = global_best
                    .as_ref()
                    .map(|(best, _, _, _)| fitness > *best)
                    .unwrap_or(true);
                if improved {
                    global_best = Some((fitness, particle.clone(), config, report));
                    convergence_iteration = iteration + 1;
                }
            }
            history.push(
                global_best
                    .as_ref()
                    .map(|(f, _, _, _)| *f)
                    .unwrap_or(f64::NEG_INFINITY),
            );

            // Evolve the population towards the local and global bests.
            if let Some((_, ref global_rd, _, _)) = global_best {
                particles = particles
                    .iter()
                    .zip(&local_best)
                    .map(|(particle, (_, local_rd))| {
                        particle.evolved(local_rd, global_rd, &self.params, &mut rng)
                    })
                    .collect();
            } else {
                // Nothing feasible yet: re-randomize.
                particles = (0..particles.len())
                    .map(|_| ResourceDistribution::random(branch_count, &mut rng))
                    .collect();
            }
        }

        let (best_fitness, _, best_config, best_report) =
            global_best.ok_or_else(|| Error::NoFeasibleDesign {
                reason: format!(
                    "no candidate fits {} DSPs / {} BRAMs / {:.1} GB/s",
                    budget.dsp,
                    budget.bram,
                    budget.bandwidth_bytes_per_sec / 1e9
                ),
            })?;

        Ok(DseResult {
            best_config,
            best_report,
            best_fitness,
            iterations_run: self.params.iterations.max(1),
            convergence_iteration,
            elapsed_seconds: started.elapsed_seconds(),
            fitness_history: history,
        })
    }

    /// Runs `runs` independent explorations with different seeds (used for
    /// the paper's convergence study).
    pub fn explore_repeatedly(
        &self,
        accelerator: &ElasticAccelerator,
        platform: &Platform,
        customization: &Customization,
        runs: usize,
    ) -> Result<Vec<DseResult>> {
        (0..runs.max(1))
            .map(|i| {
                DseEngine::new(
                    self.params
                        .with_seed(self.params.seed.wrapping_add(i as u64 * 7919)),
                )
                .with_timer(self.timer)
                .explore(accelerator, platform, customization)
            })
            .collect()
    }

    /// Builds and evaluates the configuration implied by one resource
    /// distribution (Algorithm 1, lines 7–11).
    fn evaluate_candidate(
        &self,
        accelerator: &ElasticAccelerator,
        distribution: &ResourceDistribution,
        budget: &ResourceBudget,
        customization: &Customization,
    ) -> Option<(AcceleratorConfig, AcceleratorReport)> {
        let mut branch_configs = Vec::with_capacity(accelerator.branch_count());
        for (index, pipeline) in accelerator.branches().iter().enumerate() {
            let branch_budget = distribution.branch_budget(index, budget);
            let optimizer = InBranchOptimizer::new(
                pipeline,
                customization.precision,
                accelerator.frequency_hz(),
            )
            .with_cost_model(*accelerator.cost_model());
            branch_configs
                .push(optimizer.optimize(&branch_budget, customization.batch_size(index)));
        }
        let config = AcceleratorConfig::new(branch_configs, customization.precision);
        let report = accelerator.evaluate(&config).ok()?;
        Some((config, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_accel::{BranchPipeline, ConvStage};
    use fcad_nnir::Precision;

    fn two_branch_accelerator() -> ElasticAccelerator {
        let heavy = BranchPipeline::new(
            "heavy",
            vec![
                ConvStage::synthetic("h1", 64, 64, 128, 128, 3, 1),
                ConvStage::synthetic("h2", 64, 32, 256, 256, 3, 1),
            ],
        );
        let light = BranchPipeline::new(
            "light",
            vec![ConvStage::synthetic("l1", 16, 8, 64, 64, 3, 1)],
        );
        ElasticAccelerator::new("two-branch", vec![heavy, light], 200e6)
    }

    #[test]
    fn exploration_finds_a_feasible_design() {
        let acc = two_branch_accelerator();
        let platform = Platform::zu17eg();
        let custom = Customization::uniform(2, Precision::Int8);
        let result = DseEngine::new(DseParams::fast())
            .explore(&acc, &platform, &custom)
            .expect("feasible design exists");
        assert!(result.best_report.fits(platform.budget()));
        assert!(result.min_fps() > 0.0);
        assert!(result.convergence_iteration >= 1);
        assert_eq!(result.fitness_history.len(), DseParams::fast().iterations);
    }

    #[test]
    fn exploration_is_deterministic_for_a_seed() {
        let acc = two_branch_accelerator();
        let platform = Platform::z7045();
        let custom = Customization::uniform(2, Precision::Int8);
        let engine = DseEngine::new(DseParams::fast());
        let a = engine.explore(&acc, &platform, &custom).unwrap();
        let b = engine.explore(&acc, &platform, &custom).unwrap();
        assert_eq!(a.best_config, b.best_config);
        assert!((a.best_fitness - b.best_fitness).abs() < 1e-12);
    }

    #[test]
    fn dse_output_is_byte_stable_run_over_run() {
        // Regression for the wall-clock leak fcad-lint found on day one:
        // `Instant::now()` used to feed `elapsed_seconds`, so two runs of
        // the same seed were never fully equal. With the timer off (the
        // default), the ENTIRE result — elapsed_seconds included — must
        // compare equal across independent runs.
        let acc = two_branch_accelerator();
        let platform = Platform::z7045();
        let custom = Customization::uniform(2, Precision::Int8);
        let engine = DseEngine::new(DseParams::fast());
        let a = engine.explore(&acc, &platform, &custom).unwrap();
        let b = engine.explore(&acc, &platform, &custom).unwrap();
        assert_eq!(a, b, "fixed seed must give a byte-stable DseResult");
        assert_eq!(a.elapsed_seconds, 0.0, "off-timer reports exactly zero");
    }

    #[test]
    fn wall_clock_timer_is_opt_in_and_only_touches_elapsed() {
        let acc = two_branch_accelerator();
        let platform = Platform::z7045();
        let custom = Customization::uniform(2, Precision::Int8);
        let plain = DseEngine::new(DseParams::fast());
        let timed = DseEngine::new(DseParams::fast()).with_timer(ElapsedTimer::WallClock);
        let a = plain.explore(&acc, &platform, &custom).unwrap();
        let mut b = timed.explore(&acc, &platform, &custom).unwrap();
        assert!(b.elapsed_seconds > 0.0, "wall-clock timer measures time");
        b.elapsed_seconds = 0.0;
        assert_eq!(a, b, "the timer must not influence the search itself");
    }

    #[test]
    fn bigger_platforms_do_not_hurt_throughput() {
        let acc = two_branch_accelerator();
        let custom = Customization::uniform(2, Precision::Int8);
        let engine = DseEngine::new(DseParams::fast());
        let small = engine
            .explore(&acc, &Platform::z7045(), &custom)
            .unwrap()
            .min_fps();
        let large = engine
            .explore(&acc, &Platform::zu9cg(), &custom)
            .unwrap()
            .min_fps();
        assert!(large >= small * 0.95, "large {large} vs small {small}");
    }

    #[test]
    fn mismatched_customization_is_rejected() {
        let acc = two_branch_accelerator();
        let custom = Customization::uniform(3, Precision::Int8);
        let err = DseEngine::new(DseParams::fast())
            .explore(&acc, &Platform::z7045(), &custom)
            .unwrap_err();
        assert!(matches!(err, Error::MismatchedCustomization { .. }));
    }

    #[test]
    fn impossible_budget_reports_no_feasible_design() {
        let acc = two_branch_accelerator();
        let custom = Customization::uniform(2, Precision::Int8);
        let tiny = Platform::new(
            "tiny",
            fcad_accel::PlatformKind::Fpga,
            ResourceBudget::new(2, 2, 0.0001),
            200.0,
        );
        let err = DseEngine::new(DseParams::fast())
            .explore(&acc, &tiny, &custom)
            .unwrap_err();
        assert!(matches!(err, Error::NoFeasibleDesign { .. }));
    }

    #[test]
    fn priorities_steer_resources_towards_the_preferred_branch() {
        let acc = two_branch_accelerator();
        let engine = DseEngine::new(DseParams::fast());
        let favor_light =
            Customization::uniform(2, Precision::Int8).with_priorities(vec![0.1, 10.0]);
        let favor_heavy =
            Customization::uniform(2, Precision::Int8).with_priorities(vec![10.0, 0.1]);
        let light_first = engine
            .explore(&acc, &Platform::z7045(), &favor_light)
            .unwrap();
        let heavy_first = engine
            .explore(&acc, &Platform::z7045(), &favor_heavy)
            .unwrap();
        let light_fps_when_favored = light_first.best_report.branches[1].fps;
        let light_fps_when_not = heavy_first.best_report.branches[1].fps;
        assert!(
            light_fps_when_favored >= light_fps_when_not,
            "favored branch must not get slower ({light_fps_when_favored} vs {light_fps_when_not})"
        );
    }

    #[test]
    fn repeated_runs_vary_seed_but_all_converge() {
        let acc = two_branch_accelerator();
        let custom = Customization::uniform(2, Precision::Int8);
        let results = DseEngine::new(DseParams::fast())
            .explore_repeatedly(&acc, &Platform::z7045(), &custom, 3)
            .unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.best_report.fits(Platform::z7045().budget()));
        }
    }

    #[test]
    fn resource_distribution_normalization_and_budgets() {
        let rd = ResourceDistribution {
            shares: vec![[10.0, 1.0, 1.0], [30.0, 3.0, 1.0]],
        }
        .normalized();
        for dim in 0..3 {
            let sum: f64 = rd.shares.iter().map(|s| s[dim]).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        let total = ResourceBudget::new(1000, 100, 10.0);
        let b0 = rd.branch_budget(0, &total);
        let b1 = rd.branch_budget(1, &total);
        assert!(b1.dsp > b0.dsp);
        assert!(b0.dsp + b1.dsp <= total.dsp);
    }
}
