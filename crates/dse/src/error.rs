//! Error type for the DSE engine.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised during design-space exploration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The customization does not match the accelerator (e.g. wrong number
    /// of per-branch batch sizes or priorities).
    MismatchedCustomization {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// No feasible design exists within the budget (even the minimal
    /// configuration does not fit).
    NoFeasibleDesign {
        /// Human-readable description of the binding constraint.
        reason: String,
    },
    /// An underlying accelerator-model error.
    Model(fcad_accel::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MismatchedCustomization { reason } => {
                write!(f, "mismatched customization: {reason}")
            }
            Error::NoFeasibleDesign { reason } => write!(f, "no feasible design: {reason}"),
            Error::Model(err) => write!(f, "accelerator model error: {err}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<fcad_accel::Error> for Error {
    fn from(err: fcad_accel::Error) -> Self {
        Error::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_model_errors() {
        let model_err = fcad_accel::Error::InvalidConfig {
            reason: "x".to_owned(),
        };
        let err: Error = model_err.into();
        assert!(err.to_string().contains("accelerator model error"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
