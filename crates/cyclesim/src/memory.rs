//! Shared external-memory model.

use serde::{Deserialize, Serialize};

/// A bandwidth-limited external memory shared by every pipeline stage.
///
/// Weight streams are the dominant external traffic of the layer-pipelined
/// architecture (activations stay on chip between stages), so the model
/// tracks how many bytes each consumer moves per frame and charges transfer
/// cycles at the effective per-cycle bandwidth. Contention is modeled by
/// derating each consumer's share proportionally to the total demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Peak bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fraction of the peak that is achievable (row activations, refresh,
    /// bus turnaround).
    pub efficiency: f64,
    /// Clock frequency of the accelerator, used to convert bandwidth into
    /// bytes per cycle.
    pub frequency_hz: f64,
}

impl MemoryModel {
    /// Creates a memory model with the default 80 % DRAM efficiency.
    pub fn new(bandwidth_bytes_per_sec: f64, frequency_hz: f64) -> Self {
        Self {
            bandwidth_bytes_per_sec,
            efficiency: 0.8,
            frequency_hz,
        }
    }

    /// Effective bytes transferred per accelerator cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        (self.bandwidth_bytes_per_sec * self.efficiency) / self.frequency_hz.max(1.0)
    }

    /// Cycles needed to transfer `bytes` when this consumer receives
    /// `share` (0–1] of the memory bandwidth.
    pub fn transfer_cycles(&self, bytes: u64, share: f64) -> u64 {
        let per_cycle = self.bytes_per_cycle() * share.clamp(1e-6, 1.0);
        (bytes as f64 / per_cycle.max(1e-9)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_cycle_accounts_for_efficiency() {
        let mem = MemoryModel::new(12.8e9, 200e6);
        // 12.8 GB/s * 0.8 / 200 MHz = 51.2 bytes per cycle.
        assert!((mem.bytes_per_cycle() - 51.2).abs() < 1e-9);
    }

    #[test]
    fn transfer_cycles_scale_inversely_with_share() {
        let mem = MemoryModel::new(12.8e9, 200e6);
        let full = mem.transfer_cycles(1_000_000, 1.0);
        let half = mem.transfer_cycles(1_000_000, 0.5);
        assert!(half >= 2 * full - 2);
    }

    #[test]
    fn zero_share_is_clamped() {
        let mem = MemoryModel::new(12.8e9, 200e6);
        assert!(mem.transfer_cycles(1_000, 0.0) > 0);
    }
}
