//! Discrete-time execution model of one branch pipeline.
//!
//! The engine models each stage at *row-tile* granularity: a stage with
//! H-partition `h` produces `h` output rows per pass, each pass costing the
//! tile-quantized inner-loop cycles plus a fixed control overhead. Stages are
//! chained through row dependencies (a stage needs `kernel` rows of its
//! input, and its last H-partition section needs rows near the bottom of the
//! map before it can start), and weight tiles stream from the shared
//! external memory in the background.

use crate::memory::MemoryModel;
use crate::result::StageSim;
use fcad_accel::{ConvStage, Parallelism, UnitModel};
use fcad_nnir::Precision;

/// Fixed control overhead charged per row pass (loop prologue/epilogue of
/// the fine-grained pipeline).
const ROW_PASS_OVERHEAD_CYCLES: u64 = 12;

/// Extra DSPs per stage spent on address generation in the implemented
/// design (not foreseen by the analytical model).
const ADDRESS_GEN_DSP_PER_STAGE: usize = 1;

/// Timing of a single stage derived from its geometry and parallelism.
#[derive(Debug, Clone)]
pub(crate) struct StageTiming {
    pub name: String,
    /// Number of passes per frame.
    pub passes: u64,
    /// Cycles per pass (tile-quantized inner loops + overhead).
    pub cycles_per_pass: u64,
    /// Input rows that must be available before the stage can start.
    pub input_rows_needed_to_start: usize,
    /// Output rows emitted in total (after fused up-sampling).
    pub output_rows_total: usize,
    /// Weight bytes streamed per frame.
    pub weight_bytes: u64,
    /// DSPs of the implemented stage.
    pub dsp: usize,
    /// Operations per frame.
    pub ops: u64,
}

impl StageTiming {
    pub(crate) fn new(stage: &ConvStage, parallelism: Parallelism, precision: Precision) -> Self {
        let p = parallelism.clamped_to(stage);
        let cin_tiles = div_ceil(stage.in_channels as u64, p.cpf as u64);
        let cout_tiles = div_ceil(stage.out_channels as u64, p.kpf as u64);
        let kernel_sq = (stage.kernel * stage.kernel) as u64;
        // One pass computes `h` output rows (one per partition section);
        // every output pixel of those rows needs the full channel/kernel
        // reduction.
        let cycles_per_pass =
            cin_tiles * cout_tiles * kernel_sq * stage.out_width as u64 + ROW_PASS_OVERHEAD_CYCLES;
        let passes = div_ceil(stage.out_height as u64, p.h as u64);
        // The last H-partition section starts near the bottom of the input
        // map, so with h sections the stage needs roughly ((h-1)/h) of the
        // input plus a kernel window before it can produce its first pass.
        let input_rows_needed_to_start = if p.h <= 1 {
            stage.kernel.min(stage.in_height)
        } else {
            (stage.in_height * (p.h - 1) / p.h + stage.kernel).min(stage.in_height)
        };
        let unit = UnitModel::new(stage, p, precision);
        Self {
            name: stage.name.clone(),
            passes,
            cycles_per_pass,
            input_rows_needed_to_start,
            output_rows_total: stage.upsampled_height(),
            weight_bytes: stage.params * precision.bytes() as u64,
            dsp: unit.dsp() + ADDRESS_GEN_DSP_PER_STAGE,
            ops: stage.ops,
        }
    }

    /// Pure compute cycles per frame.
    pub(crate) fn compute_cycles(&self) -> u64 {
        self.passes * self.cycles_per_pass
    }

    /// Output rows emitted per pass (scaled by the fused up-sampling).
    fn output_rows_per_pass(&self) -> f64 {
        self.output_rows_total as f64 / self.passes as f64
    }
}

/// Result of executing one branch pipeline (single copy).
#[derive(Debug, Clone)]
pub(crate) struct BranchTiming {
    pub stages: Vec<StageSim>,
    pub steady_interval_cycles: u64,
    pub first_frame_latency_cycles: u64,
    pub ops_per_frame: u64,
    pub dsp: usize,
}

/// Executes one branch pipeline and derives its steady-state interval and
/// first-frame latency.
pub(crate) fn run_branch(
    stages: &[ConvStage],
    parallelism: &[Parallelism],
    precision: Precision,
    memory: &MemoryModel,
) -> BranchTiming {
    let timings: Vec<StageTiming> = stages
        .iter()
        .zip(parallelism)
        .map(|(s, p)| StageTiming::new(s, *p, precision))
        .collect();

    let total_weight_bytes: u64 = timings.iter().map(|t| t.weight_bytes).sum();

    // Weight-streaming stalls: each stage receives a bandwidth share
    // proportional to its traffic; if streaming its weights takes longer
    // than computing the frame, the difference shows up as stall cycles.
    let mut stage_sims: Vec<StageSim> = Vec::with_capacity(timings.len());
    for timing in &timings {
        let share = if total_weight_bytes == 0 {
            1.0
        } else {
            timing.weight_bytes as f64 / total_weight_bytes as f64
        };
        let transfer = memory.transfer_cycles(timing.weight_bytes, share);
        let compute = timing.compute_cycles();
        let stall = transfer.saturating_sub(compute);
        stage_sims.push(StageSim {
            name: timing.name.clone(),
            compute_cycles: compute,
            weight_stall_cycles: stall,
            start_offset_cycles: 0,
            dsp: timing.dsp,
        });
    }

    // Pipeline fill: stage i can start once stage i-1 has emitted enough
    // rows. Emission is approximated as linear in time at the producing
    // stage's pass rate.
    let mut start_offsets: Vec<f64> = vec![0.0; timings.len()];
    for i in 1..timings.len() {
        let producer = &timings[i - 1];
        let consumer = &timings[i];
        let producer_start = start_offsets[i - 1];
        let rows_needed = consumer.input_rows_needed_to_start as f64;
        let producer_rate = producer.output_rows_per_pass()
            / (producer.cycles_per_pass as f64
                + stage_sims[i - 1].weight_stall_cycles as f64 / producer.passes as f64);
        let wait = if producer_rate > 0.0 {
            rows_needed / producer_rate
        } else {
            0.0
        };
        start_offsets[i] = producer_start + wait;
    }
    for (sim, offset) in stage_sims.iter_mut().zip(&start_offsets) {
        sim.start_offset_cycles = offset.round() as u64;
    }

    // Steady state: the frame interval is set by the busiest stage, but can
    // never beat the time needed to stream one frame's worth of weights over
    // the whole memory channel.
    let busiest = stage_sims
        .iter()
        .map(StageSim::busy_cycles)
        .max()
        .unwrap_or(1)
        .max(1);
    let weight_bound = memory.transfer_cycles(total_weight_bytes, 1.0);
    let steady_interval_cycles = busiest.max(weight_bound);

    let first_frame_latency_cycles = stage_sims
        .last()
        .map(|last| last.start_offset_cycles + last.busy_cycles())
        .unwrap_or(0);

    BranchTiming {
        ops_per_frame: timings.iter().map(|t| t.ops).sum(),
        dsp: stage_sims.iter().map(|s| s.dsp).sum(),
        stages: stage_sims,
        steady_interval_cycles,
        first_frame_latency_cycles,
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> MemoryModel {
        MemoryModel::new(12.8e9, 200e6)
    }

    #[test]
    fn quantization_penalizes_non_dividing_factors() {
        let stage = ConvStage::synthetic("s", 10, 10, 32, 32, 3, 1);
        let exact = StageTiming::new(&stage, Parallelism::new(10, 10, 1), Precision::Int8);
        let ragged = StageTiming::new(&stage, Parallelism::new(7, 7, 1), Precision::Int8);
        // 7 lanes on a 10-deep loop needs 2 tiles, same as 10 lanes would
        // need 1 — so the ragged configuration wastes cycles relative to the
        // ideal macs/lanes ratio.
        let ideal_ragged = (stage.macs as f64 / 49.0).ceil() as u64;
        assert!(ragged.compute_cycles() > ideal_ragged);
        assert_eq!(
            exact.compute_cycles(),
            (stage.macs / 100) + ROW_PASS_OVERHEAD_CYCLES * 32
        );
    }

    #[test]
    fn pipeline_fill_orders_stage_starts() {
        let stages = vec![
            ConvStage::synthetic("first", 8, 8, 64, 64, 3, 1),
            ConvStage::synthetic("second", 8, 8, 64, 64, 3, 1),
        ];
        let p = vec![Parallelism::new(8, 8, 1); 2];
        let timing = run_branch(&stages, &p, Precision::Int8, &memory());
        assert_eq!(timing.stages[0].start_offset_cycles, 0);
        assert!(timing.stages[1].start_offset_cycles > 0);
        assert!(timing.first_frame_latency_cycles > timing.steady_interval_cycles);
    }

    #[test]
    fn high_h_partition_delays_downstream_start() {
        let stages = vec![
            ConvStage::synthetic("first", 8, 8, 64, 64, 3, 1),
            ConvStage::synthetic("second", 8, 8, 64, 64, 3, 1),
        ];
        let modest = run_branch(
            &stages,
            &[Parallelism::new(8, 8, 1), Parallelism::new(8, 8, 1)],
            Precision::Int8,
            &memory(),
        );
        let aggressive = run_branch(
            &stages,
            &[Parallelism::new(8, 8, 1), Parallelism::new(8, 8, 16)],
            Precision::Int8,
            &memory(),
        );
        assert!(
            aggressive.stages[1].start_offset_cycles > modest.stages[1].start_offset_cycles,
            "a heavily H-partitioned consumer must wait for more producer rows"
        );
    }

    #[test]
    fn weight_heavy_stages_stall_on_bandwidth() {
        // A dense-like stage with huge weights and little compute must stall
        // on the weight stream.
        let fc = ConvStage::synthetic("fc", 4096, 4096, 1, 1, 1, 1);
        let timing = run_branch(
            &[fc],
            &[Parallelism::new(64, 64, 1)],
            Precision::Int16,
            &memory(),
        );
        assert!(timing.stages[0].weight_stall_cycles > 0);
        assert!(timing.steady_interval_cycles > timing.stages[0].compute_cycles);
    }

    #[test]
    fn implemented_dsp_count_exceeds_pure_mac_count() {
        let stage = ConvStage::synthetic("s", 8, 8, 32, 32, 3, 1);
        let timing = StageTiming::new(&stage, Parallelism::new(8, 8, 1), Precision::Int16);
        assert_eq!(timing.dsp, 64 + ADDRESS_GEN_DSP_PER_STAGE);
    }
}
