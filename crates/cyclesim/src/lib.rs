//! Cycle-level simulator for F-CAD-style layer-pipelined accelerators.
//!
//! The paper validates its analytical performance model against board-level
//! implementations (Figs. 6 and 7). This reproduction has no FPGA board, so
//! this crate plays that role: it executes an accelerator configuration in a
//! discrete-time simulation that models effects the analytical model ignores —
//!
//! * **tile quantization**: loops are executed in `⌈dim / factor⌉` steps, so
//!   parallelism factors that do not divide the layer dimensions lose cycles;
//! * **pipeline fill and drain**: downstream stages cannot start until
//!   enough rows of their input feature map have been produced;
//! * **per-tile control overhead**: each row-tile pays a fixed pipeline
//!   set-up cost;
//! * **weight-streaming stalls**: DNN parameters are fetched from a shared,
//!   bandwidth-limited external memory; a stage stalls when its next weight
//!   tile has not arrived.
//!
//! The result is a slightly pessimistic, configuration-sensitive reference
//! against which the analytical estimates of [`fcad_accel`] deviate by a few
//! percent — the same role silicon plays in the paper.
//!
//! # Example
//!
//! ```
//! use fcad_accel::{BranchConfig, ConvStage, Parallelism, StageConfig};
//! use fcad_cyclesim::Simulator;
//! use fcad_nnir::Precision;
//!
//! let stages = vec![ConvStage::synthetic("conv", 16, 16, 64, 64, 3, 1)];
//! let config = BranchConfig::new(1, vec![StageConfig::new(Parallelism::new(8, 8, 2))]);
//! let sim = Simulator::new(200e6, 12.8e9);
//! let result = sim.simulate_branch(&stages, &config, Precision::Int8);
//! assert!(result.fps > 0.0);
//! assert!(result.steady_interval_cycles >= 16 * 64 * 64 * 9 / (8 * 8 * 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod memory;
mod result;
mod simulator;

pub use memory::MemoryModel;
pub use result::{AcceleratorSim, BranchSim, StageSim};
pub use simulator::Simulator;
