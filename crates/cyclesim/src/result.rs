//! Simulation result types.

use serde::{Deserialize, Serialize};

/// Per-stage simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSim {
    /// Stage name.
    pub name: String,
    /// Cycles the stage spends computing one frame (tile-quantized, with
    /// per-tile overhead).
    pub compute_cycles: u64,
    /// Cycles the stage spends stalled waiting for weights from external
    /// memory.
    pub weight_stall_cycles: u64,
    /// Cycles from frame start until this stage can begin (pipeline fill).
    pub start_offset_cycles: u64,
    /// DSPs occupied by one copy of the stage in the simulated
    /// implementation (includes address-generation overhead).
    pub dsp: usize,
}

impl StageSim {
    /// Total cycles the stage occupies per frame (compute plus stalls).
    pub fn busy_cycles(&self) -> u64 {
        self.compute_cycles + self.weight_stall_cycles
    }
}

/// Simulation outcome of one branch pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchSim {
    /// Branch name.
    pub name: String,
    /// Pipeline copies instantiated (batch size).
    pub batch_size: usize,
    /// Steady-state interval between completed frames of a single pipeline
    /// copy, in cycles.
    pub steady_interval_cycles: u64,
    /// Latency of the first frame through the pipeline (fill included), in
    /// cycles.
    pub first_frame_latency_cycles: u64,
    /// Measured throughput in frames per second (all copies).
    pub fps: f64,
    /// Measured hardware efficiency (Eq. 3 with measured throughput and
    /// implemented DSP count).
    pub efficiency: f64,
    /// DSPs occupied by the branch (all copies, including implementation
    /// overhead).
    pub dsp: usize,
    /// Operations per frame.
    pub ops_per_frame: u64,
    /// Per-stage details (single copy).
    pub stages: Vec<StageSim>,
}

/// Simulation outcome of a complete multi-branch accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSim {
    /// Per-branch results in branch order.
    pub branches: Vec<BranchSim>,
    /// Throughput of the slowest branch.
    pub min_fps: f64,
    /// Overall efficiency across branches.
    pub overall_efficiency: f64,
    /// Total DSPs of the simulated implementation.
    pub dsp: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_cycles_add_compute_and_stall() {
        let stage = StageSim {
            name: "s".into(),
            compute_cycles: 100,
            weight_stall_cycles: 20,
            start_offset_cycles: 5,
            dsp: 4,
        };
        assert_eq!(stage.busy_cycles(), 120);
    }
}
