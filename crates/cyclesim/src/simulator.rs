//! Top-level simulator API.

use crate::engine;
use crate::memory::MemoryModel;
use crate::result::{AcceleratorSim, BranchSim};
use fcad_accel::{
    efficiency, AcceleratorConfig, BranchConfig, ConvStage, ElasticAccelerator, Parallelism,
};
use fcad_nnir::Precision;
use serde::{Deserialize, Serialize};

/// Cycle-level simulator for layer-pipelined accelerators.
///
/// A simulator is parameterized by the clock frequency and the external
/// memory bandwidth of the target platform; it then executes branch
/// pipelines under concrete configurations and reports measured throughput
/// and efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Simulator {
    frequency_hz: f64,
    memory: MemoryModel,
}

impl Simulator {
    /// Creates a simulator for a platform clocked at `frequency_hz` with
    /// `bandwidth_bytes_per_sec` of external memory bandwidth.
    pub fn new(frequency_hz: f64, bandwidth_bytes_per_sec: f64) -> Self {
        Self {
            frequency_hz,
            memory: MemoryModel::new(bandwidth_bytes_per_sec, frequency_hz),
        }
    }

    /// Creates a simulator matching an [`ElasticAccelerator`]'s platform
    /// parameters.
    pub fn for_accelerator(accelerator: &ElasticAccelerator, bandwidth_bytes_per_sec: f64) -> Self {
        Self::new(accelerator.frequency_hz(), bandwidth_bytes_per_sec)
    }

    /// Clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// The external memory model.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Simulates one branch pipeline under a branch configuration.
    ///
    /// Stage configurations beyond the stage count are ignored; missing ones
    /// default to unit parallelism, so the method never fails — the
    /// analytical model is the place where configuration mismatches are
    /// treated as errors.
    pub fn simulate_branch(
        &self,
        stages: &[ConvStage],
        config: &BranchConfig,
        precision: Precision,
    ) -> BranchSim {
        let parallelism: Vec<Parallelism> = (0..stages.len())
            .map(|i| {
                config
                    .stages
                    .get(i)
                    .map(|s| s.parallelism)
                    .unwrap_or_else(Parallelism::unit)
            })
            .collect();
        let timing = engine::run_branch(stages, &parallelism, precision, &self.memory);
        let batch = config.batch_size.max(1);
        let fps = if timing.steady_interval_cycles == 0 {
            0.0
        } else {
            batch as f64 * self.frequency_hz / timing.steady_interval_cycles as f64
        };
        let dsp = timing.dsp * batch;
        let eff = efficiency(
            timing.ops_per_frame as f64 * fps,
            dsp,
            precision.ops_per_multiplier(),
            self.frequency_hz,
        );
        BranchSim {
            name: stages
                .first()
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "empty".to_owned()),
            batch_size: batch,
            steady_interval_cycles: timing.steady_interval_cycles,
            first_frame_latency_cycles: timing.first_frame_latency_cycles,
            fps,
            efficiency: eff,
            dsp,
            ops_per_frame: timing.ops_per_frame,
            stages: timing.stages,
        }
    }

    /// Simulates a complete multi-branch accelerator under a configuration.
    ///
    /// Branch configurations beyond the architecture's branch count are
    /// ignored; missing ones default to a minimal configuration.
    pub fn simulate_accelerator(
        &self,
        accelerator: &ElasticAccelerator,
        config: &AcceleratorConfig,
    ) -> AcceleratorSim {
        let branches: Vec<BranchSim> = accelerator
            .branches()
            .iter()
            .enumerate()
            .map(|(i, pipeline)| {
                let fallback = BranchConfig::minimal(pipeline.stage_count());
                let branch_cfg = config.branches.get(i).unwrap_or(&fallback);
                let mut sim = self.simulate_branch(pipeline.stages(), branch_cfg, config.precision);
                sim.name = pipeline.name().to_owned();
                sim
            })
            .collect();
        let min_fps = branches.iter().map(|b| b.fps).fold(f64::INFINITY, f64::min);
        let min_fps = if min_fps.is_finite() { min_fps } else { 0.0 };
        let dsp: usize = branches.iter().map(|b| b.dsp).sum();
        let total_ops_per_sec: f64 = branches
            .iter()
            .map(|b| b.ops_per_frame as f64 * b.fps)
            .sum();
        let overall_efficiency = efficiency(
            total_ops_per_sec,
            dsp,
            config.precision.ops_per_multiplier(),
            self.frequency_hz,
        );
        AcceleratorSim {
            branches,
            min_fps,
            overall_efficiency,
            dsp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_accel::{BranchPipeline, StageConfig};

    fn stages() -> Vec<ConvStage> {
        vec![
            ConvStage::synthetic("conv1", 8, 16, 64, 64, 3, 1),
            ConvStage::synthetic("conv2", 16, 16, 64, 64, 3, 1),
        ]
    }

    fn config(lanes: usize, batch: usize) -> BranchConfig {
        let s = stages();
        BranchConfig::new(
            batch,
            s.iter()
                .map(|st| StageConfig::new(Parallelism::for_target(st, lanes)))
                .collect(),
        )
    }

    #[test]
    fn simulated_fps_is_close_to_but_below_the_analytical_estimate() {
        let s = stages();
        let cfg = config(128, 1);
        let sim = Simulator::new(200e6, 12.8e9);
        let measured = sim.simulate_branch(&s, &cfg, Precision::Int8);

        let pipeline = BranchPipeline::new("b", s);
        let analytical = pipeline
            .evaluate(
                &cfg,
                Precision::Int8,
                200e6,
                &fcad_accel::CostModel::default(),
            )
            .unwrap();

        assert!(measured.fps > 0.0);
        assert!(
            measured.fps <= analytical.fps,
            "simulation must not beat the ideal analytical model"
        );
        let error = (analytical.fps - measured.fps) / measured.fps;
        assert!(
            error < 0.15,
            "analytical vs simulated FPS differ by {:.1}% — model too loose",
            error * 100.0
        );
    }

    #[test]
    fn batch_scales_simulated_fps() {
        let s = stages();
        let sim = Simulator::new(200e6, 12.8e9);
        let one = sim.simulate_branch(&s, &config(64, 1), Precision::Int8);
        let two = sim.simulate_branch(&s, &config(64, 2), Precision::Int8);
        assert!((two.fps / one.fps - 2.0).abs() < 1e-9);
        assert_eq!(two.dsp, 2 * one.dsp);
    }

    #[test]
    fn missing_stage_configs_default_to_unit_parallelism() {
        let s = stages();
        let sim = Simulator::new(200e6, 12.8e9);
        let result = sim.simulate_branch(&s, &BranchConfig::new(1, vec![]), Precision::Int8);
        assert_eq!(result.stages.len(), 2);
        assert!(result.fps > 0.0);
    }

    #[test]
    fn accelerator_simulation_covers_every_branch() {
        let acc = ElasticAccelerator::new(
            "two-branch",
            vec![
                BranchPipeline::new("a", vec![ConvStage::synthetic("a1", 8, 8, 32, 32, 3, 1)]),
                BranchPipeline::new("b", stages()),
            ],
            200e6,
        );
        let cfg = AcceleratorConfig::new(
            vec![BranchConfig::minimal(1), config(64, 1)],
            Precision::Int8,
        );
        let sim = Simulator::new(200e6, 12.8e9).simulate_accelerator(&acc, &cfg);
        assert_eq!(sim.branches.len(), 2);
        assert_eq!(sim.branches[0].name, "a");
        assert!(sim.min_fps <= sim.branches[0].fps);
        assert!(sim.min_fps <= sim.branches[1].fps);
        assert!(sim.overall_efficiency > 0.0);
    }
}
