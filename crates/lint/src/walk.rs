//! Deterministic repo walk: every `.rs` file under the root, sorted, with
//! the vendored stubs, build artifacts, and the linter's own violation
//! fixtures excluded.

use std::fs;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", ".github"];

/// Path prefixes (repo-relative, forward slashes) excluded from scanning:
/// the fixture snippets exist to violate the rules.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// Collects every scannable `.rs` file under `root`, as repo-relative
/// forward-slash paths, sorted for deterministic output.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = relative(root, &path);
                if !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    files.push(rel);
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, with forward slashes on every platform.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_of_this_crate_finds_sources_not_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crate lives two levels under the repo root");
        let files = rust_files(root).expect("repo is readable");
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(!files.iter().any(|f| f.contains("lint/tests/fixtures")));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be deterministic");
    }
}
