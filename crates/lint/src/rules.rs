//! The rule engine and the token-level rules.
//!
//! Every rule is a lexical approximation grounded in a real repo invariant
//! (see README § Correctness tooling). Rules run over the non-test token
//! stream of the files in their scope; a diagnostic on line `L` is
//! suppressed by an `allow(<rule>): <reason>` directive (behind the
//! `fcad-lint` comment marker) on line `L` or `L − 1`, and the reason
//! string is mandatory.

use crate::lexer::{Allow, LexedFile, Token, TokenKind};

/// One finding, pinned to a repo-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired (a name from [`RULES`], or the engine-level
    /// `allow-syntax` / `unused-allow` checks).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

/// Names of the six shipped rules, in documentation order.
pub const RULES: [&str; 6] = [
    "wall-clock",
    "unordered-iteration",
    "unseeded-rng",
    "panic-policy",
    "lossy-cast",
    "schema-append-only",
];

/// Engine-level checks that police the escape hatch itself.
pub const ENGINE_CHECKS: [&str; 2] = ["allow-syntax", "unused-allow"];

/// Integer and float type names a cast to which is potentially lossy.
const NUMERIC_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "f32",
];
// `f64` handled separately below so the message can say why it still counts.

/// Directive-to-rule aliases: `allow(panic)` reads better at a panic site
/// than `allow(panic-policy)`; both are accepted.
fn canonical(rule: &str) -> &str {
    match rule {
        "panic" => "panic-policy",
        other => other,
    }
}

/// True when `path` (repo-relative, forward slashes) is inside one of the
/// given directory prefixes.
fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Scope of the deterministic simulation / DSE result paths: the crates
/// whose outputs are pinned byte-for-byte by golden tests. `crates/obs`
/// qualifies because trace files are part of the fixed-seed ⇒
/// byte-identical contract (events are stamped with sim-time only).
const DETERMINISTIC_CRATES: [&str; 4] = [
    "crates/dse/src/",
    "crates/serve/src/",
    "crates/cyclesim/src/",
    "crates/obs/src/",
];

/// Runs every token-level rule over one lexed file and applies the allow
/// directives. `path` must be repo-relative with forward slashes.
pub fn check_file(path: &str, lexed: &mut LexedFile) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    wall_clock(path, &lexed.tokens, &mut raw);
    unordered_iteration(path, &lexed.tokens, &mut raw);
    unseeded_rng(path, &lexed.tokens, &mut raw);
    panic_policy(path, &lexed.tokens, &mut raw);
    lossy_cast(path, &lexed.tokens, &mut raw);
    apply_allows(path, raw, &mut lexed.allows)
}

/// Suppresses diagnostics covered by a well-formed allow on the same or the
/// preceding line, then reports malformed and unused directives.
fn apply_allows(path: &str, raw: Vec<Diagnostic>, allows: &mut [Allow]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for diag in raw {
        let covered = allows.iter_mut().find(|a| {
            a.malformed.is_none()
                && canonical(&a.rule) == diag.rule
                && (a.line == diag.line || a.line + 1 == diag.line)
        });
        match covered {
            Some(allow) => allow.used = true,
            None => out.push(diag),
        }
    }
    for allow in allows.iter() {
        if let Some(why) = &allow.malformed {
            out.push(Diagnostic {
                rule: "allow-syntax",
                file: path.to_owned(),
                line: allow.line,
                message: format!("malformed fcad-lint directive: {why}"),
            });
        } else if !allow.used {
            out.push(Diagnostic {
                rule: "unused-allow",
                file: path.to_owned(),
                line: allow.line,
                message: format!(
                    "allow({}) suppresses nothing on line {} or {} — remove it (stale \
                     suppressions hide future regressions)",
                    allow.rule,
                    allow.line,
                    allow.line + 1
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// `wall-clock`: no `Instant::now()` / `SystemTime` in the deterministic
/// simulation and DSE result paths — wall-clock reads make fixed-seed
/// outputs differ run-over-run (the bug this rule was born from lived at
/// `crates/dse/src/crossbranch.rs:219`).
fn wall_clock(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !in_scope(path, &DETERMINISTIC_CRATES) {
        return;
    }
    for (i, token) in tokens.iter().enumerate() {
        if token.in_test {
            continue;
        }
        if token.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(Diagnostic {
                rule: "wall-clock",
                file: path.to_owned(),
                line: token.line,
                message: "Instant::now() in a deterministic result path — inject elapsed time \
                          (see fcad_dse::ElapsedTimer) or annotate"
                    .to_owned(),
            });
        }
        if token.is_ident("SystemTime") {
            out.push(Diagnostic {
                rule: "wall-clock",
                file: path.to_owned(),
                line: token.line,
                message: "SystemTime in a deterministic result path — wall-clock time must not \
                          reach simulation or DSE results"
                    .to_owned(),
            });
        }
    }
}

/// `unordered-iteration`: no `HashMap` / `HashSet` in `crates/serve`,
/// `crates/dse` and `crates/obs` — their iteration order is randomized per
/// process, which breaks fixed-seed ⇒ bit-identical reports and trace
/// files. Use `BTreeMap` or a sorted `Vec`.
fn unordered_iteration(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !in_scope(
        path,
        &["crates/serve/src/", "crates/dse/src/", "crates/obs/src/"],
    ) {
        return;
    }
    for token in tokens {
        if token.in_test {
            continue;
        }
        if token.is_ident("HashMap") || token.is_ident("HashSet") {
            out.push(Diagnostic {
                rule: "unordered-iteration",
                file: path.to_owned(),
                line: token.line,
                message: format!(
                    "{} in a deterministic crate — iteration order is nondeterministic; use \
                     BTreeMap/BTreeSet or a sorted Vec",
                    token.text
                ),
            });
        }
    }
}

/// `unseeded-rng`: every RNG construction in `crates/serve` must derive its
/// seed from the scenario seed through the shared SplitMix64 `mix()`
/// finalizer (or the `session_seed` wrapper over it); ambient entropy
/// (`thread_rng`, `from_entropy`) is banned outright.
fn unseeded_rng(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !in_scope(path, &["crates/serve/src/"]) {
        return;
    }
    for (i, token) in tokens.iter().enumerate() {
        if token.in_test || token.kind != TokenKind::Ident {
            continue;
        }
        match token.text.as_str() {
            "thread_rng" | "from_entropy" | "from_os_rng" | "random" if is_call(tokens, i) => {
                out.push(Diagnostic {
                    rule: "unseeded-rng",
                    file: path.to_owned(),
                    line: token.line,
                    message: format!(
                        "{}() draws ambient entropy — serve RNGs must be seeded from the \
                         scenario seed via mix()",
                        token.text
                    ),
                });
            }
            "seed_from_u64" if is_call(tokens, i) => {
                let args = call_args(tokens, i + 1);
                let derived = args
                    .iter()
                    .any(|t| t.is_ident("mix") || t.is_ident("session_seed"));
                if !derived {
                    out.push(Diagnostic {
                        rule: "unseeded-rng",
                        file: path.to_owned(),
                        line: token.line,
                        message: "seed_from_u64 argument does not go through mix()/session_seed \
                                  — independent streams must use the shared SplitMix64 finalizer"
                            .to_owned(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// `panic-policy`: library code (any `crates/*/src/` file outside `bin/`)
/// must not `unwrap()` or `panic!`-family — return `Result`, use
/// `expect("<invariant>")` with a message naming the invariant, or annotate
/// the intentional remainder.
fn panic_policy(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let library = (path.starts_with("crates/") || path.starts_with("src/"))
        && path.contains("/src/")
        && !path.contains("/bin/");
    if !library {
        return;
    }
    for (i, token) in tokens.iter().enumerate() {
        if token.in_test || token.kind != TokenKind::Ident {
            continue;
        }
        let preceded_by_dot = i > 0 && tokens[i - 1].is_punct('.');
        match token.text.as_str() {
            "unwrap"
                if preceded_by_dot
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(')')) =>
            {
                out.push(Diagnostic {
                    rule: "panic-policy",
                    file: path.to_owned(),
                    line: token.line,
                    message: "unwrap() in library code — return Result, use \
                              expect(\"<invariant>\"), or annotate with a reason"
                        .to_owned(),
                });
            }
            "expect" if preceded_by_dot && is_call(tokens, i) => {
                let args = call_args(tokens, i + 1);
                let empty_literal =
                    args.len() == 1 && args[0].kind == TokenKind::Str && args[0].text.is_empty();
                if empty_literal {
                    out.push(Diagnostic {
                        rule: "panic-policy",
                        file: path.to_owned(),
                        line: token.line,
                        message: "expect(\"\") carries no invariant — name the condition that \
                                  makes the value present"
                            .to_owned(),
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                out.push(Diagnostic {
                    rule: "panic-policy",
                    file: path.to_owned(),
                    line: token.line,
                    message: format!(
                        "{}! in library code — return an error, or annotate why this is \
                         unreachable by construction",
                        token.text
                    ),
                });
            }
            _ => {}
        }
    }
}

/// `lossy-cast`: no bare `as` numeric casts in `crates/serve` or
/// `crates/obs` — every conversion on a report or trace path must go
/// through the checked helpers in the crate's `cast.rs` (which
/// debug-assert losslessness) or carry an annotation saying why the cast
/// cannot lose information.
fn lossy_cast(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !in_scope(path, &["crates/serve/src/", "crates/obs/src/"]) {
        return;
    }
    for (i, token) in tokens.iter().enumerate() {
        if token.in_test || !token.is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        let lossy = NUMERIC_TYPES.contains(&target.text.as_str()) || target.is_ident("f64");
        if lossy {
            out.push(Diagnostic {
                rule: "lossy-cast",
                file: path.to_owned(),
                line: token.line,
                message: format!(
                    "bare `as {}` cast — use the checked helpers in serve::cast (u64 → f64 is \
                     exact only below 2^53; float → int truncates) or annotate",
                    target.text
                ),
            });
        }
    }
}

/// True when the ident at `i` is immediately called: `ident(`.
fn is_call(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// The tokens between the balanced parens opening at `open` (which must
/// point at `(`).
fn call_args(tokens: &[Token], open: usize) -> &[Token] {
    let mut depth = 0usize;
    for (j, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct('(') {
            depth += 1;
        } else if token.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return &tokens[open + 1..j];
            }
        }
    }
    &tokens[open..open]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(path: &str, source: &str) -> Vec<Diagnostic> {
        let mut lexed = lex(source);
        check_file(path, &mut lexed)
    }

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let source = "// fcad-lint: allow(panic): bounded by construction\n\
                      let x = v.unwrap();\n\
                      let y = w.unwrap(); // fcad-lint: allow(panic): also fine\n";
        assert!(diags("crates/serve/src/x.rs", source).is_empty());
    }

    #[test]
    fn allow_without_reason_is_itself_a_diagnostic() {
        let source = "let x = v.unwrap(); // fcad-lint: allow(panic)\n";
        let found = diags("crates/serve/src/x.rs", source);
        assert_eq!(found.len(), 2, "{found:?}"); // the unwrap AND the bad directive
        assert!(found.iter().any(|d| d.rule == "allow-syntax"));
        assert!(found.iter().any(|d| d.rule == "panic-policy"));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let found = diags(
            "crates/serve/src/x.rs",
            "// fcad-lint: allow(wall-clock): nothing here needs it\nlet a = 1;\n",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unused-allow");
    }

    #[test]
    fn rules_respect_their_crate_scopes() {
        // A HashMap in nnir (out of scope) is fine; in serve it is not.
        let source = "use std::collections::HashMap;\n";
        assert!(diags("crates/nnir/src/graph.rs", source).is_empty());
        assert_eq!(diags("crates/serve/src/engine.rs", source).len(), 1);
    }

    #[test]
    fn obs_is_inside_the_determinism_scopes() {
        // Trace files are part of the fixed-seed contract: the wall-clock,
        // iteration-order and lossy-cast rules all police crates/obs.
        assert_eq!(
            diags("crates/obs/src/window.rs", "let t = SystemTime::now();\n").len(),
            1
        );
        assert_eq!(
            diags(
                "crates/obs/src/chrome.rs",
                "use std::collections::HashMap;\n"
            )
            .len(),
            1
        );
        assert_eq!(
            diags("crates/obs/src/window.rs", "let x = n as f64;\n").len(),
            1
        );
    }

    #[test]
    fn engine_rebuild_modules_are_inside_the_determinism_scopes() {
        // The engine rebuild added calendar.rs, parallel.rs and
        // reference.rs under crates/serve/src, the deadline work added
        // deadline.rs, and the windowed engine added window.rs; the
        // directory-prefix scope must keep policing them — a bit-identity
        // bug from a stray HashMap or bare cast in the hot path is exactly
        // what these rules exist to catch.
        for module in [
            "crates/serve/src/calendar.rs",
            "crates/serve/src/deadline.rs",
            "crates/serve/src/parallel.rs",
            "crates/serve/src/reference.rs",
            "crates/serve/src/window.rs",
        ] {
            let unordered = diags(module, "use std::collections::HashMap;\n");
            assert_eq!(unordered.len(), 1, "{module}: {unordered:?}");
            assert_eq!(unordered[0].rule, "unordered-iteration");
            let lossy = diags(module, "let x = n as f64;\n");
            assert_eq!(lossy.len(), 1, "{module}: {lossy:?}");
            assert_eq!(lossy[0].rule, "lossy-cast");
        }
    }

    #[test]
    fn test_code_is_exempt() {
        let source = "#[cfg(test)]\nmod tests {\n fn f() { let x = v.unwrap() as u64; }\n}\n";
        assert!(diags("crates/serve/src/x.rs", source).is_empty());
    }
}
