//! `fcad-lint` — the repo-native static-analysis gate.
//!
//! Enforces the determinism, panic-policy, and report-schema invariants the
//! F-CAD reproduction's golden tests rely on, at the source level (see
//! README § Correctness tooling for the rule table and the allow syntax).
//! The library surface exists so the test battery can drive the same engine
//! the `fcad-lint` binary runs in CI.

pub mod lexer;
pub mod rules;
pub mod schema;
pub mod walk;

use rules::Diagnostic;
use std::fs;
use std::path::Path;

/// The outcome of linting a tree.
#[derive(Debug)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Every finding, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as one machine-readable JSON line (insertion
    /// order, stable across runs — mirrors the serve report convention).
    pub fn to_json_line(&self) -> String {
        let diags: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                    escape(d.rule),
                    escape(&d.file),
                    d.line,
                    escape(&d.message)
                )
            })
            .collect();
        format!(
            "{{\"tool\":\"fcad-lint\",\"version\":1,\"files_checked\":{},\"diagnostics\":[{}]}}",
            self.files_checked,
            diags.join(",")
        )
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Lints one in-memory source file under a virtual repo-relative path.
/// (Token rules only — the schema rule needs the manifest; see
/// [`schema::check_schema`].)
pub fn lint_source(virtual_path: &str, source: &str) -> Vec<Diagnostic> {
    let mut lexed = lexer::lex(source);
    rules::check_file(virtual_path, &mut lexed)
}

/// Lints the whole tree under `root`: every token rule over every
/// scannable file, plus the schema rule over the report emitter and its
/// manifest.
pub fn lint_tree(root: &Path) -> std::io::Result<LintReport> {
    let files = walk::rust_files(root)?;
    let mut diagnostics = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        diagnostics.extend(lint_source(rel, &source));
    }
    diagnostics.extend(schema_rule(root)?);
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(LintReport {
        files_checked: files.len(),
        diagnostics,
    })
}

/// Tree-level driver of `schema-append-only`: reads the emitter and the
/// manifest, skips silently when the tree has no serve report (fixture
/// roots), fails when the emitter exists but the manifest is gone.
fn schema_rule(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let report = root.join(schema::REPORT_PATH);
    if !report.exists() {
        return Ok(Vec::new());
    }
    let report_source = fs::read_to_string(report)?;
    let manifest = root.join(schema::MANIFEST_PATH);
    if !manifest.exists() {
        return Ok(vec![Diagnostic {
            rule: "schema-append-only",
            file: schema::MANIFEST_PATH.to_owned(),
            line: 1,
            message: format!(
                "manifest {} is missing while {} emits the serve report — restore it \
                 (the schema gate cannot run without its baseline)",
                schema::MANIFEST_PATH,
                schema::REPORT_PATH
            ),
        }]);
    }
    Ok(schema::check_schema(
        &report_source,
        &fs::read_to_string(manifest)?,
    ))
}
