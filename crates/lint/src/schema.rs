//! `schema-append-only`: statically extracts the JSON key emission order
//! from `ServeReport::to_json_line` (crates/serve/src/report.rs) and
//! compares it against the checked-in manifest `schema/serve_report.keys`.
//!
//! The serve report's JSON line is an append-only format: PRs 3–5 each
//! appended their fields at the end of the object so consumers that index
//! existing keys keep working. The golden tests enforce that convention at
//! runtime; this rule enforces it at the source level — any reorder,
//! removal, or unrecorded addition of a key fails the lint, and a
//! legitimate append shows up as an append-only diff of the manifest.

use crate::lexer::{LexedFile, TokenKind};
use crate::rules::Diagnostic;

/// The manifest path, relative to the repo root.
pub const MANIFEST_PATH: &str = "schema/serve_report.keys";

/// The emitting source file, relative to the repo root.
pub const REPORT_PATH: &str = "crates/serve/src/report.rs";

/// `JsonObject` builder methods that take a key as their first argument.
const KEYED_METHODS: [&str; 4] = ["str", "u64", "f64", "raw"];

/// One build chain: the keys pushed between `JsonObject::new()` and
/// `.render()`, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Keys in emission order.
    pub keys: Vec<String>,
    /// Line of the `JsonObject::new()` that opens the chain.
    pub line: u32,
}

/// Extracts every `JsonObject` build chain inside `fn to_json_line`, in
/// source order (sub-object chains first, the top-level report chain last —
/// mirroring how the function is written).
pub fn extract_chains(lexed: &LexedFile) -> Vec<Chain> {
    let tokens = &lexed.tokens;
    // Locate `fn to_json_line` and its block.
    let mut start = None;
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.is_ident("to_json_line"))
        {
            start = Some(i);
            break;
        }
    }
    let Some(mut i) = start else {
        return Vec::new();
    };
    while i < tokens.len() && !tokens[i].is_punct('{') {
        i += 1;
    }
    let mut depth = 0usize;
    let mut end = i;
    while end < tokens.len() {
        if tokens[end].is_punct('{') {
            depth += 1;
        } else if tokens[end].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        end += 1;
    }

    let mut chains = Vec::new();
    let mut current: Option<Chain> = None;
    let mut j = i;
    while j < end {
        let t = &tokens[j];
        if t.is_ident("JsonObject")
            && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(j + 3).is_some_and(|n| n.is_ident("new"))
        {
            if let Some(done) = current.take() {
                chains.push(done);
            }
            current = Some(Chain {
                keys: Vec::new(),
                line: t.line,
            });
            j += 4;
            continue;
        }
        if let Some(chain) = current.as_mut() {
            // `.method("key", …)` — key is the first argument when it is a
            // string literal (branch/shard field names are literals here).
            if t.is_punct('.')
                && tokens
                    .get(j + 1)
                    .is_some_and(|m| KEYED_METHODS.contains(&m.text.as_str()))
                && tokens.get(j + 2).is_some_and(|p| p.is_punct('('))
                && tokens.get(j + 3).is_some_and(|k| k.kind == TokenKind::Str)
            {
                chain.keys.push(tokens[j + 3].text.clone());
                j += 4;
                continue;
            }
            if t.is_punct('.') && tokens.get(j + 1).is_some_and(|m| m.is_ident("render")) {
                chains.push(current.take().unwrap_or(Chain {
                    keys: Vec::new(),
                    line: t.line,
                }));
                j += 2;
                continue;
            }
        }
        j += 1;
    }
    if let Some(done) = current.take() {
        chains.push(done);
    }
    chains
}

/// One named block of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestBlock {
    /// Human-readable object name (after `=`).
    pub name: String,
    /// Keys in recorded order.
    pub keys: Vec<String>,
}

/// Parses the manifest: `#` comments and blank lines ignored, `= name`
/// opens a block, every other line is a key of the current block.
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestBlock>, String> {
    let mut blocks: Vec<ManifestBlock> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('=') {
            blocks.push(ManifestBlock {
                name: name.trim().to_owned(),
                keys: Vec::new(),
            });
        } else {
            match blocks.last_mut() {
                Some(block) => block.keys.push(line.to_owned()),
                None => {
                    return Err(format!(
                        "line {}: key `{line}` before any `= <object>` header",
                        n + 1
                    ))
                }
            }
        }
    }
    Ok(blocks)
}

/// Compares the extracted chains against the manifest and reports every
/// divergence as a `schema-append-only` diagnostic against `report_path`.
pub fn compare(chains: &[Chain], manifest: &[ManifestBlock], report_path: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut diag = |line: u32, message: String| {
        out.push(Diagnostic {
            rule: "schema-append-only",
            file: report_path.to_owned(),
            line,
            message,
        });
    };
    if chains.len() != manifest.len() {
        diag(
            1,
            format!(
                "to_json_line builds {} JsonObject chain(s) but the manifest records {} — \
                 update {MANIFEST_PATH} (append-only) to match",
                chains.len(),
                manifest.len()
            ),
        );
        return out;
    }
    for (chain, block) in chains.iter().zip(manifest) {
        let shared = chain.keys.len().min(block.keys.len());
        for k in 0..shared {
            if chain.keys[k] != block.keys[k] {
                diag(
                    chain.line,
                    format!(
                        "object `{}` key #{}: source emits \"{}\" where the manifest records \
                         \"{}\" — non-append schema edit (keys may only be added at the END \
                         of a block)",
                        block.name,
                        k + 1,
                        chain.keys[k],
                        block.keys[k]
                    ),
                );
                return out; // one precise divergence beats a cascade
            }
        }
        if chain.keys.len() > block.keys.len() {
            diag(
                chain.line,
                format!(
                    "object `{}` appends unrecorded key(s) {:?} — append them to \
                     {MANIFEST_PATH} in the same change so the schema diff is visible",
                    block.name,
                    &chain.keys[shared..]
                ),
            );
        } else if block.keys.len() > chain.keys.len() {
            diag(
                chain.line,
                format!(
                    "object `{}` no longer emits manifest key(s) {:?} — removing report \
                     fields breaks consumers; this schema is append-only",
                    block.name,
                    &block.keys[shared..]
                ),
            );
        }
    }
    out
}

/// Runs the whole rule against in-memory sources (the tree-level driver
/// reads the two files and calls this; fixture tests call it directly).
pub fn check_schema(report_source: &str, manifest_text: &str) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(report_source);
    let chains = extract_chains(&lexed);
    if chains.is_empty() {
        return vec![Diagnostic {
            rule: "schema-append-only",
            file: REPORT_PATH.to_owned(),
            line: 1,
            message: "no JsonObject build chains found in fn to_json_line — the extractor \
                      and the emitter have drifted apart"
                .to_owned(),
        }];
    }
    match parse_manifest(manifest_text) {
        Ok(manifest) => compare(&chains, &manifest, REPORT_PATH),
        Err(why) => vec![Diagnostic {
            rule: "schema-append-only",
            file: MANIFEST_PATH.to_owned(),
            line: 1,
            message: format!("unparseable manifest: {why}"),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMITTER: &str = r#"
        impl R {
            pub fn to_json_line(&self) -> String {
                let rows: Vec<String> = self
                    .rows
                    .iter()
                    .map(|r| JsonObject::new().str("name", &r.name).u64("count", r.count).render())
                    .collect();
                JsonObject::new()
                    .str("scenario", &self.scenario)
                    .u64("issued", self.issued)
                    .raw("rows", &array(&rows))
                    .render()
            }
        }
    "#;

    #[test]
    fn extracts_chains_in_source_order() {
        let chains = extract_chains(&crate::lexer::lex(EMITTER));
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].keys, ["name", "count"]);
        assert_eq!(chains[1].keys, ["scenario", "issued", "rows"]);
    }

    #[test]
    fn matching_manifest_is_clean() {
        let manifest = "# comment\n= row\nname\ncount\n\n= report\nscenario\nissued\nrows\n";
        assert!(check_schema(EMITTER, manifest).is_empty());
    }

    #[test]
    fn reorder_and_removal_and_unrecorded_append_all_fail() {
        let reordered = "= row\ncount\nname\n= report\nscenario\nissued\nrows\n";
        let removed = "= row\nname\ncount\n= report\nscenario\nissued\nrows\nextra\n";
        let unrecorded = "= row\nname\n= report\nscenario\nissued\nrows\n";
        for manifest in [reordered, removed, unrecorded] {
            let found = check_schema(EMITTER, manifest);
            assert_eq!(found.len(), 1, "{manifest:?} → {found:?}");
            assert_eq!(found[0].rule, "schema-append-only");
        }
    }
}
