//! A lightweight Rust lexer for lint rules.
//!
//! This is deliberately *not* a full Rust parser (no `syn` — the workspace
//! is offline): it strips comments and string literals, yields
//! identifier/number/punctuation tokens with line numbers, collects
//! `fcad-lint` allow directives from the stripped line comments, and marks
//! tokens that live inside `#[cfg(test)]` modules or `#[test]` functions so
//! rules can restrict themselves to non-test code. Rules built on it are
//! lexical approximations — sound for this repo's idioms, not for arbitrary
//! Rust (e.g. a type alias `use Instant as I` would evade `wall-clock`).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String, raw-string, byte-string or char literal; `text` holds the
    /// raw (unprocessed) content between the delimiters.
    Str,
    /// Numeric literal (loosely lexed; suffixes and exponents included).
    Num,
    /// One punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what it holds per kind).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]` module or a
    /// `#[test]` function.
    pub in_test: bool,
}

impl Token {
    fn new(kind: TokenKind, text: String, line: u32) -> Self {
        Self {
            kind,
            text,
            line,
            in_test: false,
        }
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// One parsed allow directive: `allow(<rule>): <reason>` after the
/// `fcad-lint` comment marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive comment sits on.
    pub line: u32,
    /// Rule name inside `allow(...)` (empty when malformed).
    pub rule: String,
    /// The mandatory reason string after the closing `):`.
    pub reason: String,
    /// Why the directive failed to parse, when it did.
    pub malformed: Option<String>,
    /// Set by the rule engine when a diagnostic consumed this allow.
    pub used: bool,
}

/// A lexed source file: token stream plus collected allow directives.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Tokens in source order, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// `fcad-lint` directives found in line comments, in source order.
    pub allows: Vec<Allow>,
}

/// Lexes one Rust source file.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                if let Some(allow) = parse_directive(&comment, line) {
                    allows.push(allow);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust allows nesting.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (content, next) = read_quoted(&chars, i + 1, &mut line);
                tokens.push(Token::new(TokenKind::Str, content, start_line));
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime: `'\…'` and `'x'` are literals,
                // anything else is a lifetime (whose name lexes as an ident).
                if chars.get(i + 1) == Some(&'\\') {
                    let mut j = i + 2;
                    if j < chars.len() {
                        j += 1; // the escaped character
                    }
                    // Skip to the closing quote (covers \u{…} forms).
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    let content: String = chars[i + 1..j.min(chars.len())].iter().collect();
                    tokens.push(Token::new(TokenKind::Str, content, line));
                    i = (j + 1).min(chars.len());
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    let content: String = chars[i + 1..i + 2].iter().collect();
                    tokens.push(Token::new(TokenKind::Str, content, line));
                    i += 3;
                } else {
                    i += 1; // lifetime tick; the name lexes as an ident
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::new(TokenKind::Num, text, line));
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw/byte string prefixes (`r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#`) must be caught before ident lexing because raw
                // strings do not process escapes.
                if let Some((content, next, start_line)) = read_raw_string(&chars, i, &mut line) {
                    tokens.push(Token::new(TokenKind::Str, content, start_line));
                    i = next;
                    continue;
                }
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::new(TokenKind::Ident, text, line));
            }
            other => {
                tokens.push(Token::new(TokenKind::Punct, other.to_string(), line));
                i += 1;
            }
        }
    }

    mark_test_regions(&mut tokens);
    LexedFile { tokens, allows }
}

/// Reads a normal (escape-processing) string body starting just after the
/// opening quote; returns the content and the index just past the closing
/// quote.
fn read_quoted(chars: &[char], mut i: usize, line: &mut u32) -> (String, usize) {
    let start = i;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                let content: String = chars[start..i].iter().collect();
                return (content, i + 1);
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (chars[start..].iter().collect(), chars.len())
}

/// Recognizes `r"…"`, `b"…"`, `br"…"`, `rb"…"` and hash-delimited raw
/// strings at position `i`; returns `(content, next_index, start_line)`.
fn read_raw_string(chars: &[char], i: usize, line: &mut u32) -> Option<(String, usize, u32)> {
    let mut j = i;
    let mut raw = false;
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                raw = true;
                j += 1;
            }
            Some('b') => j += 1,
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') || (hashes > 0 && !raw) {
        return None;
    }
    let start_line = *line;
    j += 1;
    let body_start = j;
    if raw {
        // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
        loop {
            if j >= chars.len() {
                return Some((
                    chars[body_start..].iter().collect(),
                    chars.len(),
                    start_line,
                ));
            }
            if chars[j] == '\n' {
                *line += 1;
            }
            if chars[j] == '"'
                && chars[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|c| **c == '#')
                    .count()
                    == hashes
            {
                let content: String = chars[body_start..j].iter().collect();
                return Some((content, j + 1 + hashes, start_line));
            }
            j += 1;
        }
    } else {
        let (content, next) = read_quoted(chars, body_start, line);
        Some((content, next, start_line))
    }
}

/// Parses an `allow(<rule>): <reason>` directive out of one line comment
/// carrying the `fcad-lint` marker, if present.
fn parse_directive(comment: &str, line: u32) -> Option<Allow> {
    let marker = "fcad-lint:";
    let at = comment.find(marker)?;
    let rest = comment[at + marker.len()..].trim();
    let malformed = |msg: &str| {
        Some(Allow {
            line,
            rule: String::new(),
            reason: String::new(),
            malformed: Some(msg.to_owned()),
            used: false,
        })
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule>): <reason>` after `fcad-lint:`");
    };
    let Some(close) = args.find(')') else {
        return malformed("unclosed `allow(` — expected `allow(<rule>): <reason>`");
    };
    let rule = args[..close].trim().to_owned();
    if rule.is_empty() {
        return malformed("empty rule name in `allow()`");
    }
    let tail = args[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return malformed("missing `: <reason>` after `allow(<rule>)` — a reason is required");
    };
    let reason = reason.trim().to_owned();
    if reason.is_empty() {
        return malformed("empty reason — `allow(<rule>)` requires a non-empty reason");
    }
    Some(Allow {
        line,
        rule,
        reason,
        malformed: None,
        used: false,
    })
}

/// Marks every token inside a `#[cfg(test)]`-gated item or a `#[test]`
/// function as test code.
///
/// Approximation: an attribute counts as test-gating when it is exactly
/// `#[test]`, or a `#[cfg(...)]` that mentions `test` without a `not`
/// (so `#[cfg(not(test))]` code stays production code).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut attr = Vec::new();
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    attr.push(tokens[j].text.clone());
                }
                j += 1;
            }
            if is_test_attr(&attr) {
                // Find the gated item's block: the first `{` before any `;`
                // at attribute nesting level (a `;` means an extern module
                // or item with no inline body — nothing to mark).
                let mut k = j + 1;
                let mut block_start = None;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        block_start = Some(k);
                        break;
                    }
                    if tokens[k].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if let Some(open) = block_start {
                    let mut braces = 0usize;
                    let mut end = open;
                    while end < tokens.len() {
                        if tokens[end].is_punct('{') {
                            braces += 1;
                        } else if tokens[end].is_punct('}') {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    let last = end.min(tokens.len() - 1);
                    for token in &mut tokens[i..=last] {
                        token.in_test = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// See [`mark_test_regions`] for the approximation this implements.
fn is_test_attr(attr: &[String]) -> bool {
    if attr.len() == 1 && attr[0] == "test" {
        return true;
    }
    attr.first().is_some_and(|head| head == "cfg")
        && attr.iter().any(|t| t == "test")
        && !attr.iter().any(|t| t == "not")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_keeps_idents() {
        let lexed = lex("let x = \"Instant::now()\"; // Instant::now()\nInstant::now();\n");
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "Instant", "now"]);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_do_not_process_escapes() {
        let lexed = lex(r####"let s = r#"a \ " b"#; after();"####);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            2
        );
    }

    #[test]
    fn marks_cfg_test_modules_and_test_fns() {
        let source = "fn live() { x.unwrap(); }\n\
                      #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n\
                      #[test]\nfn alone() { z.unwrap(); }\n\
                      #[cfg(not(test))]\nfn gated() { w.unwrap(); }\n";
        let lexed = lex(source);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true, true, false]);
    }

    #[test]
    fn parses_allow_directives_and_rejects_missing_reasons() {
        let lexed = lex(
            "// fcad-lint: allow(panic): index bounded by construction\n\
             // fcad-lint: allow(panic):\n\
             // fcad-lint: allow(panic)\n\
             // fcad-lint: deny(panic): nope\n",
        );
        assert_eq!(lexed.allows.len(), 4);
        assert!(lexed.allows[0].malformed.is_none());
        assert_eq!(lexed.allows[0].rule, "panic");
        assert_eq!(lexed.allows[0].reason, "index bounded by construction");
        assert!(lexed.allows[1].malformed.is_some());
        assert!(lexed.allows[2].malformed.is_some());
        assert!(lexed.allows[3].malformed.is_some());
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let lexed = lex("let a = \"two\nlines\";\n/* block\ncomment */\nmarker();\n");
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker token");
        assert_eq!(marker.line, 5);
    }
}
