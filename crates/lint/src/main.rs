//! The `fcad-lint` CLI.
//!
//! ```text
//! fcad-lint [--root <dir>] [--json] [--deny all | --deny <rule>]... [--list-rules]
//! ```
//!
//! Without `--deny`, findings are advisory (printed, exit 0). CI runs
//! `--deny all`: any finding exits 1. Exit 2 means the invocation itself
//! failed (bad flag, unreadable tree).

use fcad_lint::{lint_tree, rules};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    deny: Vec<String>,
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS, // --help / --list-rules
        Err(message) => {
            eprintln!("fcad-lint: {message}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_tree(&options.root) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("fcad-lint: cannot lint {}: {error}", options.root.display());
            return ExitCode::from(2);
        }
    };

    if options.json {
        println!("{}", report.to_json_line());
    } else {
        for d in &report.diagnostics {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
        println!(
            "fcad-lint: {} file(s) checked, {} finding(s)",
            report.files_checked,
            report.diagnostics.len()
        );
    }

    let denied = report
        .diagnostics
        .iter()
        .filter(|d| options.deny_all || options.deny.iter().any(|r| r == d.rule))
        .count();
    if denied > 0 {
        if !options.json {
            eprintln!("fcad-lint: {denied} denied finding(s)");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        deny: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a directory".to_owned())?,
                );
            }
            "--json" => options.json = true,
            "--deny" => {
                let rule = args
                    .next()
                    .ok_or_else(|| "--deny needs a rule name or `all`".to_owned())?;
                if rule == "all" {
                    options.deny_all = true;
                } else if rules::RULES.contains(&rule.as_str())
                    || rules::ENGINE_CHECKS.contains(&rule.as_str())
                {
                    options.deny.push(rule);
                } else {
                    return Err(format!("unknown rule `{rule}` — see --list-rules"));
                }
            }
            "--list-rules" => {
                for rule in rules::RULES.iter().chain(rules::ENGINE_CHECKS.iter()) {
                    println!("{rule}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!(
                    "fcad-lint — determinism / panic-policy / schema gate\n\n\
                     USAGE: fcad-lint [--root <dir>] [--json] [--deny all|--deny <rule>]... \
                     [--list-rules]\n\n\
                     Suppress a finding with a trailing or preceding comment:\n  \
                     // fcad-lint: allow(<rule>): <reason — mandatory>"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(Some(options))
}
