//! Fixture battery: every rule is demonstrated by a failing and a passing
//! snippet, the allow escape hatch by all three of its outcomes
//! (suppressed / malformed / stale), and the JSON output by a golden
//! string. The meta-test at the bottom holds the live tree itself to
//! `--deny all`.

use fcad_lint::rules::Diagnostic;
use fcad_lint::{lint_source, lint_tree, schema, LintReport};

/// Lints a fixture under a virtual repo-relative path (the path selects
/// which rule scopes apply).
fn lint(virtual_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source(virtual_path, source)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_on_instant_and_system_time() {
    let diags = lint(
        "crates/dse/src/fixture.rs",
        include_str!("fixtures/wall_clock/bad.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == "wall-clock"), "{diags:?}");
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert!(lines.contains(&6), "Instant::now() site missed: {lines:?}");
    assert!(
        lines.contains(&7),
        "SystemTime::now() site missed: {lines:?}"
    );
}

#[test]
fn wall_clock_is_silent_on_injected_timers_and_out_of_scope_paths() {
    let good = include_str!("fixtures/wall_clock/good.rs");
    assert!(lint("crates/dse/src/fixture.rs", good).is_empty());
    // The same bad source outside the deterministic crates is out of scope.
    let bad = include_str!("fixtures/wall_clock/bad.rs");
    assert!(lint("crates/bench/src/fixture.rs", bad).is_empty());
}

// ---------------------------------------------------- unordered-iteration

#[test]
fn unordered_iteration_fires_on_hash_containers() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/unordered_iteration/bad.rs"),
    );
    assert!(!diags.is_empty());
    assert!(
        diags.iter().all(|d| d.rule == "unordered-iteration"),
        "{diags:?}"
    );
}

#[test]
fn unordered_iteration_is_silent_on_btree_containers() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/unordered_iteration/good.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- unseeded-rng

#[test]
fn unseeded_rng_fires_on_entropy_sources_and_raw_seeds() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/unseeded_rng/bad.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == "unseeded-rng"), "{diags:?}");
    assert!(
        diags.len() >= 3,
        "thread_rng, from_entropy and the raw seed_from_u64 must all fire: {diags:?}"
    );
}

#[test]
fn unseeded_rng_accepts_mixed_and_derived_seeds() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/unseeded_rng/good.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- panic-policy

#[test]
fn panic_policy_fires_on_unwrap_empty_expect_and_the_panic_family() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/panic_policy/bad.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == "panic-policy"), "{diags:?}");
    assert_eq!(
        diags.len(),
        5,
        "unwrap, expect(\"\"), panic!, unreachable!, todo! — and nothing \
         from the test module: {diags:?}"
    );
}

#[test]
fn panic_policy_accepts_invariant_naming_expects() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/panic_policy/good.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------- lossy-cast

#[test]
fn lossy_cast_fires_on_every_bare_numeric_cast() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/lossy_cast/bad.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == "lossy-cast"), "{diags:?}");
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn lossy_cast_is_silent_on_checked_helpers() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/lossy_cast/good.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------- the escape hatch

#[test]
fn allow_with_reason_suppresses_on_the_same_and_previous_line() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/allows/allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_without_reason_is_void_and_reported() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/allows/missing_reason.rs"),
    );
    let rules = rules_of(&diags);
    assert!(rules.contains(&"allow-syntax"), "{diags:?}");
    assert!(
        rules.contains(&"panic-policy"),
        "a void directive must not suppress: {diags:?}"
    );
}

#[test]
fn stale_allow_is_reported_as_unused() {
    let diags = lint(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/allows/unused.rs"),
    );
    assert_eq!(rules_of(&diags), vec!["unused-allow"], "{diags:?}");
}

// ---------------------------------------------------- schema-append-only

#[test]
fn schema_matching_manifest_is_clean() {
    let diags = schema::check_schema(
        include_str!("fixtures/schema/emitter.rs"),
        include_str!("fixtures/schema/manifest_good.keys"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn schema_reorder_is_rejected() {
    let diags = schema::check_schema(
        include_str!("fixtures/schema/emitter.rs"),
        include_str!("fixtures/schema/manifest_reordered.keys"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("non-append schema edit"),
        "{diags:?}"
    );
}

#[test]
fn schema_unrecorded_append_is_rejected() {
    let diags = schema::check_schema(
        include_str!("fixtures/schema/emitter.rs"),
        include_str!("fixtures/schema/manifest_stale.keys"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("unrecorded key"), "{diags:?}");
}

// ------------------------------------------------------------ JSON golden

#[test]
fn json_line_is_byte_stable() {
    let diagnostics = lint(
        "crates/dse/src/fixture.rs",
        include_str!("fixtures/wall_clock/bad.rs"),
    );
    let report = LintReport {
        files_checked: 1,
        diagnostics,
    };
    let expected = concat!(
        "{\"tool\":\"fcad-lint\",\"version\":1,\"files_checked\":1,\"diagnostics\":[",
        "{\"rule\":\"wall-clock\",\"file\":\"crates/dse/src/fixture.rs\",\"line\":3,",
        "\"message\":\"SystemTime in a deterministic result path — wall-clock time ",
        "must not reach simulation or DSE results\"},",
        "{\"rule\":\"wall-clock\",\"file\":\"crates/dse/src/fixture.rs\",\"line\":6,",
        "\"message\":\"Instant::now() in a deterministic result path — inject elapsed ",
        "time (see fcad_dse::ElapsedTimer) or annotate\"},",
        "{\"rule\":\"wall-clock\",\"file\":\"crates/dse/src/fixture.rs\",\"line\":7,",
        "\"message\":\"SystemTime in a deterministic result path — wall-clock time ",
        "must not reach simulation or DSE results\"}]}"
    );
    assert_eq!(report.to_json_line(), expected);
}

#[test]
fn clean_report_renders_an_empty_diagnostics_array() {
    let report = LintReport {
        files_checked: 1,
        diagnostics: Vec::new(),
    };
    assert_eq!(
        report.to_json_line(),
        "{\"tool\":\"fcad-lint\",\"version\":1,\"files_checked\":1,\"diagnostics\":[]}"
    );
}

// -------------------------------------------------------------- meta-test

#[test]
fn the_live_tree_is_clean_under_deny_all() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = lint_tree(&root).expect("linting the repo tree succeeds");
    assert!(report.files_checked > 50, "walk found too few files");
    assert!(
        report.is_clean(),
        "the tree must hold its own gate:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
