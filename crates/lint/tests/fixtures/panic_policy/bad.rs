// Fixture: panics in non-test library code. Bare unwrap, empty expect,
// and the panic family must all fire; the test module at the bottom is
// exempt.
pub fn head(values: &[u64]) -> u64 {
    let first = values.first().unwrap();
    let last = values.last().expect("");
    if *first > *last {
        panic!("unsorted");
    }
    match values.len() {
        0 => unreachable!(),
        1 => todo!(),
        _ => *first,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
