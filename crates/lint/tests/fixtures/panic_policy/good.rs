// Fixture: the sanctioned patterns — propagate with `?`/defaults, or
// `expect` with a message that names the violated invariant.
pub fn head(values: &[u64]) -> u64 {
    let first = values
        .first()
        .expect("head() requires a non-empty value slice");
    values.last().copied().unwrap_or(*first)
}
