// Fixture: a miniature serve-report emitter — one sub-object chain, then
// the top-level chain, mirroring report.rs's shape.
impl Report {
    pub fn to_json_line(&self) -> String {
        let branch = JsonObject::new()
            .str("name", &self.name)
            .u64("issued", self.issued)
            .f64("p99_ms", self.p99_ms)
            .render();
        JsonObject::new()
            .str("scenario", &self.scenario)
            .u64("seed", self.seed)
            .raw("branches", &branch)
            .render()
    }
}
