// Fixture: the sanctioned pattern — every RNG seed derives from the
// scenario seed through the shared SplitMix64 finalizer, so streams are
// independent and the whole run replays from one u64.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn draws(seed: u64, session: usize) -> (f64, f64) {
    let mut mixed = StdRng::seed_from_u64(mix(seed, usize_to_u64(session)));
    let mut derived = StdRng::seed_from_u64(session_seed(seed, session));
    (mixed.gen(), derived.gen_range(0.0..1.0))
}
