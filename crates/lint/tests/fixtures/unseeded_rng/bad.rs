// Fixture: entropy-seeded RNGs and raw seeds in the serve crate. Every
// construction here must fire: ambient entropy breaks fixed-seed
// reproducibility, and a raw `seed_from_u64(seed)` collides streams that
// share a scenario seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn draws(seed: u64, session: u64) -> (f64, f64, f64) {
    let mut ambient = rand::thread_rng();
    let mut entropy = StdRng::from_entropy();
    let mut raw = StdRng::seed_from_u64(seed ^ session);
    (ambient.gen(), entropy.gen(), raw.gen_range(0.0..1.0))
}
