// Fixture: hash containers in a result path (linted under a virtual
// crates/serve path). Iteration order is not deterministic.
use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u64]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &k in keys {
        seen.insert(k);
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.len() + seen.len()
}
