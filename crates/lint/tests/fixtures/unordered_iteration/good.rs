// Fixture: ordered containers keep every iteration deterministic.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(keys: &[u64]) -> usize {
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for &k in keys {
        seen.insert(k);
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.len() + seen.len()
}
