// Fixture: conversions routed through the serve crate's checked-cast
// helpers; the helpers concentrate the `as` casts behind debug-asserted
// preconditions, so call sites stay cast-free.
use crate::cast::{f64_to_u64, u64_to_usize, usize_to_f64, u64_to_f64};

pub fn stats(total_us: u64, count: usize, rate: f64) -> (f64, u64, usize) {
    let mean = u64_to_f64(total_us) / usize_to_f64(count);
    let budget = f64_to_u64((rate * 1e6).round());
    let index = u64_to_usize(budget);
    (mean, budget, index)
}
