// Fixture: bare numeric casts in the serve crate. Each one can silently
// round (u64 → f64 above 2^53) or truncate (f64 → u64, u64 → usize).
pub fn stats(total_us: u64, count: usize, rate: f64) -> (f64, u64, usize) {
    let mean = total_us as f64 / count as f64;
    let budget = (rate * 1e6) as u64;
    let index = budget as usize;
    (mean, budget, index)
}
