// Fixture: wall-clock reads inside a simulation path (linted under a
// virtual crates/dse path). Both forms must fire.
use std::time::{Instant, SystemTime};

pub fn explore() -> f64 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    started.elapsed().as_secs_f64()
}
