// Fixture: the deterministic pattern — elapsed time comes from an
// injected timer, never from a direct clock read.
use crate::timer::ElapsedTimer;

pub fn explore(timer: ElapsedTimer) -> f64 {
    let started = timer.start();
    started.elapsed_seconds()
}
