// Fixture: a real violation suppressed by a well-formed directive with a
// reason — once on the violating line, once on the line above. The
// `panic` alias must resolve to `panic-policy`.
pub fn head(values: &[u64]) -> u64 {
    let first = values.first().unwrap(); // fcad-lint: allow(panic): slice proven non-empty by caller
    // fcad-lint: allow(panic-policy): invariant documented in the module header
    let last = values.last().unwrap();
    *first + *last
}
