// Fixture: a directive without the mandatory reason. The suppression is
// void (the underlying finding still fires) and the malformed directive
// itself is an allow-syntax finding.
pub fn head(values: &[u64]) -> u64 {
    // fcad-lint: allow(panic)
    *values.first().unwrap()
}
