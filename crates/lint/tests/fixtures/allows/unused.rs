// Fixture: a well-formed directive that suppresses nothing — stale
// escape hatches rot, so the engine reports them as unused-allow.
pub fn double(v: u64) -> u64 {
    // fcad-lint: allow(wall-clock): left behind after a refactor
    v * 2
}
