//! Error type for accelerator-model construction.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or evaluating accelerator models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A parallelism configuration is invalid for the stage it was applied
    /// to (zero factors, or factors exceeding the stage dimensions).
    InvalidParallelism {
        /// Stage the configuration was applied to.
        stage: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A configuration references a stage or branch that does not exist.
    UnknownTarget {
        /// Description of the missing target.
        what: String,
    },
    /// A configuration is structurally inconsistent (e.g. wrong number of
    /// per-stage entries for a branch).
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParallelism { stage, reason } => {
                write!(f, "invalid parallelism for stage `{stage}`: {reason}")
            }
            Error::UnknownTarget { what } => write!(f, "unknown target: {what}"),
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_displayable_and_sendable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
        let err = Error::InvalidConfig {
            reason: "branch 2 expects 8 stage configs, got 3".to_owned(),
        };
        assert!(err.to_string().contains("branch 2"));
    }
}
