//! The basic architecture unit: latency and resource model of one pipeline
//! stage under a 3D-parallelism configuration.

use crate::cost::CostModel;
use crate::parallelism::Parallelism;
use crate::platform::ResourceUsage;
use crate::stage::ConvStage;
use fcad_nnir::Precision;
use serde::{Deserialize, Serialize};

/// Analytical model of one basic architecture unit (Sec. V-B/C).
///
/// A unit executes one fused Conv-like stage with `cpf × kpf × h` MAC lanes,
/// an input line buffer, a double-buffered weight tile buffer and a port to
/// external memory for streaming weights. The model answers three questions:
/// how long does the stage take (Eq. 4), how many DSPs / BRAMs does it
/// occupy, and how much external bandwidth does it need to sustain its
/// throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitModel {
    stage_name: String,
    parallelism: Parallelism,
    precision: Precision,
    latency_cycles: u64,
    dsp: usize,
    bram: usize,
    weight_bytes_per_frame: u64,
    macs: u64,
    ops: u64,
}

impl UnitModel {
    /// Builds the model for `stage` under `parallelism` (clamped to the
    /// stage's limits) using the default FPGA cost model.
    pub fn new(stage: &ConvStage, parallelism: Parallelism, precision: Precision) -> Self {
        Self::with_cost_model(stage, parallelism, precision, &CostModel::default())
    }

    /// Builds the model with an explicit [`CostModel`].
    pub fn with_cost_model(
        stage: &ConvStage,
        parallelism: Parallelism,
        precision: Precision,
        cost: &CostModel,
    ) -> Self {
        let p = parallelism.clamped_to(stage);
        let bits = precision.bits();
        let bytes = precision.bytes() as u64;

        // Eq. 4: Lat = OutCh * InCh * H * W * K^2 / (cpf * kpf * h * f).
        // Expressed in cycles (frequency applied by the caller).
        let latency_cycles = (stage.macs as f64 / p.total() as f64).ceil().max(1.0) as u64;

        // Compute: MAC lanes mapped onto DSPs according to precision packing.
        let dsp = (p.total() as f64 / precision.macs_per_dsp()).ceil() as usize;

        // Input line buffer: `kernel` rows of the input feature map across
        // all input channels, double-buffered; banked to sustain `cpf × h`
        // reads per cycle (the kpf engines share the same input values).
        let line_bits = cost.buffer_factor()
            * (stage.kernel.max(1) * stage.in_width * stage.in_channels) as u64
            * bits as u64;
        let input_blocks = cost.blocks_for(line_bits, p.cpf * p.h, bits);

        // Weight tile buffer: the kernels of the current (cpf, kpf) tile,
        // double-buffered so the next tile streams in during compute; banked
        // to sustain `cpf × kpf` reads per cycle (the h partitions share
        // weights).
        let tile_bits = cost.buffer_factor()
            * (p.cpf * p.kpf * stage.kernel * stage.kernel) as u64
            * bits as u64;
        let weight_blocks = cost.blocks_for(tile_bits, p.cpf * p.kpf, bits);

        let bram = input_blocks + weight_blocks + cost.control_bram_per_stage;

        Self {
            stage_name: stage.name.clone(),
            parallelism: p,
            precision,
            latency_cycles,
            dsp,
            bram,
            weight_bytes_per_frame: stage.params * bytes,
            macs: stage.macs,
            ops: stage.ops,
        }
    }

    /// Name of the stage this unit executes.
    pub fn stage_name(&self) -> &str {
        &self.stage_name
    }

    /// The (clamped) parallelism configuration of the unit.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Numeric precision of the unit.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Stage latency in cycles for one input (Eq. 4 without the frequency
    /// term).
    pub fn latency_cycles(&self) -> u64 {
        self.latency_cycles
    }

    /// Stage latency in seconds at `frequency_hz`.
    pub fn latency_seconds(&self, frequency_hz: f64) -> f64 {
        self.latency_cycles as f64 / frequency_hz
    }

    /// DSP slices (or ASIC MAC units) occupied by the unit.
    pub fn dsp(&self) -> usize {
        self.dsp
    }

    /// On-chip memory blocks occupied by the unit.
    pub fn bram(&self) -> usize {
        self.bram
    }

    /// Bytes of weights streamed from external memory per frame.
    pub fn weight_bytes_per_frame(&self) -> u64 {
        self.weight_bytes_per_frame
    }

    /// Operations executed per frame (including fused epilogue work).
    pub fn ops_per_frame(&self) -> u64 {
        self.ops
    }

    /// MACs executed per frame.
    pub fn macs_per_frame(&self) -> u64 {
        self.macs
    }

    /// External bandwidth (bytes/s) needed to stream this stage's weights at
    /// `fps` frames per second, after derating by the DRAM efficiency of the
    /// cost model.
    pub fn bandwidth_bytes_per_sec(&self, fps: f64, cost: &CostModel) -> f64 {
        self.weight_bytes_per_frame as f64 * fps / cost.dram_efficiency.max(1e-6)
    }

    /// Resource usage of this unit at a given frame rate.
    pub fn resource_usage(&self, fps: f64, cost: &CostModel) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp,
            bram: self.bram,
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec(fps, cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv7() -> ConvStage {
        // Branch-2 "Conv7": 16 -> 16 channels, 3x3, 512x512 output.
        ConvStage::synthetic("conv7", 16, 16, 512, 512, 3, 1)
    }

    #[test]
    fn latency_follows_eq4() {
        let stage = conv7();
        let unit = UnitModel::new(&stage, Parallelism::new(16, 16, 1), Precision::Int8);
        let expected = 16u64 * 16 * 9 * 512 * 512 / (16 * 16);
        assert_eq!(unit.latency_cycles(), expected);
        // Doubling the H-partition halves the latency.
        let unit2 = UnitModel::new(&stage, Parallelism::new(16, 16, 2), Precision::Int8);
        assert_eq!(unit2.latency_cycles(), expected / 2);
    }

    #[test]
    fn dsp_packing_depends_on_precision() {
        let stage = conv7();
        let p = Parallelism::new(16, 16, 2);
        let int8 = UnitModel::new(&stage, p, Precision::Int8);
        let int16 = UnitModel::new(&stage, p, Precision::Int16);
        assert_eq!(int8.dsp(), 256);
        assert_eq!(int16.dsp(), 512);
    }

    #[test]
    fn oversized_parallelism_is_clamped() {
        let stage = ConvStage::synthetic("small", 4, 4, 8, 8, 3, 1);
        let unit = UnitModel::new(&stage, Parallelism::new(64, 64, 64), Precision::Int8);
        assert_eq!(unit.parallelism(), Parallelism::new(4, 4, 8));
    }

    #[test]
    fn bram_grows_with_feature_width_and_parallelism() {
        let narrow = ConvStage::synthetic("narrow", 16, 16, 64, 64, 3, 1);
        let wide = ConvStage::synthetic("wide", 16, 16, 64, 1024, 3, 1);
        let p = Parallelism::new(4, 4, 1);
        let narrow_unit = UnitModel::new(&narrow, p, Precision::Int8);
        let wide_unit = UnitModel::new(&wide, p, Precision::Int8);
        assert!(wide_unit.bram() > narrow_unit.bram());

        let more_parallel = UnitModel::new(&narrow, Parallelism::new(16, 16, 8), Precision::Int8);
        assert!(more_parallel.bram() >= narrow_unit.bram());
    }

    #[test]
    fn bandwidth_scales_with_fps() {
        let stage = conv7();
        let unit = UnitModel::new(&stage, Parallelism::new(16, 16, 1), Precision::Int8);
        let cost = CostModel::default();
        let bw30 = unit.bandwidth_bytes_per_sec(30.0, &cost);
        let bw60 = unit.bandwidth_bytes_per_sec(60.0, &cost);
        assert!((bw60 / bw30 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sixteen_bit_weights_double_the_streaming_traffic() {
        let stage = conv7();
        let p = Parallelism::new(16, 16, 1);
        let int8 = UnitModel::new(&stage, p, Precision::Int8);
        let int16 = UnitModel::new(&stage, p, Precision::Int16);
        assert_eq!(
            int16.weight_bytes_per_frame(),
            2 * int8.weight_bytes_per_frame()
        );
    }
}
