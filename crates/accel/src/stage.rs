//! Pipeline stages: fused Conv-like layers.
//!
//! The Construction step of F-CAD fuses lightweight layers (activations,
//! reshapes) into their neighbouring major layer and attaches up-sampling to
//! the preceding convolution, so one pipeline stage corresponds to one
//! Conv-like (or Dense) layer plus its fused epilogue. [`ConvStage`] is that
//! fused unit, carrying exactly the geometry the latency / resource models
//! need.

use fcad_profiler::{BranchProfile, LayerProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One pipeline stage: a convolution (or dense layer treated as a 1×1
/// convolution on a 1×1 map) together with its fused activation and
/// up-sampling epilogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvStage {
    /// Stage name (taken from the compute layer it wraps).
    pub name: String,
    /// Input channels of the convolution.
    pub in_channels: usize,
    /// Output channels of the convolution.
    pub out_channels: usize,
    /// Input feature-map height (before the convolution).
    pub in_height: usize,
    /// Input feature-map width.
    pub in_width: usize,
    /// Output feature-map height of the convolution (before up-sampling).
    pub out_height: usize,
    /// Output feature-map width of the convolution (before up-sampling).
    pub out_width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Fused nearest-neighbour up-sampling factor applied after the
    /// convolution (1 when none).
    pub upsample: usize,
    /// Multiply-accumulates per inference.
    pub macs: u64,
    /// Total operations per inference (including fused epilogue work).
    pub ops: u64,
    /// Learnable parameters (weights plus bias).
    pub params: u64,
}

impl ConvStage {
    /// Builds a synthetic stage from raw dimensions — handy in tests and for
    /// layers that do not come from an IR network.
    pub fn synthetic(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        out_height: usize,
        out_width: usize,
        kernel: usize,
        upsample: usize,
    ) -> Self {
        let macs =
            (out_channels * in_channels * kernel * kernel) as u64 * (out_height * out_width) as u64;
        let params = (out_channels * in_channels * kernel * kernel + out_channels) as u64;
        Self {
            name: name.into(),
            in_channels,
            out_channels,
            in_height: out_height,
            in_width: out_width,
            out_height,
            out_width,
            kernel,
            upsample: upsample.max(1),
            macs,
            ops: 2 * macs + (out_channels * out_height * out_width) as u64,
            params,
        }
    }

    /// Builds the fused stage list of a profiled branch: every compute layer
    /// becomes a stage; trailing activation / up-sampling / reshape layers
    /// are folded into the preceding stage (their ops are charged to it and
    /// up-sampling scales its effective output).
    ///
    /// Non-compute layers appearing before the first compute layer (e.g. the
    /// decoder's input reshape) are ignored: they carry no work.
    pub fn stages_of_branch(branch: &BranchProfile) -> Vec<ConvStage> {
        let mut stages: Vec<ConvStage> = Vec::new();
        for layer in &branch.layers {
            if layer.is_compute {
                stages.push(ConvStage::from_compute_layer(layer));
            } else if let Some(stage) = stages.last_mut() {
                stage.fuse_epilogue(layer);
            }
        }
        stages
    }

    /// Builds the fused stage list for the suffix of a branch starting at
    /// layer index `from` (used after branch reorganization, where shared
    /// prefixes belong to another branch).
    pub fn stages_of_branch_from(branch: &BranchProfile, from: usize) -> Vec<ConvStage> {
        let mut stages: Vec<ConvStage> = Vec::new();
        for layer in branch.layers.iter().skip(from) {
            if layer.is_compute {
                stages.push(ConvStage::from_compute_layer(layer));
            } else if let Some(stage) = stages.last_mut() {
                stage.fuse_epilogue(layer);
            }
        }
        stages
    }

    fn from_compute_layer(layer: &LayerProfile) -> Self {
        Self {
            name: layer.name.clone(),
            in_channels: layer.input.channels,
            out_channels: layer.output.channels,
            in_height: layer.input.height,
            in_width: layer.input.width,
            out_height: layer.output.height,
            out_width: layer.output.width,
            kernel: layer.kernel,
            upsample: 1,
            macs: layer.macs,
            ops: layer.ops,
            params: layer.params,
        }
    }

    fn fuse_epilogue(&mut self, layer: &LayerProfile) {
        // Fused lightweight layers contribute their op count to the stage;
        // an up-sampling layer additionally scales the stage's effective
        // output feature map (which downstream stages see as their input).
        self.ops += layer.ops;
        if layer.output.height > layer.input.height && layer.input.height > 0 {
            let factor = layer.output.height / layer.input.height;
            self.upsample *= factor.max(1);
        }
    }

    /// Output height after the fused up-sampling.
    pub fn upsampled_height(&self) -> usize {
        self.out_height * self.upsample
    }

    /// Output width after the fused up-sampling.
    pub fn upsampled_width(&self) -> usize {
        self.out_width * self.upsample
    }

    /// Output elements written by the stage (after up-sampling).
    pub fn output_elements(&self) -> usize {
        self.out_channels * self.upsampled_height() * self.upsampled_width()
    }

    /// Input elements read by the stage.
    pub fn input_elements(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }

    /// The maximum two-level (channel-only) parallel factor `InCh × OutCh` —
    /// the ceiling that limits DNNBuilder-style accelerators (Sec. III).
    pub fn channel_parallelism_limit(&self) -> usize {
        self.in_channels * self.out_channels
    }
}

impl fmt::Display for ConvStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{}x{} -> {}x{}x{} (k{}, up{})",
            self.name,
            self.in_channels,
            self.in_height,
            self.in_width,
            self.out_channels,
            self.upsampled_height(),
            self.upsampled_width(),
            self.kernel,
            self.upsample
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcad_nnir::models::{targeted_decoder, vgg16};
    use fcad_profiler::NetworkProfile;

    #[test]
    fn decoder_branches_fuse_to_expected_stage_counts() {
        let profile = NetworkProfile::of(&targeted_decoder());
        let stages: Vec<Vec<ConvStage>> = profile
            .branches()
            .iter()
            .map(ConvStage::stages_of_branch)
            .collect();
        // Branch 1: 6 convs, branch 2: 8 convs, branch 3: 6 convs.
        assert_eq!(stages[0].len(), 6);
        assert_eq!(stages[1].len(), 8);
        assert_eq!(stages[2].len(), 6);
    }

    #[test]
    fn cau_blocks_fuse_upsampling_into_the_conv_stage() {
        let profile = NetworkProfile::of(&targeted_decoder());
        let br1 = &profile.branches()[0];
        let stages = ConvStage::stages_of_branch(br1);
        // Every CAU conv stage carries a x2 up-sample; the final conv does not.
        for stage in &stages[..stages.len() - 1] {
            assert_eq!(stage.upsample, 2, "{}", stage.name);
        }
        assert_eq!(stages.last().unwrap().upsample, 1);
        // The chain of shapes is preserved: stage i+1 input = stage i
        // upsampled output.
        for pair in stages.windows(2) {
            assert_eq!(pair[1].in_height, pair[0].upsampled_height());
            assert_eq!(pair[1].in_channels, pair[0].out_channels);
        }
    }

    #[test]
    fn stage_ops_cover_all_branch_ops() {
        let profile = NetworkProfile::of(&targeted_decoder());
        for branch in profile.branches() {
            let stages = ConvStage::stages_of_branch(branch);
            let stage_ops: u64 = stages.iter().map(|s| s.ops).sum();
            // The input reshape carries no ops, so fused stages account for
            // every operation of the branch.
            assert_eq!(stage_ops, branch.ops());
        }
    }

    #[test]
    fn stages_from_offset_skip_the_shared_prefix() {
        let net = targeted_decoder();
        let profile = NetworkProfile::of(&net);
        let warp = &profile.branches()[2];
        let own = ConvStage::stages_of_branch_from(warp, warp.shared_prefix_len);
        assert_eq!(own.len(), 1, "warp branch owns a single output conv");
        assert_eq!(own[0].out_channels, 2);
    }

    #[test]
    fn dense_layers_become_1x1_stages() {
        let profile = NetworkProfile::of(&vgg16());
        let stages = ConvStage::stages_of_branch(&profile.branches()[0]);
        let fc = stages.last().unwrap();
        assert_eq!(fc.out_height, 1);
        assert_eq!(fc.out_width, 1);
        assert_eq!(fc.kernel, 1);
        assert_eq!(fc.out_channels, 1000);
    }

    #[test]
    fn channel_parallelism_limit_matches_section_iii() {
        let conv7 = ConvStage::synthetic("conv7", 16, 16, 512, 512, 3, 1);
        assert_eq!(conv7.channel_parallelism_limit(), 256);
    }
}
