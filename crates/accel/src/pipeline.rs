//! Branch pipelines: chains of basic architecture units evaluated under a
//! configuration.

use crate::config::BranchConfig;
use crate::cost::CostModel;
use crate::efficiency;
use crate::error::{Error, Result};
use crate::parallelism::Parallelism;
use crate::platform::ResourceUsage;
use crate::stage::ConvStage;
use crate::unit::UnitModel;
use fcad_nnir::Precision;
use serde::{Deserialize, Serialize};

/// Evaluation of a single pipeline stage under its configured parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageEvaluation {
    /// Stage name.
    pub name: String,
    /// Configured (clamped) parallelism.
    pub parallelism: Parallelism,
    /// Stage latency in cycles (Eq. 4).
    pub latency_cycles: u64,
    /// DSPs used by one copy of the stage.
    pub dsp: usize,
    /// BRAM blocks used by one copy of the stage.
    pub bram: usize,
    /// Weight bytes streamed per frame.
    pub weight_bytes_per_frame: u64,
}

/// Evaluation of one branch pipeline: per-stage results plus branch-level
/// throughput, efficiency and resource usage (including the `batch_size`
/// pipeline copies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchReport {
    /// Branch name.
    pub name: String,
    /// Pipeline copies instantiated.
    pub batch_size: usize,
    /// Throughput in frames per second (Eq. 5).
    pub fps: f64,
    /// Latency of the slowest stage in cycles.
    pub critical_latency_cycles: u64,
    /// Name of the slowest stage.
    pub critical_stage: String,
    /// Hardware efficiency of the branch (Eq. 3).
    pub efficiency: f64,
    /// Operations per frame handled by this branch's pipeline.
    pub ops_per_frame: u64,
    /// Total resources of the branch (all pipeline copies).
    pub usage: ResourceUsage,
    /// Per-stage evaluations (single copy).
    pub stages: Vec<StageEvaluation>,
}

/// One branch of the elastic architecture: an ordered chain of fused
/// Conv-like stages executed as a fine-grained pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchPipeline {
    name: String,
    stages: Vec<ConvStage>,
}

impl BranchPipeline {
    /// Creates a pipeline from fused stages.
    pub fn new(name: impl Into<String>, stages: Vec<ConvStage>) -> Self {
        Self {
            name: name.into(),
            stages,
        }
    }

    /// Branch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fused stages in execution order.
    pub fn stages(&self) -> &[ConvStage] {
        &self.stages
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Operations per frame across all stages.
    pub fn ops_per_frame(&self) -> u64 {
        self.stages.iter().map(|s| s.ops).sum()
    }

    /// MACs per frame across all stages.
    pub fn macs_per_frame(&self) -> u64 {
        self.stages.iter().map(|s| s.macs).sum()
    }

    /// Weight bytes per frame at the given precision.
    pub fn weight_bytes_per_frame(&self, precision: Precision) -> u64 {
        self.stages
            .iter()
            .map(|s| s.params * precision.bytes() as u64)
            .sum()
    }

    /// Evaluates the pipeline under a branch configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the configuration does not
    /// provide exactly one [`crate::StageConfig`] per stage.
    pub fn evaluate(
        &self,
        config: &BranchConfig,
        precision: Precision,
        frequency_hz: f64,
        cost: &CostModel,
    ) -> Result<BranchReport> {
        if config.stages.len() != self.stages.len() {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "branch `{}` has {} stages but the configuration provides {}",
                    self.name,
                    self.stages.len(),
                    config.stages.len()
                ),
            });
        }
        let units: Vec<UnitModel> = self
            .stages
            .iter()
            .zip(&config.stages)
            .map(|(stage, cfg)| UnitModel::with_cost_model(stage, cfg.parallelism, precision, cost))
            .collect();

        let (critical_index, critical_latency) = units
            .iter()
            .enumerate()
            .map(|(i, u)| (i, u.latency_cycles()))
            .max_by_key(|(_, lat)| *lat)
            .unwrap_or((0, 1));

        // Eq. 5: FPS = batch / max(Lat_i); each of the `batch` pipeline
        // copies produces one frame per critical-stage interval.
        let fps = if self.stages.is_empty() {
            0.0
        } else {
            config.batch_size as f64 * frequency_hz / critical_latency as f64
        };

        let dsp: usize = units.iter().map(UnitModel::dsp).sum::<usize>() * config.batch_size;
        let bram: usize = units.iter().map(UnitModel::bram).sum::<usize>() * config.batch_size;
        let weight_bytes: u64 = units.iter().map(UnitModel::weight_bytes_per_frame).sum();
        // `fps` already counts the frames produced by all copies, and each
        // frame requires one pass of the weights.
        let bandwidth = weight_bytes as f64 * fps / cost.dram_efficiency.max(1e-6);

        let ops_per_frame = self.ops_per_frame();
        let eff = efficiency(
            ops_per_frame as f64 * fps,
            dsp,
            precision.ops_per_multiplier(),
            frequency_hz,
        );

        let stages = units
            .iter()
            .map(|u| StageEvaluation {
                name: u.stage_name().to_owned(),
                parallelism: u.parallelism(),
                latency_cycles: u.latency_cycles(),
                dsp: u.dsp(),
                bram: u.bram(),
                weight_bytes_per_frame: u.weight_bytes_per_frame(),
            })
            .collect();

        Ok(BranchReport {
            name: self.name.clone(),
            batch_size: config.batch_size,
            fps,
            critical_latency_cycles: critical_latency,
            critical_stage: self
                .stages
                .get(critical_index)
                .map(|s| s.name.clone())
                .unwrap_or_default(),
            efficiency: eff,
            ops_per_frame,
            usage: ResourceUsage {
                dsp,
                bram,
                bandwidth_bytes_per_sec: bandwidth,
            },
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StageConfig;

    fn pipeline() -> BranchPipeline {
        BranchPipeline::new(
            "test",
            vec![
                ConvStage::synthetic("conv1", 8, 16, 32, 32, 3, 2),
                ConvStage::synthetic("conv2", 16, 16, 64, 64, 3, 1),
            ],
        )
    }

    fn config(p1: Parallelism, p2: Parallelism, batch: usize) -> BranchConfig {
        BranchConfig::new(batch, vec![StageConfig::new(p1), StageConfig::new(p2)])
    }

    #[test]
    fn throughput_is_limited_by_the_slowest_stage() {
        let pipe = pipeline();
        let cfg = config(Parallelism::new(8, 16, 1), Parallelism::new(1, 1, 1), 1);
        let report = pipe
            .evaluate(&cfg, Precision::Int8, 200e6, &CostModel::default())
            .expect("valid config");
        assert_eq!(report.critical_stage, "conv2");
        let conv2_cycles = 16u64 * 16 * 9 * 64 * 64;
        assert_eq!(report.critical_latency_cycles, conv2_cycles);
        assert!((report.fps - 200e6 / conv2_cycles as f64).abs() < 1e-9);
    }

    #[test]
    fn batch_copies_multiply_fps_and_resources() {
        let pipe = pipeline();
        let p = Parallelism::new(4, 4, 1);
        let single = pipe
            .evaluate(
                &config(p, p, 1),
                Precision::Int8,
                200e6,
                &CostModel::default(),
            )
            .unwrap();
        let double = pipe
            .evaluate(
                &config(p, p, 2),
                Precision::Int8,
                200e6,
                &CostModel::default(),
            )
            .unwrap();
        assert!((double.fps / single.fps - 2.0).abs() < 1e-9);
        assert_eq!(double.usage.dsp, 2 * single.usage.dsp);
        assert_eq!(double.usage.bram, 2 * single.usage.bram);
        assert!(double.usage.bandwidth_bytes_per_sec > single.usage.bandwidth_bytes_per_sec);
    }

    #[test]
    fn balanced_stages_have_high_efficiency() {
        // Give each stage parallelism proportional to its MAC count so the
        // pipeline is load-balanced; efficiency should then be high.
        let pipe = pipeline();
        let macs1 = pipe.stages()[0].macs as f64;
        let macs2 = pipe.stages()[1].macs as f64;
        let lanes2 = 256usize;
        let lanes1 = ((macs1 / macs2) * lanes2 as f64).round() as usize;
        let cfg = BranchConfig::new(
            1,
            vec![
                StageConfig::new(Parallelism::for_target(&pipe.stages()[0], lanes1)),
                StageConfig::new(Parallelism::for_target(&pipe.stages()[1], lanes2)),
            ],
        );
        let report = pipe
            .evaluate(&cfg, Precision::Int16, 200e6, &CostModel::default())
            .unwrap();
        assert!(
            report.efficiency > 0.6,
            "efficiency {} too low for a balanced pipeline",
            report.efficiency
        );
        // Auxiliary (non-MAC) operations are counted in GOP but executed by
        // fabric logic, so efficiency may marginally exceed 1 on tiny
        // synthetic stages.
        assert!(report.efficiency <= 1.05);
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let pipe = pipeline();
        let cfg = BranchConfig::minimal(3);
        assert!(matches!(
            pipe.evaluate(&cfg, Precision::Int8, 200e6, &CostModel::default()),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn weight_traffic_matches_parameters() {
        let pipe = pipeline();
        let params: u64 = pipe.stages().iter().map(|s| s.params).sum();
        assert_eq!(pipe.weight_bytes_per_frame(Precision::Int16), params * 2);
    }
}
