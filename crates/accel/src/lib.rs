//! Elastic accelerator architecture and analytical performance model.
//!
//! This crate implements Sec. V of the F-CAD paper: the *layer-based
//! multi-pipeline accelerator paradigm*, the *elastic architecture* that
//! expands in two dimensions (stages along X, branches along Y), and the
//! *basic architecture unit* with three-dimensional parallelism (input
//! channels `cpf`, output channels `kpf`, and feature-map-height partitions
//! `h`). It also provides the analytical latency / throughput / efficiency
//! models of Sec. VI-B.3 (Eqs. 3–5) together with DSP / BRAM / bandwidth
//! utilization estimates, and the descriptions of the FPGA platforms used in
//! the evaluation (Xilinx Z7045, ZU17EG, ZU9CG, KU115) plus generic ASIC
//! budgets.
//!
//! The crate is purely analytical: it never simulates cycles (that is
//! `fcad-cyclesim`'s job) and never searches the design space (that is
//! `fcad-dse`'s job); it answers "given this configuration, what does the
//! accelerator cost and how fast is it?".
//!
//! # Example
//!
//! ```
//! use fcad_accel::{ConvStage, Parallelism, Platform, UnitModel};
//! use fcad_nnir::Precision;
//!
//! // A 16->16 channel 3x3 convolution on a 512x512 map (branch-2 "Conv7").
//! let stage = ConvStage::synthetic("conv7", 16, 16, 512, 512, 3, 1);
//! let unit = UnitModel::new(&stage, Parallelism::new(16, 16, 4), Precision::Int8);
//! let platform = Platform::zu9cg();
//! let cycles = unit.latency_cycles();
//! assert!(cycles > 0);
//! assert!(unit.dsp() <= platform.budget().dsp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cost;
mod elastic;
mod error;
mod parallelism;
mod pipeline;
mod platform;
mod stage;
mod unit;

pub use config::{AcceleratorConfig, BranchConfig, StageConfig};
pub use cost::CostModel;
pub use elastic::{AcceleratorReport, ElasticAccelerator};
pub use error::{Error, Result};
pub use parallelism::Parallelism;
pub use pipeline::{BranchPipeline, BranchReport, StageEvaluation};
pub use platform::{Platform, PlatformKind, ResourceBudget, ResourceUsage};
pub use stage::ConvStage;
pub use unit::UnitModel;

/// Computes hardware efficiency following Eq. 3 of the paper.
///
/// `ops_per_second` is the delivered throughput in operations per second
/// (1 MAC = 2 ops), `multipliers` the number of DSP-style multipliers the
/// design occupies, `beta` the operations one multiplier completes per cycle
/// (2 at 16-bit, 4 at 8-bit — see
/// [`Precision::ops_per_multiplier`](fcad_nnir::Precision::ops_per_multiplier)),
/// and `frequency_hz` the clock frequency.
///
/// Returns 0 when the design uses no multipliers.
///
/// ```
/// use fcad_accel::efficiency;
///
/// // 500 GOPS delivered on 1000 DSPs at 8-bit, 200 MHz -> 62.5 %.
/// let eff = efficiency(500e9, 1000, 4.0, 200e6);
/// assert!((eff - 0.625).abs() < 1e-9);
/// ```
pub fn efficiency(ops_per_second: f64, multipliers: usize, beta: f64, frequency_hz: f64) -> f64 {
    let peak = beta * multipliers as f64 * frequency_hz;
    if peak <= 0.0 {
        0.0
    } else {
        ops_per_second / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_zero_without_multipliers() {
        assert_eq!(efficiency(1e9, 0, 4.0, 200e6), 0.0);
    }

    #[test]
    fn efficiency_reproduces_table_v_arithmetic() {
        // Table V, F-CAD 8-bit: 122.1 FPS on a 13.6 GOP decoder with 2229
        // DSPs at 200 MHz -> ~93 % (paper reports 91.3 % for its own op
        // count).
        let ops_per_second = 13.6e9 * 122.1;
        let eff = efficiency(ops_per_second, 2229, 4.0, 200e6);
        assert!(eff > 0.85 && eff < 1.0, "eff {eff}");
    }
}
