//! Hardware configuration types — the coordinates of the multi-branch
//! dynamic design space (Table III).

use crate::parallelism::Parallelism;
use fcad_nnir::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of one pipeline stage: the 3D-parallelism factors of its
/// basic architecture unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageConfig {
    /// Parallelism of the stage's basic architecture unit.
    pub parallelism: Parallelism,
}

impl StageConfig {
    /// Creates a stage configuration.
    pub fn new(parallelism: Parallelism) -> Self {
        Self { parallelism }
    }

    /// The minimal (1, 1, 1) configuration.
    pub fn minimal() -> Self {
        Self::new(Parallelism::unit())
    }
}

/// Configuration of one branch pipeline (`config_j` in Table III): a batch
/// size (pipeline replication factor) plus one [`StageConfig`] per stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// Number of pipeline copies instantiated for the branch (the paper's
    /// per-branch `batchsize`); each copy processes a different frame.
    pub batch_size: usize,
    /// One configuration per pipeline stage, in execution order.
    pub stages: Vec<StageConfig>,
}

impl BranchConfig {
    /// Creates a branch configuration.
    pub fn new(batch_size: usize, stages: Vec<StageConfig>) -> Self {
        Self {
            batch_size: batch_size.max(1),
            stages,
        }
    }

    /// A minimal configuration (batch 1, unit parallelism) for `stage_count`
    /// stages.
    pub fn minimal(stage_count: usize) -> Self {
        Self::new(1, vec![StageConfig::minimal(); stage_count])
    }

    /// Number of stages configured.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total MAC lanes across all stages of a single pipeline copy.
    pub fn total_lanes(&self) -> usize {
        self.stages.iter().map(|s| s.parallelism.total()).sum()
    }
}

/// A complete accelerator configuration: one [`BranchConfig`] per branch
/// plus the quantization (`Q` in Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Per-branch configurations, in branch order.
    pub branches: Vec<BranchConfig>,
    /// Numeric precision of weights and activations.
    pub precision: Precision,
}

impl AcceleratorConfig {
    /// Creates an accelerator configuration.
    pub fn new(branches: Vec<BranchConfig>, precision: Precision) -> Self {
        Self {
            branches,
            precision,
        }
    }

    /// Number of configured branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "accelerator config ({} precision)", self.precision)?;
        for (i, branch) in self.branches.iter().enumerate() {
            write!(f, "  Br.{}: batch {}, stages [", i + 1, branch.batch_size)?;
            for (j, stage) in branch.stages.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", stage.parallelism)?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_config_has_unit_parallelism() {
        let cfg = BranchConfig::minimal(4);
        assert_eq!(cfg.batch_size, 1);
        assert_eq!(cfg.stage_count(), 4);
        assert_eq!(cfg.total_lanes(), 4);
    }

    #[test]
    fn batch_size_is_at_least_one() {
        let cfg = BranchConfig::new(0, vec![]);
        assert_eq!(cfg.batch_size, 1);
    }

    #[test]
    fn display_lists_every_branch() {
        let cfg = AcceleratorConfig::new(
            vec![BranchConfig::minimal(2), BranchConfig::minimal(3)],
            Precision::Int8,
        );
        let text = cfg.to_string();
        assert!(text.contains("Br.1"));
        assert!(text.contains("Br.2"));
        assert!(text.contains("8-bit"));
        assert_eq!(cfg.branch_count(), 2);
    }
}
