//! Tunable constants of the resource cost model.

use serde::{Deserialize, Serialize};

/// Constants used by the DSP / BRAM / bandwidth estimators.
///
/// The defaults model Xilinx-style FPGAs: 18 Kb BRAM blocks with two ports
/// that can each deliver a 36-bit word per cycle, double-buffered line and
/// weight buffers, and a small fixed control overhead per pipeline stage.
/// They are exposed so that ASIC-style memories (or calibration against a
/// particular board) can adjust the model without touching the estimator
/// code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Capacity of one on-chip memory block in bits (BRAM18K by default).
    pub bram_bits: u64,
    /// Read/write ports per memory block.
    pub bram_ports: usize,
    /// Maximum word width one port can deliver per cycle, in bits.
    pub bram_port_bits: usize,
    /// Whether stage buffers are double-buffered (ping-pong).
    pub double_buffer: bool,
    /// Fixed memory blocks charged per stage for control FIFOs and bias
    /// storage.
    pub control_bram_per_stage: usize,
    /// Fraction of the theoretical external bandwidth that is actually
    /// achievable (DDR efficiency).
    pub dram_efficiency: f64,
}

impl CostModel {
    /// Cost model for Xilinx-style FPGAs (the paper's targets).
    pub fn fpga() -> Self {
        Self {
            bram_bits: 18 * 1024,
            bram_ports: 2,
            bram_port_bits: 36,
            double_buffer: true,
            control_bram_per_stage: 2,
            dram_efficiency: 0.8,
        }
    }

    /// Cost model for an ASIC-style design with wider, single-ported SRAM
    /// macros and better DRAM efficiency.
    pub fn asic() -> Self {
        Self {
            bram_bits: 18 * 1024,
            bram_ports: 1,
            bram_port_bits: 128,
            double_buffer: true,
            control_bram_per_stage: 1,
            dram_efficiency: 0.9,
        }
    }

    /// Buffer sizing multiplier (2 when double-buffered).
    pub fn buffer_factor(&self) -> u64 {
        if self.double_buffer {
            2
        } else {
            1
        }
    }

    /// How many scalar values of `bits` width one memory block can deliver
    /// per cycle across all its ports.
    pub fn values_per_block_per_cycle(&self, bits: usize) -> usize {
        let per_port = (self.bram_port_bits / bits.max(1)).max(1);
        per_port * self.bram_ports.max(1)
    }

    /// Memory blocks needed to store `bits` bits *and* sustain
    /// `parallel_reads` scalar reads (of `value_bits` each) per cycle.
    pub fn blocks_for(&self, bits: u64, parallel_reads: usize, value_bits: usize) -> usize {
        let capacity_blocks = bits.div_ceil(self.bram_bits).max(1) as usize;
        let bandwidth_blocks = parallel_reads
            .div_ceil(self.values_per_block_per_cycle(value_bits))
            .max(1);
        capacity_blocks.max(bandwidth_blocks)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::fpga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fpga() {
        assert_eq!(CostModel::default(), CostModel::fpga());
    }

    #[test]
    fn values_per_block_depend_on_precision() {
        let cm = CostModel::fpga();
        assert_eq!(cm.values_per_block_per_cycle(8), 8);
        assert_eq!(cm.values_per_block_per_cycle(16), 4);
        assert_eq!(cm.values_per_block_per_cycle(32), 2);
    }

    #[test]
    fn blocks_for_takes_max_of_capacity_and_banking() {
        let cm = CostModel::fpga();
        // Tiny buffer but many parallel reads -> banking dominates.
        assert_eq!(cm.blocks_for(1_000, 64, 8), 8);
        // Large buffer, few reads -> capacity dominates.
        assert_eq!(cm.blocks_for(10 * 18 * 1024, 1, 8), 10);
    }

    #[test]
    fn asic_model_has_wider_ports() {
        let asic = CostModel::asic();
        assert!(
            asic.values_per_block_per_cycle(8) > CostModel::fpga().values_per_block_per_cycle(8)
        );
    }
}
