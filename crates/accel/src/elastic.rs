//! The elastic multi-branch accelerator: branch pipelines arranged along the
//! Y axis, stages along the X axis (Fig. 5 of the paper).

use crate::config::AcceleratorConfig;
use crate::cost::CostModel;
use crate::efficiency;
use crate::error::{Error, Result};
use crate::pipeline::{BranchPipeline, BranchReport};
use crate::platform::{Platform, ResourceBudget, ResourceUsage};
use serde::{Deserialize, Serialize};

/// Evaluation of a complete accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorReport {
    /// Per-branch reports in branch order.
    pub branches: Vec<BranchReport>,
    /// Aggregate resource usage.
    pub total_usage: ResourceUsage,
    /// Throughput of the slowest branch — the rate at which complete avatar
    /// frames (all branch outputs) can be produced.
    pub min_fps: f64,
    /// Overall hardware efficiency (Eq. 3 applied to the whole design).
    pub overall_efficiency: f64,
}

impl AcceleratorReport {
    /// Whether the design fits a resource budget in all three dimensions.
    pub fn fits(&self, budget: &ResourceBudget) -> bool {
        budget.accommodates(&self.total_usage)
    }

    /// Report of the branch with the given index.
    pub fn branch(&self, index: usize) -> Option<&BranchReport> {
        self.branches.get(index)
    }
}

/// The elastic architecture instantiated for a particular multi-branch
/// network: one [`BranchPipeline`] per (reorganized) branch.
///
/// The structure is fixed by the Construction step; evaluation under
/// different [`AcceleratorConfig`]s is what the DSE engine iterates on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticAccelerator {
    name: String,
    branches: Vec<BranchPipeline>,
    frequency_hz: f64,
    cost: CostModel,
}

impl ElasticAccelerator {
    /// Creates an accelerator with the default FPGA cost model.
    pub fn new(name: impl Into<String>, branches: Vec<BranchPipeline>, frequency_hz: f64) -> Self {
        Self {
            name: name.into(),
            branches,
            frequency_hz,
            cost: CostModel::default(),
        }
    }

    /// Creates an accelerator targeting a platform (frequency and, for ASIC
    /// platforms, the ASIC cost model are taken from it).
    pub fn for_platform(
        name: impl Into<String>,
        branches: Vec<BranchPipeline>,
        platform: &Platform,
    ) -> Self {
        let cost = match platform.kind() {
            crate::platform::PlatformKind::Fpga => CostModel::fpga(),
            crate::platform::PlatformKind::Asic => CostModel::asic(),
        };
        Self {
            name: name.into(),
            branches,
            frequency_hz: platform.frequency_hz(),
            cost,
        }
    }

    /// Accelerator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The branch pipelines (Y dimension of the elastic architecture).
    pub fn branches(&self) -> &[BranchPipeline] {
        &self.branches
    }

    /// Number of branch pipelines.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// The cost model used for resource estimation.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (e.g. for calibration).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Evaluates a full accelerator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the configuration's branch count
    /// or any per-branch stage count does not match the architecture.
    pub fn evaluate(&self, config: &AcceleratorConfig) -> Result<AcceleratorReport> {
        if config.branches.len() != self.branches.len() {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "accelerator `{}` has {} branches but the configuration provides {}",
                    self.name,
                    self.branches.len(),
                    config.branches.len()
                ),
            });
        }
        let mut reports = Vec::with_capacity(self.branches.len());
        for (pipeline, branch_cfg) in self.branches.iter().zip(&config.branches) {
            reports.push(pipeline.evaluate(
                branch_cfg,
                config.precision,
                self.frequency_hz,
                &self.cost,
            )?);
        }
        let total_usage = reports
            .iter()
            .fold(ResourceUsage::default(), |acc, r| acc.plus(&r.usage));
        let min_fps = reports.iter().map(|r| r.fps).fold(f64::INFINITY, f64::min);
        let min_fps = if min_fps.is_finite() { min_fps } else { 0.0 };
        let total_ops_per_sec: f64 = reports.iter().map(|r| r.ops_per_frame as f64 * r.fps).sum();
        let overall_efficiency = efficiency(
            total_ops_per_sec,
            total_usage.dsp,
            config.precision.ops_per_multiplier(),
            self.frequency_hz,
        );
        Ok(AcceleratorReport {
            branches: reports,
            total_usage,
            min_fps,
            overall_efficiency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BranchConfig, StageConfig};
    use crate::parallelism::Parallelism;
    use crate::stage::ConvStage;
    use fcad_nnir::Precision;

    fn accelerator() -> ElasticAccelerator {
        let br1 = BranchPipeline::new("small", vec![ConvStage::synthetic("a", 8, 8, 32, 32, 3, 1)]);
        let br2 = BranchPipeline::new(
            "large",
            vec![
                ConvStage::synthetic("b1", 8, 16, 64, 64, 3, 1),
                ConvStage::synthetic("b2", 16, 16, 128, 128, 3, 1),
            ],
        );
        ElasticAccelerator::new("test", vec![br1, br2], 200e6)
    }

    fn full_config() -> AcceleratorConfig {
        AcceleratorConfig::new(
            vec![
                BranchConfig::new(1, vec![StageConfig::new(Parallelism::new(8, 8, 1))]),
                BranchConfig::new(
                    1,
                    vec![
                        StageConfig::new(Parallelism::new(8, 16, 1)),
                        StageConfig::new(Parallelism::new(16, 16, 2)),
                    ],
                ),
            ],
            Precision::Int8,
        )
    }

    #[test]
    fn evaluation_aggregates_branches() {
        let acc = accelerator();
        let report = acc.evaluate(&full_config()).expect("valid configuration");
        assert_eq!(report.branches.len(), 2);
        assert_eq!(
            report.total_usage.dsp,
            report.branches[0].usage.dsp + report.branches[1].usage.dsp
        );
        assert!(report.min_fps <= report.branches[0].fps);
        assert!(report.min_fps <= report.branches[1].fps);
        assert!(report.overall_efficiency > 0.0 && report.overall_efficiency <= 1.0 + 1e-9);
    }

    #[test]
    fn mismatched_branch_count_is_rejected() {
        let acc = accelerator();
        let cfg = AcceleratorConfig::new(vec![BranchConfig::minimal(1)], Precision::Int8);
        assert!(matches!(
            acc.evaluate(&cfg),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn report_fits_checks_the_budget() {
        let acc = accelerator();
        let report = acc.evaluate(&full_config()).unwrap();
        let generous = ResourceBudget::new(10_000, 10_000, 100.0);
        let tiny = ResourceBudget::new(1, 1, 0.000_001);
        assert!(report.fits(&generous));
        assert!(!report.fits(&tiny));
    }

    #[test]
    fn asic_platform_switches_the_cost_model() {
        let platform = Platform::asic(4096, 1024, 25.6, 800.0);
        let acc = ElasticAccelerator::for_platform("asic", vec![], &platform);
        assert_eq!(acc.cost_model(), &CostModel::asic());
        assert_eq!(acc.frequency_hz(), 800e6);
    }

    #[test]
    fn more_parallelism_means_higher_fps_for_same_network() {
        let acc = accelerator();
        let slow = AcceleratorConfig::new(
            vec![BranchConfig::minimal(1), BranchConfig::minimal(2)],
            Precision::Int8,
        );
        let fast = full_config();
        let slow_report = acc.evaluate(&slow).unwrap();
        let fast_report = acc.evaluate(&fast).unwrap();
        assert!(fast_report.min_fps > slow_report.min_fps);
    }
}
