//! Three-dimensional parallelism configuration of a basic architecture unit.

use crate::error::{Error, Result};
use crate::stage::ConvStage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The 3D parallelism of one basic architecture unit (Sec. V-C):
///
/// * `cpf` — channel parallelism factor: MACs unrolled along input channels,
/// * `kpf` — kernel parallelism factor: compute engines unrolled along
///   output channels,
/// * `h` — H-partition: the input feature map is split into `h` horizontal
///   sections processed by independent engine groups.
///
/// The total number of MAC lanes is `cpf × kpf × h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Input-channel unroll factor.
    pub cpf: usize,
    /// Output-channel unroll factor.
    pub kpf: usize,
    /// Feature-map-height partition count.
    pub h: usize,
}

impl Parallelism {
    /// Creates a parallelism configuration. Factors of zero are clamped to 1.
    pub fn new(cpf: usize, kpf: usize, h: usize) -> Self {
        Self {
            cpf: cpf.max(1),
            kpf: kpf.max(1),
            h: h.max(1),
        }
    }

    /// The scalar (1, 1, 1) configuration.
    pub fn unit() -> Self {
        Self::new(1, 1, 1)
    }

    /// Total MAC lanes (`cpf × kpf × h`).
    pub fn total(&self) -> usize {
        self.cpf * self.kpf * self.h
    }

    /// The largest parallelism a stage supports: `cpf ≤ InCh`, `kpf ≤ OutCh`,
    /// `h ≤` output rows.
    pub fn max_for(stage: &ConvStage) -> Self {
        Self::new(stage.in_channels, stage.out_channels, stage.out_height)
    }

    /// Validates this configuration against a stage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParallelism`] when any factor exceeds the
    /// corresponding stage dimension.
    pub fn validate_for(&self, stage: &ConvStage) -> Result<()> {
        let max = Self::max_for(stage);
        if self.cpf > max.cpf || self.kpf > max.kpf || self.h > max.h {
            return Err(Error::InvalidParallelism {
                stage: stage.name.clone(),
                reason: format!(
                    "requested {self} exceeds stage maximum {max} \
                     (InCh {}, OutCh {}, rows {})",
                    stage.in_channels, stage.out_channels, stage.out_height
                ),
            });
        }
        Ok(())
    }

    /// Clamps every factor to the stage's maximum.
    pub fn clamped_to(&self, stage: &ConvStage) -> Self {
        let max = Self::max_for(stage);
        Self::new(
            self.cpf.min(max.cpf),
            self.kpf.min(max.kpf),
            self.h.min(max.h),
        )
    }

    /// Derives a balanced 3D split for a target number of MAC lanes on a
    /// given stage — the `GetPF` step of Algorithm 2.
    ///
    /// Channel unroll factors are chosen among the divisors of the channel
    /// counts (so the unrolled loops stay balanced) and the H-partition
    /// supplies whatever the channels cannot; among all such combinations
    /// the one whose total lane count is closest to the target is selected,
    /// preferring channel unrolling (which reuses buffered data best) on
    /// ties. The result never exceeds the stage's maximum parallelism; it
    /// may deliver fewer lanes than requested when the target exceeds that
    /// maximum.
    pub fn for_target(stage: &ConvStage, target_lanes: usize) -> Self {
        let target = target_lanes.max(1) as f64;
        let max = Self::max_for(stage);
        let ideal_cycles = stage.macs.max(1) as f64;
        let mut best = Self::unit();
        let mut best_score = (f64::INFINITY, 0usize);
        for &cpf in &divisors(max.cpf) {
            if cpf as f64 > target * 2.0 && cpf > 1 {
                continue;
            }
            for &kpf in &divisors(max.kpf) {
                let channel_lanes = cpf * kpf;
                if channel_lanes as f64 > target * 2.0 && channel_lanes > 1 {
                    continue;
                }
                let h_ideal = (target / channel_lanes as f64).round() as usize;
                for h in [h_ideal, h_ideal + 1, h_ideal.saturating_sub(1)] {
                    let h = h.clamp(1, max.h);
                    let candidate = Self::new(cpf, kpf, h);
                    // Score by the *effective* lanes the candidate delivers
                    // once loop quantization is taken into account: a factor
                    // that mis-divides its dimension (e.g. 43 partitions of
                    // 55 rows) wastes cycles that raw lane counting hides.
                    let quantized_cycles = (max.cpf.div_ceil(candidate.cpf)
                        * max.kpf.div_ceil(candidate.kpf)
                        * max.h.div_ceil(candidate.h))
                        as f64
                        * (ideal_cycles / (max.cpf * max.kpf * max.h) as f64);
                    let effective_lanes = ideal_cycles / quantized_cycles.max(1.0);
                    let distance = (effective_lanes - target).abs();
                    // Prefer the closest effective throughput; on ties prefer
                    // more channel unrolling (better data reuse).
                    let score = (distance, usize::MAX - channel_lanes);
                    if score.0 < best_score.0 || (score.0 == best_score.0 && score.1 < best_score.1)
                    {
                        best_score = score;
                        best = candidate;
                    }
                }
            }
        }
        best
    }
}

/// All divisors of `n` in ascending order (just `[1]` for zero).
fn divisors(n: usize) -> Vec<usize> {
    if n == 0 {
        return vec![1];
    }
    let mut out = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            out.push(i);
            if i != n / i {
                out.push(n / i);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cpf {}, kpf {}, h {})", self.cpf, self.kpf, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> ConvStage {
        ConvStage::synthetic("s", 16, 32, 64, 64, 3, 1)
    }

    #[test]
    fn total_is_product_of_factors() {
        assert_eq!(Parallelism::new(2, 3, 4).total(), 24);
        assert_eq!(Parallelism::unit().total(), 1);
    }

    #[test]
    fn zero_factors_are_clamped() {
        let p = Parallelism::new(0, 0, 0);
        assert_eq!(p.total(), 1);
    }

    #[test]
    fn max_for_follows_stage_dimensions() {
        let max = Parallelism::max_for(&stage());
        assert_eq!(max.cpf, 16);
        assert_eq!(max.kpf, 32);
        assert_eq!(max.h, 64);
    }

    #[test]
    fn validate_rejects_oversized_factors() {
        let s = stage();
        assert!(Parallelism::new(16, 32, 64).validate_for(&s).is_ok());
        assert!(Parallelism::new(17, 1, 1).validate_for(&s).is_err());
        assert!(Parallelism::new(1, 33, 1).validate_for(&s).is_err());
        assert!(Parallelism::new(1, 1, 65).validate_for(&s).is_err());
    }

    #[test]
    fn clamping_respects_stage_limits() {
        let p = Parallelism::new(100, 100, 100).clamped_to(&stage());
        assert_eq!(p, Parallelism::new(16, 32, 64));
    }

    #[test]
    fn for_target_prefers_channel_unrolling() {
        let s = stage();
        let p = Parallelism::for_target(&s, 64);
        assert!(p.total() >= 64, "delivered {} lanes", p.total());
        // The 64 lanes should come from channel dimensions alone.
        assert_eq!(p.h, 1);
        assert!(p.cpf <= 16 && p.kpf <= 32);
    }

    #[test]
    fn for_target_uses_h_partition_beyond_channel_limits() {
        // The paper's motivating case: a 16x16-channel layer cannot exceed
        // 256 lanes with two-level parallelism; the H-partition unlocks more.
        let conv7 = ConvStage::synthetic("conv7", 16, 16, 512, 512, 3, 1);
        let p = Parallelism::for_target(&conv7, 1024);
        assert_eq!(p.cpf, 16);
        assert_eq!(p.kpf, 16);
        assert_eq!(p.h, 4);
        assert_eq!(p.total(), 1024);
    }

    #[test]
    fn for_target_never_exceeds_stage_maximum() {
        let tiny = ConvStage::synthetic("tiny", 2, 2, 4, 4, 3, 1);
        let p = Parallelism::for_target(&tiny, 1_000_000);
        assert!(p.validate_for(&tiny).is_ok());
        assert_eq!(p.total(), 2 * 2 * 4);
    }
}
