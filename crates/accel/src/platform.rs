//! Hardware platform descriptions and resource budgets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three resource budgets F-CAD optimizes under (Table III):
/// compute (`Cmax`, DSP slices or MAC units), on-chip memory (`Mmax`,
/// BRAM18K blocks or KiB of SRAM), and external memory bandwidth (`BWmax`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Available DSP slices (FPGA) or MAC units (ASIC).
    pub dsp: usize,
    /// Available BRAM18K blocks (FPGA) or equivalent 18 Kb SRAM macros (ASIC).
    pub bram: usize,
    /// External memory bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl ResourceBudget {
    /// Creates a budget from DSP count, BRAM18K count and bandwidth in GB/s.
    pub fn new(dsp: usize, bram: usize, bandwidth_gb_per_sec: f64) -> Self {
        Self {
            dsp,
            bram,
            bandwidth_bytes_per_sec: bandwidth_gb_per_sec * 1e9,
        }
    }

    /// Returns a budget scaled by `factor` in every dimension (used by the
    /// cross-branch search to carve out per-branch budgets).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            dsp: (self.dsp as f64 * factor).floor() as usize,
            bram: (self.bram as f64 * factor).floor() as usize,
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec * factor,
        }
    }

    /// Returns `true` when `usage` fits within this budget in all three
    /// dimensions.
    pub fn accommodates(&self, usage: &ResourceUsage) -> bool {
        usage.dsp <= self.dsp
            && usage.bram <= self.bram
            && usage.bandwidth_bytes_per_sec <= self.bandwidth_bytes_per_sec
    }
}

/// Resources actually consumed by a design (same axes as [`ResourceBudget`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// DSP slices (or MAC units) used.
    pub dsp: usize,
    /// BRAM18K blocks (or SRAM macros) used.
    pub bram: usize,
    /// External bandwidth consumed, bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl ResourceUsage {
    /// Element-wise sum of two usages.
    pub fn plus(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp + other.dsp,
            bram: self.bram + other.bram,
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec + other.bandwidth_bytes_per_sec,
        }
    }
}

/// Whether a platform is an FPGA or an ASIC-style budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// FPGA device: `dsp` counts DSP slices, `bram` counts BRAM18K blocks.
    Fpga,
    /// ASIC budget: `dsp` counts MAC units, `bram` counts 18 Kb SRAM macros.
    Asic,
}

/// A target hardware platform: a resource budget plus a clock frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    kind: PlatformKind,
    budget: ResourceBudget,
    frequency_hz: f64,
}

impl Platform {
    /// Creates a custom platform.
    pub fn new(
        name: impl Into<String>,
        kind: PlatformKind,
        budget: ResourceBudget,
        frequency_mhz: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            budget,
            frequency_hz: frequency_mhz * 1e6,
        }
    }

    /// Xilinx Zynq-7045 as budgeted in the paper (Scheme 1 / Case 1):
    /// 900 DSPs, 1090 BRAM18K, DDR3 bandwidth, 200 MHz.
    pub fn z7045() -> Self {
        Self::new(
            "Z7045",
            PlatformKind::Fpga,
            ResourceBudget::new(900, 1090, 12.8),
            200.0,
        )
    }

    /// Xilinx ZU17EG as budgeted in the paper (Scheme 2 / Cases 2–3):
    /// 1590 DSPs, 1592 BRAM18K, 200 MHz.
    pub fn zu17eg() -> Self {
        Self::new(
            "ZU17EG",
            PlatformKind::Fpga,
            ResourceBudget::new(1590, 1592, 12.8),
            200.0,
        )
    }

    /// Xilinx ZU9CG as budgeted in the paper (Scheme 3 / Cases 4–5):
    /// 2520 DSPs, 1824 BRAM18K, 200 MHz.
    pub fn zu9cg() -> Self {
        Self::new(
            "ZU9CG",
            PlatformKind::Fpga,
            ResourceBudget::new(2520, 1824, 12.8),
            200.0,
        )
    }

    /// Xilinx ZCU104 evaluation board (Zynq UltraScale+ ZU7EV), a common
    /// edge-inference target between the Z7045 and ZU17EG schemes: 1728
    /// DSPs, 624 BRAM18K (312 BRAM36), 64-bit DDR4-2400 at 19.2 GB/s,
    /// 200 MHz.
    pub fn zcu104() -> Self {
        Self::new(
            "ZCU104",
            PlatformKind::Fpga,
            ResourceBudget::new(1728, 624, 19.2),
            200.0,
        )
    }

    /// Xilinx KU115, the board used for the Fig. 6/7 estimation-accuracy
    /// study: 5520 DSPs, 4320 BRAM18K, 200 MHz.
    pub fn ku115() -> Self {
        Self::new(
            "KU115",
            PlatformKind::Fpga,
            ResourceBudget::new(5520, 4320, 19.2),
            200.0,
        )
    }

    /// A generic ASIC budget expressed in MAC units, 18 Kb SRAM macros and
    /// bandwidth — the paper notes the same flow targets ASICs by mapping
    /// `{Cmax, Mmax, BWmax}` onto MACs, buffers and DRAM bandwidth.
    pub fn asic(
        macs: usize,
        sram_macros: usize,
        bandwidth_gb_per_sec: f64,
        frequency_mhz: f64,
    ) -> Self {
        Self::new(
            format!("ASIC-{macs}mac"),
            PlatformKind::Asic,
            ResourceBudget::new(macs, sram_macros, bandwidth_gb_per_sec),
            frequency_mhz,
        )
    }

    /// The three FPGA schemes of Table II / Table IV in order (Z7045,
    /// ZU17EG, ZU9CG).
    pub fn evaluation_schemes() -> Vec<Platform> {
        vec![Self::z7045(), Self::zu17eg(), Self::zu9cg()]
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// FPGA or ASIC.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// Resource budget.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// Clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Clock frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.frequency_hz / 1e6
    }

    /// Returns a copy of this platform with a different clock frequency.
    pub fn with_frequency_mhz(mut self, frequency_mhz: f64) -> Self {
        self.frequency_hz = frequency_mhz * 1e6;
        self
    }

    /// Returns a copy of this platform with a different resource budget.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, {} DSP, {} BRAM, {:.1} GB/s, {:.0} MHz)",
            self.name,
            self.kind,
            self.budget.dsp,
            self.budget.bram,
            self.budget.bandwidth_bytes_per_sec / 1e9,
            self.frequency_mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_budgets() {
        assert_eq!(Platform::z7045().budget().dsp, 900);
        assert_eq!(Platform::z7045().budget().bram, 1090);
        assert_eq!(Platform::zu17eg().budget().dsp, 1590);
        assert_eq!(Platform::zu17eg().budget().bram, 1592);
        assert_eq!(Platform::zu9cg().budget().dsp, 2520);
        assert_eq!(Platform::zu9cg().budget().bram, 1824);
        for p in Platform::evaluation_schemes() {
            assert_eq!(p.frequency_mhz(), 200.0);
        }
    }

    #[test]
    fn zcu104_budget_is_pinned() {
        let zcu104 = Platform::zcu104();
        assert_eq!(zcu104.name(), "ZCU104");
        assert_eq!(zcu104.kind(), PlatformKind::Fpga);
        assert_eq!(zcu104.budget().dsp, 1728);
        assert_eq!(zcu104.budget().bram, 624);
        assert!((zcu104.budget().bandwidth_bytes_per_sec - 19.2e9).abs() < 1.0);
        assert_eq!(zcu104.frequency_mhz(), 200.0);
    }

    #[test]
    fn budgets_accommodate_usage() {
        let budget = ResourceBudget::new(1000, 500, 10.0);
        let fits = ResourceUsage {
            dsp: 900,
            bram: 500,
            bandwidth_bytes_per_sec: 9e9,
        };
        let too_big = ResourceUsage { dsp: 1001, ..fits };
        assert!(budget.accommodates(&fits));
        assert!(!budget.accommodates(&too_big));
    }

    #[test]
    fn scaled_budget_floors_discrete_resources() {
        let budget = ResourceBudget::new(1001, 11, 10.0);
        let half = budget.scaled(0.5);
        assert_eq!(half.dsp, 500);
        assert_eq!(half.bram, 5);
        assert!((half.bandwidth_bytes_per_sec - 5e9).abs() < 1e-3);
    }

    #[test]
    fn usage_addition_is_elementwise() {
        let a = ResourceUsage {
            dsp: 10,
            bram: 20,
            bandwidth_bytes_per_sec: 1e9,
        };
        let b = ResourceUsage {
            dsp: 5,
            bram: 1,
            bandwidth_bytes_per_sec: 0.5e9,
        };
        let sum = a.plus(&b);
        assert_eq!(sum.dsp, 15);
        assert_eq!(sum.bram, 21);
        assert!((sum.bandwidth_bytes_per_sec - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn asic_platform_is_tagged_asic() {
        let asic = Platform::asic(4096, 2048, 25.6, 800.0);
        assert_eq!(asic.kind(), PlatformKind::Asic);
        assert_eq!(asic.frequency_mhz(), 800.0);
    }
}
