//! Error type shared by all IR-construction APIs.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing or validating a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A layer was asked to process an input shape it cannot accept.
    ShapeMismatch {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// A layer configuration is internally inconsistent (zero channels,
    /// zero-sized kernel, stride of zero, ...).
    InvalidLayer {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// A [`crate::BranchId`] or [`crate::LayerId`] does not belong to the
    /// network or builder it was used with.
    UnknownId {
        /// Description of the id that was not found.
        what: String,
    },
    /// The network failed whole-graph validation.
    InvalidNetwork {
        /// Human-readable description of what went wrong.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { layer, reason } => {
                write!(f, "shape mismatch at layer `{layer}`: {reason}")
            }
            Error::InvalidLayer { layer, reason } => {
                write!(f, "invalid layer `{layer}`: {reason}")
            }
            Error::UnknownId { what } => write!(f, "unknown id: {what}"),
            Error::InvalidNetwork { reason } => write!(f, "invalid network: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = Error::ShapeMismatch {
            layer: "conv1".to_owned(),
            reason: "expected 3 channels, got 4".to_owned(),
        };
        let text = err.to_string();
        assert!(text.contains("conv1"));
        assert!(text.contains("expected 3 channels"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
